//! # reliablesketch — umbrella crate
//!
//! Re-exports the full public API of the ReliableSketch reproduction
//! workspace so applications can depend on a single crate:
//!
//! ```
//! use reliablesketch::prelude::*;
//!
//! let mut sk = reliablesketch::builder()
//!     .memory_bytes(64 * 1024)
//!     .error_tolerance(25)
//!     .build_sequential::<u64>();
//! sk.insert(&42u64, 10);
//! let est = sk.query_with_error(&42);
//! assert!(est.value >= 10 && est.value <= 10 + est.max_possible_error);
//! ```
//!
//! [`builder()`] is the unified construction facade: the same
//! configuration chain ends in `build_sequential`, `build_concurrent`,
//! `build_sharded`, or `build_epoched_concurrent` depending on the
//! deployment shape (see [`SketchBuilder`]).
//!
//! The workspace crates are also re-exported as modules: [`hash`],
//! [`api`], [`stream`], [`core`], [`baselines`], [`metrics`], [`dataplane`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsk_api as api;
pub use rsk_baselines as baselines;
pub use rsk_core as core;
pub use rsk_dataplane as dataplane;
pub use rsk_hash as hash;
pub use rsk_metrics as metrics;
pub use rsk_stream as stream;

mod builder;

pub use builder::{builder, SketchBuilder};

/// One-stop import for applications.
pub mod prelude {
    pub use crate::builder::{builder, SketchBuilder};
    pub use rsk_api::{
        CertifiedTopK, CertifiedWeight, Clear, ConcurrentErrorSensing, ConcurrentSummary,
        ErrorSensing, Estimate, IngestPolicy, KeySet, MemoryFootprint, Merge, MergeError,
        Replicate, ReplicateError, StreamSummary, SubpopulationWeight, TopK, TopKEntry,
    };
    pub use rsk_core::{
        merge_all, ConcurrentReliable, EpochedConcurrent, EpochedReliable, ReliableConfig,
        ReliableSketch, ShardPlacement, ShardedReliable, TopKSummary,
    };
    pub use rsk_core::{SketchSnapshot, SlimShards, SlimSummary};
    pub use rsk_stream::{Dataset, GroundTruth, Item};
}
