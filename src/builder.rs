//! One fluent entry point for every deployment shape.
//!
//! The workspace grew one constructor per execution model — sequential
//! [`ReliableSketch`], lock-free [`ConcurrentReliable`], key-partitioned
//! [`ShardedReliable`], and the two-generation windows [`EpochedReliable`]
//! / [`EpochedConcurrent`] — each reachable through its own builder
//! chain. [`crate::builder()`] unifies them: configure the *sketch* once
//! (memory, tolerance, seed, filter, emergency policy), then pick the
//! *deployment* with the final `build_*` call. Applications, the
//! quickstart example, and the `rsk-serve` tenant map all construct
//! through this one path, so a configuration audited in one place holds
//! everywhere.
//!
//! Nothing is deprecated: the facade delegates to the same
//! [`ReliableConfigBuilder`] the per-type builders use, which stays
//! re-exported for code that already names a concrete type.
//!
//! # Examples
//!
//! ```
//! use reliablesketch::prelude::*;
//!
//! // one configuration …
//! let spec = reliablesketch::builder()
//!     .memory_bytes(64 * 1024)
//!     .error_tolerance(25)
//!     .seed(7);
//!
//! // … four deployment shapes
//! let mut seq = spec.clone().build_sequential::<u64>();
//! let conc = spec.clone().build_concurrent::<u64>();
//! let sharded = spec.clone().build_sharded::<u64>(4);
//! let window = spec.build_epoched_concurrent::<u64>();
//!
//! seq.insert(&42u64, 10);
//! conc.insert_concurrent(&42u64, 10);
//! sharded.insert_shared(&42u64, 10);
//! window.insert_shared(&42u64, 10);
//!
//! // every shape certifies the same truth
//! assert!(seq.query_with_error(&42u64).contains(10));
//! assert!(conc.query_with_error_concurrent(&42u64).contains(10));
//! assert!(sharded.query_with_error_concurrent(&42u64).contains(10));
//! assert!(window.query_with_error_concurrent(&42u64).contains(10));
//! ```

use rsk_api::Key;
use rsk_core::{
    ConcurrentReliable, EmergencyPolicy, EpochedConcurrent, EpochedReliable, MiceFilterConfig,
    ReliableConfig, ReliableConfigBuilder, ReliableSketch, ShardedReliable,
};

/// Start configuring a sketch with the paper's default parameters.
///
/// Finish with one of [`SketchBuilder`]'s `build_*` methods to pick the
/// deployment shape; the crate-level docs walk through the full tour.
pub fn builder() -> SketchBuilder {
    SketchBuilder {
        inner: ReliableConfig::builder(),
        top_k: None,
    }
}

/// Fluent configuration shared by every deployment shape — obtain via
/// [`builder()`], finish with a `build_*` call.
///
/// The configuration methods mirror [`ReliableConfigBuilder`] (the
/// facade holds one internally); the terminal methods select sequential,
/// concurrent, sharded, or epoched construction from the same validated
/// [`ReliableConfig`].
#[derive(Debug, Clone)]
pub struct SketchBuilder {
    inner: ReliableConfigBuilder,
    /// Top-K layer capacity — a sidecar, not part of [`ReliableConfig`]
    /// (the query surface is orthogonal to the sketch geometry); applied
    /// after construction by every `build_*` terminal that supports it.
    top_k: Option<usize>,
}

impl SketchBuilder {
    /// Total memory budget in bytes (layers + mice filter).
    #[must_use]
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.inner = self.inner.memory_bytes(bytes);
        self
    }

    /// Error tolerance `Λ`: the worst estimation error the sketch may
    /// make on any key while the guarantee holds.
    #[must_use]
    pub fn error_tolerance(mut self, lambda: u64) -> Self {
        self.inner = self.inner.error_tolerance(lambda);
        self
    }

    /// Master hash seed (per-layer and per-shard seeds derive from it).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Disable the mice filter (the paper's "raw" ablation).
    #[must_use]
    pub fn raw(mut self) -> Self {
        self.inner = self.inner.raw();
        self
    }

    /// Explicit mice-filter configuration.
    #[must_use]
    pub fn mice_filter(mut self, cfg: MiceFilterConfig) -> Self {
        self.inner = self.inner.mice_filter(cfg);
        self
    }

    /// Policy for keys that suffer an insertion failure.
    #[must_use]
    pub fn emergency(mut self, policy: EmergencyPolicy) -> Self {
        self.inner = self.inner.emergency(policy);
        self
    }

    /// Attach an error-certified top-K layer of `capacity` slots: the
    /// built sketch tracks its elephants in a Space-Saving list whose
    /// per-entry overestimation is the sketch's certified error, and
    /// answers [`rsk_api::TopK::certified_top_k`]. Supported by the
    /// sequential, concurrent, and both epoched shapes; the sharded
    /// shape refuses at build time (shard-local summaries cannot certify
    /// one global miss floor).
    #[must_use]
    pub fn top_k(mut self, capacity: usize) -> Self {
        self.top_k = Some(capacity);
        self
    }

    /// The validated configuration this builder would hand every shape.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn config(self) -> ReliableConfig {
        self.inner.build_config()
    }

    /// The underlying per-type builder, for knobs the facade does not
    /// mirror (`r_w`, `r_lambda`, `depth`, `confidence`, …).
    pub fn into_config_builder(self) -> ReliableConfigBuilder {
        self.inner
    }

    /// Single-threaded [`ReliableSketch`] — the paper's reference
    /// structure.
    pub fn build_sequential<K: Key>(self) -> ReliableSketch<K> {
        let mut sk = self.inner.build();
        if let Some(capacity) = self.top_k {
            sk.enable_top_k(capacity);
        }
        sk
    }

    /// Lock-free [`ConcurrentReliable`] for shared-reference ingestion
    /// from any number of threads.
    pub fn build_concurrent<K: Key>(self) -> ConcurrentReliable<K> {
        let mut sk = self.inner.build_concurrent();
        if let Some(capacity) = self.top_k {
            sk.enable_top_k(capacity);
        }
        sk
    }

    /// Key-partitioned [`ShardedReliable`] over `n_shards` lock-free
    /// shards (deterministic parallel ingestion).
    ///
    /// # Panics
    /// Panics if [`top_k`](Self::top_k) was requested: the sharded shape
    /// does not carry a top-K layer (shard-local summaries cannot
    /// certify one global miss floor).
    pub fn build_sharded<K: Key>(self, n_shards: usize) -> ShardedReliable<K> {
        assert!(
            self.top_k.is_none(),
            "the sharded shape does not support a top-K layer"
        );
        self.inner.build_sharded(n_shards)
    }

    /// Two-generation rotating window over sequential sketches.
    pub fn build_epoched<K: Key>(self) -> EpochedReliable<K> {
        let mut w = self.inner.build_epoched();
        if let Some(capacity) = self.top_k {
            w.enable_top_k(capacity);
        }
        w
    }

    /// Two-generation rotating window over lock-free sketches — the
    /// multi-tenant serving shape (`rsk-serve` builds one per tenant).
    pub fn build_epoched_concurrent<K: Key>(self) -> EpochedConcurrent<K> {
        let mut w = self.inner.build_epoched_concurrent();
        if let Some(capacity) = self.top_k {
            w.enable_top_k(capacity);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use rsk_api::{ConcurrentErrorSensing, ErrorSensing, StreamSummary};
    use rsk_core::EmergencyPolicy;

    fn spec() -> super::SketchBuilder {
        super::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(11)
    }

    #[test]
    fn facade_config_matches_per_type_builder() {
        let via_facade = spec().config();
        let direct = rsk_core::ReliableConfig::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(11)
            .build_config();
        assert_eq!(via_facade, direct, "one construction path, one config");
    }

    #[test]
    fn all_shapes_certify_the_same_truth() {
        let mut seq = spec().build_sequential::<u64>();
        let conc = spec().build_concurrent::<u64>();
        let sharded = spec().build_sharded::<u64>(4);
        for i in 0..20_000u64 {
            let k = i % 300;
            seq.insert(&k, 1);
            conc.insert_concurrent(&k, 1);
            sharded.insert_shared(&k, 1);
        }
        // All shapes share one validated config; layer geometry and
        // collision patterns differ per execution model (atomic buckets
        // are wider, shards reseed), so the cross-shape pin is certified
        // containment — the bit-for-bit differential lives in
        // tests/concurrent_parity.rs over geometry-matched twins.
        for k in 0..300u64 {
            let truth = 20_000 / 300 + u64::from(k < 20_000 % 300);
            let s = seq.query_with_error(&k);
            let c = conc.query_with_error_concurrent(&k);
            let sh = sharded.query_with_error_concurrent(&k);
            for est in [s, c, sh] {
                assert!(est.contains(truth), "key {k}: {truth} ∉ {est:?}");
            }
        }
    }

    #[test]
    fn epoched_shapes_rotate() {
        let mut w = spec().build_epoched::<u64>();
        w.insert(&1, 5);
        w.rotate();
        w.insert(&1, 6);
        assert!(w.query_with_error(&1).contains(11));

        let mut cw = spec().build_epoched_concurrent::<u64>();
        cw.insert_shared(&1, 5);
        cw.rotate();
        cw.insert_shared(&1, 6);
        assert!(cw.query_with_error_concurrent(&1).contains(11));
    }

    #[test]
    fn top_k_sidecar_reaches_every_supported_shape() {
        use rsk_api::{ConcurrentSummary, TopK};
        let mut seq = spec().top_k(8).build_sequential::<u64>();
        let conc = spec().top_k(8).build_concurrent::<u64>();
        let mut win = spec().top_k(8).build_epoched::<u64>();
        let cwin = spec().top_k(8).build_epoched_concurrent::<u64>();
        for sk_cap in [
            seq.top_k_capacity(),
            conc.top_k_capacity(),
            win.top_k_capacity(),
            cwin.top_k_capacity(),
        ] {
            assert_eq!(sk_cap, Some(8));
        }
        for _ in 0..5_000 {
            seq.insert(&7, 1);
            conc.insert_concurrent(&7, 1);
            win.insert(&7, 1);
            cwin.insert_concurrent(&7, 1);
        }
        for top in [
            seq.certified_top_k(1),
            conc.certified_top_k(1),
            win.certified_top_k(1),
            cwin.certified_top_k(1),
        ] {
            assert_eq!(top.entries.len(), 1);
            assert_eq!(top.entries[0].key, 7);
            assert!(top.entries[0].contains(5_000));
            assert!(top.recall_certified());
        }
        // unconfigured sketches answer vacuously instead of guessing
        let plain = spec().build_sequential::<u64>();
        assert_eq!(plain.top_k_capacity(), None);
        assert!(plain.certified_top_k(1).entries.is_empty());
    }

    #[test]
    #[should_panic(expected = "sharded shape does not support")]
    fn sharded_shape_refuses_top_k() {
        let _ = spec().top_k(8).build_sharded::<u64>(4);
    }

    #[test]
    fn escape_hatch_reaches_unmirrored_knobs() {
        let cfg = spec().into_config_builder().r_w(3.0).build_config();
        assert_eq!(cfg.r_w, 3.0);
    }
}
