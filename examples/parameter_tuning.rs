//! Sizing ReliableSketch from first principles — the paper's Theorem 4/5
//! closed forms (exposed in `rsk_core::theory`) turned into a sizing
//! session: given a stream mass, a tolerance and a confidence target,
//! derive buckets, depth and the emergency store, then verify empirically.
//!
//! ```sh
//! cargo run --release --example parameter_tuning
//! ```

use reliablesketch::core::theory;
use reliablesketch::core::BUCKET_BYTES;
use reliablesketch::prelude::*;

fn main() {
    let n: u64 = 2_000_000; // expected stream mass Σ f(e)
    let lambda: u64 = 25; // tolerated per-key error Λ
    let delta = 1e-10; // all-keys failure budget Δ
    let (r_w, r_l) = (2.0, 2.5);

    println!("sizing for N = {n}, Λ = {lambda}, Δ = {delta}\n");

    let w = theory::recommended_buckets(n, lambda, r_w, r_l);
    let w_proof = theory::proof_buckets(n, lambda, r_w, r_l);
    let d = theory::solve_depth(n, lambda, delta, r_w, r_l);
    let slots = theory::emergency_slots(delta, r_w, r_l);
    println!(
        "recommended buckets (practical, §3.2):  {w:>12}  (= {:.2} MB)",
        (w * BUCKET_BYTES) as f64 / 1e6
    );
    println!("proof-grade buckets (Theorem 4):        {w_proof:>12}  (= {:.1} MB — the paper's \"large constant\")", (w_proof * BUCKET_BYTES) as f64 / 1e6);
    println!("Theorem 4 depth d:                      {d:>12}");
    println!("emergency SpaceSaving slots Δ₂ln(1/Δ):  {slots:>12}");
    println!(
        "amortized insert cost (Theorem 5):      {:>12.6}",
        theory::amortized_time(n, lambda, delta)
    );

    // build with the confidence-driven builder and verify on a real stream
    let mem = w * BUCKET_BYTES * 5 / 4; // + filter share
    let mut sk = ReliableSketch::<u64>::builder()
        .memory_bytes(mem)
        .error_tolerance(lambda)
        .confidence(n, delta)
        .build::<u64>();
    println!(
        "\nbuilt: {} layers, {} buckets, {} KB total",
        sk.geometry().depth(),
        sk.geometry().total_buckets(),
        sk.memory_bytes() / 1024
    );

    let stream = Dataset::IpTrace.generate(n as usize, 77);
    for it in &stream {
        sk.insert(&it.key, it.value);
    }
    let truth = GroundTruth::from_items(&stream);
    let outliers = truth
        .iter()
        .filter(|(k, f)| sk.query(k).abs_diff(*f) > lambda)
        .count();
    println!(
        "verification on {} items / {} keys: {} outliers, {} insertion failures",
        truth.total(),
        truth.distinct(),
        outliers,
        sk.insertion_failures()
    );

    // how does memory trade against Λ? (Figure 15a's law)
    println!("\nΛ sweep at the recommended sizing rule:");
    for l in [5u64, 10, 25, 50, 100] {
        let w = theory::recommended_buckets(n, l, r_w, r_l);
        println!(
            "  Λ = {l:>3} → {:>9} buckets ({:>7.2} MB)",
            w,
            (w * BUCKET_BYTES) as f64 / 1e6
        );
    }
}
