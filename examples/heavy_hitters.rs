//! Heavy-hitter detection — the paper's motivating network scenario
//! (§1): find every flow above a rate threshold with **no false verdicts
//! beyond the certified band**.
//!
//! A sketch with only per-query confidence mislabels thousands of mice
//! flows when a million keys are screened; ReliableSketch's all-keys
//! guarantee makes the report reliable: every flow with
//! `f ≥ T + Λ` is reported, nothing below `T − Λ` can be.
//!
//! ```sh
//! cargo run --release --example heavy_hitters
//! ```

use reliablesketch::baselines::CmSketch;
use reliablesketch::prelude::*;

const THRESHOLD: u64 = 1_000; // "frequent" cutoff T
const LAMBDA: u64 = 25;
const MEMORY: usize = 256 * 1024;

fn main() {
    let stream = Dataset::IpTrace.generate(2_000_000, 7);
    let truth = GroundTruth::from_items(&stream);

    // ReliableSketch report
    let mut ours = ReliableSketch::<u64>::builder()
        .memory_bytes(MEMORY)
        .error_tolerance(LAMBDA)
        .build::<u64>();
    for it in &stream {
        ours.insert(&it.key, it.value);
    }
    let report = ours.heavy_hitters(THRESHOLD);

    // CM sketch "report" at the same memory: every candidate key must be
    // re-queried, and overestimation mislabels mice as heavy
    let mut cm = CmSketch::<u64>::fast(MEMORY, 7);
    for it in &stream {
        cm.insert(&it.key, it.value);
    }

    let actual_heavy: std::collections::HashSet<u64> =
        truth.keys_above(THRESHOLD).into_iter().collect();

    // score ReliableSketch
    let mut ours_false_pos = 0;
    for (k, est) in &report {
        // certified: anything reported is at least T − Λ in truth
        assert!(est.lower_bound() >= THRESHOLD.saturating_sub(LAMBDA) || actual_heavy.contains(k));
        if !actual_heavy.contains(k) && truth.freq(k) < THRESHOLD - LAMBDA {
            ours_false_pos += 1;
        }
    }
    let ours_found = report
        .iter()
        .filter(|(k, _)| actual_heavy.contains(k))
        .count();

    // score CM over all keys (the screening scenario of §1)
    let mut cm_false_pos = 0;
    let mut cm_found = 0;
    for (k, f) in truth.iter() {
        let flagged = cm.query(k) >= THRESHOLD;
        match (flagged, f >= THRESHOLD) {
            (true, true) => cm_found += 1,
            (true, false) if f < THRESHOLD - LAMBDA => cm_false_pos += 1,
            _ => {}
        }
    }

    println!(
        "flows: {} total, {} truly heavy (f ≥ {THRESHOLD})",
        truth.distinct(),
        actual_heavy.len()
    );
    println!("\nReliableSketch ({} KB):", MEMORY / 1024);
    println!(
        "  reported {} flows, {ours_found} true heavies, {ours_false_pos} hard false positives",
        report.len()
    );
    println!("  insertion failures: {}", ours.insertion_failures());
    println!("\nCM_fast at the same memory:");
    println!("  flagged {cm_found} true heavies, {cm_false_pos} hard false positives");
    println!(
        "\nhard false positive = flow below T−Λ flagged as heavy; \
         ReliableSketch certifies zero of these unless an insertion fails"
    );

    // top-10 report
    println!("\ntop flows by certified estimate:");
    for (k, est) in report.iter().take(10) {
        println!(
            "  flow {k:>20}: estimate {:>7} (truth {:>7}, interval [{}, {}])",
            est.value,
            truth.freq(k),
            est.lower_bound(),
            est.upper_bound()
        );
    }
}
