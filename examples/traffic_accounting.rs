//! Byte-accurate traffic accounting on the switch model — the paper's
//! testbed scenario (§6.5.3): values are packet sizes, the sketch runs
//! under Tofino pipeline constraints, and per-flow byte counts come back
//! with certified error in Kbps.
//!
//! ```sh
//! cargo run --release --example traffic_accounting
//! ```

use reliablesketch::dataplane::TofinoReliable;
use reliablesketch::prelude::*;
use reliablesketch::stream::packets::{bytes_error_to_kbps, PacketSizeModel};

fn main() {
    // 2M packets with realistic sizes, replayed "at 40 Gbps"
    let sizes = PacketSizeModel::internet_mix();
    let unit = Dataset::IpTrace.generate(2_000_000, 3);
    let stream = sizes.apply(&unit, 99);
    let truth = GroundTruth::from_items(&stream);
    let total_bytes = truth.total();

    // byte-domain tolerance: 25 average-sized packets
    let lambda_bytes = (25.0 * sizes.mean()) as u64;

    println!(
        "replay: {} packets, {:.1} MB, {} flows, Λ = {lambda_bytes} bytes",
        stream.len(),
        total_bytes as f64 / 1e6,
        truth.distinct()
    );

    for sram_kb in [32usize, 64, 128, 256] {
        let mut sw = TofinoReliable::<u64>::new(sram_kb * 1024, lambda_bytes, 5);
        for it in &stream {
            sw.insert(&it.key, it.value);
        }
        let mut abs_sum = 0.0;
        let mut outliers = 0u64;
        for (k, f) in truth.iter() {
            let err = sw.query(k).abs_diff(f);
            abs_sum += err as f64;
            if err > lambda_bytes {
                outliers += 1;
            }
        }
        let aae_bytes = abs_sum / truth.distinct() as f64;
        println!(
            "SRAM {sram_kb:>4} KB | AAE {:>8.2} Kbps | outliers {:>5} | recirculated pkts {:>6} | failures {:>6}",
            bytes_error_to_kbps(aae_bytes, total_bytes, 40.0),
            outliers,
            sw.recirculations(),
            sw.insertion_failures(),
        );
    }

    println!(
        "\nthe recirculation column is the switch-side cost of the lock \
         mechanism (paper §5.2 Challenge II): one extra pipeline pass per \
         lock event, vanishing relative to traffic"
    );
}
