//! Multi-core ingestion with the sharded wrapper — a beyond-the-paper
//! extension showing the structure also scales across CPU cores (the
//! paper scales it across FPGA/switch pipelines instead).
//!
//! ```sh
//! cargo run --release --example multicore_ingest
//! ```

use reliablesketch::core::concurrent::ShardedReliable;
use reliablesketch::core::ReliableConfig;
use reliablesketch::prelude::*;
use std::time::Instant;

fn main() {
    let stream = Dataset::DataCenter.generate(4_000_000, 21);
    let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();
    let truth = GroundTruth::from_items(&stream);

    let config = ReliableConfig {
        memory_bytes: 1 << 20,
        lambda: 25,
        ..Default::default()
    };

    // single-sketch baseline
    let t0 = Instant::now();
    let mut single = ReliableSketch::<u64>::new(config.clone());
    for (k, v) in &items {
        single.insert(k, *v);
    }
    let single_secs = t0.elapsed().as_secs_f64();
    println!(
        "1 thread : {:>6.1} ms ({:.1} Mops/s)",
        single_secs * 1e3,
        items.len() as f64 / single_secs / 1e6
    );

    for threads in [2usize, 4, 8] {
        let sharded = ShardedReliable::<u64>::new(config.clone(), threads);
        let t0 = Instant::now();
        sharded.ingest_parallel(&items, threads);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{threads} threads: {:>6.1} ms ({:.1} Mops/s), failures {}",
            secs * 1e3,
            items.len() as f64 / secs / 1e6,
            sharded.insertion_failures()
        );

        // the per-key guarantee survives sharding: spot-check 1000 keys
        let mut checked = 0;
        for (k, f) in truth.iter().take(1000) {
            let est = sharded.query_shared(k);
            assert!(
                est.contains(f) || sharded.insertion_failures() > 0,
                "guarantee violated for {k}"
            );
            checked += 1;
        }
        println!("          guarantee spot-checked on {checked} keys");
    }
}
