//! Multi-core ingestion on the lock-free sharded data path — a
//! beyond-the-paper extension showing the structure also scales across
//! CPU cores (the paper scales it across FPGA/switch pipelines instead).
//!
//! The hot path holds no mutex and sends no per-item channel message:
//! shards are arrays of single-word CAS buckets, workers partition the
//! stream into shard-affine batches, and each shard is flushed by one
//! owner in stream order — so the parallel result is bit-for-bit
//! identical to a sequential replay, which this example verifies.
//!
//! ```sh
//! cargo run --release --example multicore_ingest
//! ```

use reliablesketch::core::concurrent::ShardedReliable;
use reliablesketch::core::ReliableConfig;
use reliablesketch::prelude::*;
use std::time::Instant;

fn main() {
    let stream = Dataset::DataCenter.generate(4_000_000, 21);
    let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();
    let truth = GroundTruth::from_items(&stream);

    let config = ReliableConfig {
        memory_bytes: 1 << 20,
        lambda: 25,
        ..Default::default()
    };

    // single-sketch sequential baseline, batch-amortized
    let t0 = Instant::now();
    let mut single = ReliableSketch::<u64>::new(config.clone());
    single.insert_batch(&items);
    let single_secs = t0.elapsed().as_secs_f64();
    println!(
        "1 thread : {:>6.1} ms ({:.1} Mops/s)  [ReliableSketch::insert_batch]",
        single_secs * 1e3,
        items.len() as f64 / single_secs / 1e6
    );

    // the deterministic reference: a sequential replay into the same
    // sharded structure
    let reference = ShardedReliable::<u64>::new(config.clone(), 8);
    for (k, v) in &items {
        reference.insert_shared(k, *v);
    }

    for workers in [1usize, 2, 4, 8] {
        let sharded = ShardedReliable::<u64>::new(config.clone(), 8);
        let t0 = Instant::now();
        sharded.ingest_parallel(&items, workers);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{workers} workers: {:>6.1} ms ({:.1} Mops/s), failures {}, CAS retries {}",
            secs * 1e3,
            items.len() as f64 / secs / 1e6,
            sharded.insertion_failures(),
            sharded.cas_retries(),
        );

        // determinism: the parallel run answers identically to the
        // sequential replay, and the per-key guarantee survives sharding
        let mut checked = 0;
        for (k, f) in truth.iter().take(1000) {
            let est = sharded.query_shared(k);
            assert_eq!(est, reference.query_shared(k), "nondeterminism at {k}");
            assert!(
                est.contains(f) || sharded.insertion_failures() > 0,
                "guarantee violated for {k}"
            );
            checked += 1;
        }
        println!("          identical to sequential + guarantee on {checked} keys");
    }
}
