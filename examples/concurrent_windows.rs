//! Windowed, multi-core, distributed: the lock-free path at feature
//! parity with the sequential sketch.
//!
//! Two "sites" each run an `EpochedConcurrent` window (lock-free atomic
//! buckets with the paper's §3.3 mice filter in front), fed by parallel
//! producers per measurement interval. At every epoch boundary the
//! windows rotate; retired generations are folded into a long-horizon
//! roll-up with `Merge`. At the end, one site's roll-up absorbs the
//! other's — distributed aggregation across lock-free sketches — and an
//! edge device running the *sequential* sketch is merged in too.
//!
//! ```sh
//! cargo run --release --example concurrent_windows
//! ```

use reliablesketch::core::atomic::ConcurrentReliable;
use reliablesketch::core::{EmergencyPolicy, LayerGeometry, ReliableConfig, ATOMIC_BUCKET_BYTES};
use reliablesketch::prelude::*;
use std::collections::HashMap;

const EPOCHS: u64 = 3;
const ITEMS_PER_EPOCH: usize = 400_000;

fn config() -> ReliableConfig {
    ReliableConfig {
        memory_bytes: 256 * 1024,
        lambda: 25,
        emergency: EmergencyPolicy::ExactTable,
        seed: 7,
        ..Default::default() // paper defaults: 20% 2-bit CU mice filter
    }
}

fn main() {
    let mut sites: Vec<EpochedConcurrent<u64>> =
        (0..2).map(|_| EpochedConcurrent::new(config())).collect();
    let mut rollups: Vec<Option<ConcurrentReliable<u64>>> = vec![None, None];
    let mut truth: HashMap<u64, u64> = HashMap::new();

    for epoch in 0..EPOCHS {
        for (s, site) in sites.iter_mut().enumerate() {
            let stream = Dataset::DataCenter.generate(ITEMS_PER_EPOCH, 10 * epoch + s as u64);
            let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();
            for (k, v) in &items {
                *truth.entry(*k).or_insert(0) += v;
            }
            // four producer threads through the shared reference
            site.ingest_parallel(&items, 4);
            let active = site.active();
            println!(
                "epoch {epoch}, site {s}: {} items, filter saturation {:.1}%, CAS retries {}",
                items.len(),
                active
                    .filter()
                    .map_or(0.0, |f| f.saturation_ratio() * 100.0),
                active.array().stats().retries(),
            );
        }
        // interval boundary: rotate, archive the retiring generation
        for (s, site) in sites.iter_mut().enumerate() {
            if let Some(retired) = site.rotate() {
                match &mut rollups[s] {
                    None => rollups[s] = Some(retired),
                    Some(acc) => acc.merge(&retired).expect("same config"),
                }
            }
        }
    }

    // drain the windows into the roll-ups: rotate twice so both visible
    // generations retire
    for (s, site) in sites.iter_mut().enumerate() {
        for _ in 0..2 {
            if let Some(retired) = site.rotate() {
                match &mut rollups[s] {
                    None => rollups[s] = Some(retired),
                    Some(acc) => acc.merge(&retired).expect("same config"),
                }
            }
        }
    }

    // distributed aggregation: site 1's roll-up folds into site 0's
    let mut collector = rollups[0].take().expect("site 0 saw traffic");
    collector
        .merge(rollups[1].as_ref().expect("site 1 saw traffic"))
        .expect("identical configurations");

    // an edge device running the *sequential* sketch joins the aggregate:
    // build it over the collector's exact geometry, then fold it in
    let geometry = LayerGeometry::derive(
        (config().layer_bytes() / ATOMIC_BUCKET_BYTES).max(1),
        config().layer_lambda(),
        config().r_w,
        config().r_lambda,
        config().depth,
        config().lambda_floor_one,
    );
    let mut edge = ReliableSketch::<u64>::with_geometry(config(), geometry);
    let stream = Dataset::DataCenter.generate(ITEMS_PER_EPOCH, 99);
    for it in &stream {
        edge.insert(&it.key, it.value);
        *truth.entry(it.key).or_insert(0) += it.value;
    }
    collector
        .merge_from_sequential(&edge)
        .expect("twin geometry");

    // verify: every key of the combined history is certified
    let mut checked = 0u64;
    let mut widest = 0u64;
    for (k, &f) in truth.iter().take(20_000) {
        let est = collector.query_with_error(k);
        assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        widest = widest.max(est.width());
        checked += 1;
    }
    println!(
        "merged collector: {} sites × {EPOCHS} epochs + 1 sequential edge, \
         {checked} keys certified, widest interval {widest}, merged={}",
        sites.len(),
        collector.is_merged(),
    );
}
