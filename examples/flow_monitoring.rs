//! Interval-based flow monitoring on real packet keys — the switch
//! deployment loop of §6.5.3, in software.
//!
//! A router-style pipeline: packets carry 13-byte 5-tuple flow keys and
//! byte-counted values; every measurement interval the operator reads
//! out the heavy flows of the *previous* interval and the structure
//! rotates. [`EpochedReliable`] keeps exactly the two visible
//! generations, so memory stays bounded forever while each per-flow
//! answer still comes with a certified error interval.
//!
//! ```sh
//! cargo run --release --example flow_monitoring
//! ```

use reliablesketch::core::epoch::EpochedReliable;
use reliablesketch::core::EmergencyPolicy;
use reliablesketch::prelude::*;
use reliablesketch::stream::datasets::to_five_tuples;
use reliablesketch::stream::packets::PacketSizeModel;

const INTERVALS: usize = 6;
const PACKETS_PER_INTERVAL: usize = 500_000;
const MEMORY: usize = 512 * 1024; // per generation
const LAMBDA_BYTES: u64 = 15_000; // error tolerance in bytes (≈10 MTU pkts)
const HEAVY_BYTES: u64 = 2_000_000; // report flows above 2 MB / interval

fn main() {
    // synthesize the packet feed: IP-trace key mix, internet packet sizes,
    // expanded to 5-tuple keys as a real pipeline would see them
    let base = Dataset::IpTrace.generate(INTERVALS * PACKETS_PER_INTERVAL, 31);
    let sized = PacketSizeModel::internet_mix().apply(&base, 31);
    let packets = to_five_tuples(&sized);

    let mut window: EpochedReliable<[u8; 13]> = EpochedReliable::<[u8; 13]>::builder()
        .memory_bytes(MEMORY)
        .error_tolerance(LAMBDA_BYTES)
        .emergency(EmergencyPolicy::ExactTable)
        .build_epoched();

    println!(
        "monitoring {INTERVALS} intervals x {PACKETS_PER_INTERVAL} pkts, \
         {} KB/generation, Λ = {} KB",
        MEMORY / 1024,
        LAMBDA_BYTES / 1000
    );

    for (interval, chunk) in packets.chunks(PACKETS_PER_INTERVAL).enumerate() {
        // ingest this interval's packets (key = flow, value = bytes)
        for pkt in chunk {
            window.insert(&pkt.key, pkt.value);
        }

        // ground truth for the *visible window* (this + previous interval)
        let window_start = interval.saturating_sub(1) * PACKETS_PER_INTERVAL;
        let window_end = (interval + 1) * PACKETS_PER_INTERVAL;
        let truth = GroundTruth::from_items(&packets[window_start..window_end]);

        // operator readout: heavy flows with certified byte counts
        let report = window.heavy_hitters(HEAVY_BYTES);
        let mut verified = 0usize;
        for (flow, est) in &report {
            assert!(
                est.contains(truth.freq(flow)),
                "interval {interval}: dishonest interval for {flow:?}"
            );
            verified += 1;
        }

        // no heavy flow escapes: everything above threshold + window slack
        // must be in the report
        let ceiling = window.mpe_ceiling();
        let mut missed = 0usize;
        for flow in truth.keys_above(HEAVY_BYTES + ceiling) {
            if !report.iter().any(|(k, _)| *k == flow) {
                missed += 1;
            }
        }

        println!(
            "interval {interval}: {:>3} heavy flows reported ({verified} certified, \
             {missed} missed, failures {})",
            report.len(),
            window.insertion_failures(),
        );
        assert_eq!(missed, 0, "recall guarantee violated");

        window.rotate();
    }
    println!("bounded memory: {} KB total", window.memory_bytes() / 1024);
}
