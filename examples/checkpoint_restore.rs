//! Crash recovery via snapshots — persist the sketch, kill the process,
//! resume exactly where it stopped.
//!
//! A measurement daemon checkpoints its ReliableSketch at interval
//! boundaries. When the process dies mid-interval, the restarted daemon
//! restores the last checkpoint and replays the tail of the stream from
//! its packet log; the recovered summary answers *identically* to an
//! uninterrupted run.
//!
//! ```sh
//! cargo run --release --example checkpoint_restore
//! ```

use reliablesketch::core::replicate::SketchSnapshot;
use reliablesketch::core::EmergencyPolicy;
use reliablesketch::prelude::*;

const ITEMS: usize = 2_000_000;
const CHECKPOINT_EVERY: usize = 500_000;
const MEMORY: usize = 256 * 1024;
const LAMBDA: u64 = 25;

fn build() -> ReliableSketch<u64> {
    ReliableSketch::<u64>::builder()
        .memory_bytes(MEMORY)
        .error_tolerance(LAMBDA)
        .emergency(EmergencyPolicy::ExactTable)
        .seed(77)
        .build()
}

fn main() {
    let stream = Dataset::WebStream.generate(ITEMS, 19);
    let crash_at = 1_234_567usize; // somewhere mid-interval

    // --- the daemon: ingest, checkpoint every interval, crash ---------
    let mut daemon = build();
    let mut last_checkpoint: Option<(usize, String)> = None;
    for (i, it) in stream.iter().enumerate().take(crash_at) {
        if i > 0 && i % CHECKPOINT_EVERY == 0 {
            let json = serde_json::to_string(&daemon.snapshot()).expect("serialize");
            println!("checkpoint at item {i}: {} KB of JSON", json.len() / 1024);
            last_checkpoint = Some((i, json));
        }
        daemon.insert(&it.key, it.value);
    }
    drop(daemon); // the crash
    println!("daemon crashed at item {crash_at}");

    // --- recovery: restore the checkpoint, replay the logged tail -----
    let (from, json) = last_checkpoint.expect("at least one checkpoint");
    let snapshot: SketchSnapshot<u64> = serde_json::from_str(&json).expect("parse");
    let mut recovered = ReliableSketch::restore(snapshot).expect("restore");
    println!("restored checkpoint from item {from}, replaying the tail");
    for it in &stream[from..] {
        recovered.insert(&it.key, it.value);
    }

    // --- referee: an uninterrupted run over the same stream -----------
    let mut reference = build();
    for it in &stream {
        reference.insert(&it.key, it.value);
    }

    let truth = GroundTruth::from_items(&stream);
    let mut divergent = 0u64;
    let mut broken = 0u64;
    for (k, f) in truth.iter() {
        let r = recovered.query_with_error(k);
        if r != reference.query_with_error(k) {
            divergent += 1;
        }
        if !r.contains(f) {
            broken += 1;
        }
    }
    println!(
        "{} keys audited: {divergent} divergent answers, {broken} broken intervals",
        truth.distinct()
    );
    assert_eq!(divergent, 0, "recovery must be exact");
    assert_eq!(broken, 0, "certified intervals must hold after recovery");
    println!("recovered summary is bit-identical to the uninterrupted run");
}
