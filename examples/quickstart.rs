//! Quickstart: build a ReliableSketch, feed it a synthetic packet stream,
//! query keys with certified error intervals.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use reliablesketch::prelude::*;

fn main() {
    // 1. Configure: 512 KB of memory, tolerate at most Λ = 25 error on
    //    any key. Everything else (R_w = 2, R_λ = 2.5, 20 % mice filter)
    //    follows the paper's recommended defaults. The same builder can
    //    finish with `build_concurrent()`, `build_sharded(n)`, or
    //    `build_epoched_concurrent()` for the parallel deployment shapes.
    let mut sketch = reliablesketch::builder()
        .memory_bytes(512 * 1024)
        .error_tolerance(25)
        .build_sequential::<u64>();

    // 2. Stream: two million packets of a synthetic CAIDA-like trace.
    let stream = Dataset::IpTrace.generate(2_000_000, 42);
    let truth = GroundTruth::from_items(&stream);
    for item in &stream {
        sketch.insert(&item.key, item.value);
    }
    println!(
        "ingested {} items over {} distinct flows into {} KB",
        truth.total(),
        truth.distinct(),
        sketch.memory_bytes() / 1024
    );

    // 3. Query any key: the answer comes with its Maximum Possible Error,
    //    and truth ∈ [estimate − MPE, estimate] for every key as long as
    //    no insertion failed.
    println!("insertion failures: {}", sketch.insertion_failures());
    let mut worst_err = 0u64;
    let mut contained = 0u64;
    for (key, f) in truth.iter() {
        let est = sketch.query_with_error(key);
        assert!(est.max_possible_error <= 25, "MPE is capped by Λ");
        if est.contains(f) {
            contained += 1;
        }
        worst_err = worst_err.max(est.value.abs_diff(f));
    }
    println!(
        "all {} flows answered; worst absolute error = {worst_err} (Λ = 25); \
         {contained} certified intervals contained the truth",
        truth.distinct()
    );

    // 4. A few sample answers.
    println!("\nsample answers:");
    for (key, f) in truth.iter().take(5) {
        let est = sketch.query_with_error(key);
        println!(
            "  flow {key:>20}: true {f:>6}, estimate {:>6}, certified interval [{}, {}]",
            est.value,
            est.lower_bound(),
            est.upper_bound()
        );
    }
}
