//! Error sensing in action — what makes ReliableSketch different from
//! every counter sketch: each answer carries a *certified* Maximum
//! Possible Error (paper §3.1, Figures 17–18).
//!
//! The demo shows (a) interval containment across the whole key
//! population, (b) how the sensed error tracks the actual error, and
//! (c) how both shrink as memory grows.
//!
//! ```sh
//! cargo run --release --example error_sensing
//! ```

use reliablesketch::prelude::*;

fn main() {
    let stream = Dataset::WebStream.generate(1_000_000, 11);
    let truth = GroundTruth::from_items(&stream);

    println!(
        "stream: {} items, {} keys\n",
        truth.total(),
        truth.distinct()
    );
    println!("memory    failures   containment      mean sensed   mean actual   max actual");

    for mem_kb in [64usize, 128, 256, 512] {
        let mut sk = ReliableSketch::<u64>::builder()
            .memory_bytes(mem_kb * 1024)
            .error_tolerance(25)
            .build::<u64>();
        for it in &stream {
            sk.insert(&it.key, it.value);
        }

        let mut contained = 0u64;
        let mut sensed_sum = 0.0;
        let mut actual_sum = 0.0;
        let mut max_actual = 0u64;
        for (k, f) in truth.iter() {
            let est = sk.query_with_error(k);
            if est.contains(f) {
                contained += 1;
            }
            sensed_sum += est.max_possible_error as f64;
            let actual = est.value.abs_diff(f);
            actual_sum += actual as f64;
            max_actual = max_actual.max(actual);
        }
        let n = truth.distinct() as f64;
        println!(
            "{:>5} KB {:>9} {:>9}/{:<9} {:>10.3} {:>13.3} {:>12}",
            mem_kb,
            sk.insertion_failures(),
            contained,
            truth.distinct(),
            sensed_sum / n,
            actual_sum / n,
            max_actual,
        );
    }

    println!(
        "\nreading the table: 'sensed' is the mean certified MPE, an upper \
         bound the sketch derives *without knowing the truth*; it tracks \
         the actual error and both fall as memory grows (Fig 18). With \
         zero insertion failures every interval contains the truth and \
         the max actual error stays ≤ Λ = 25 (Fig 17)."
    );
}
