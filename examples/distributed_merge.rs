//! Distributed aggregation: per-shard summarize, fold centrally.
//!
//! Network-wide measurement shards traffic across devices (ToR switches,
//! NIC queues, worker cores). Each shard keeps its own ReliableSketch;
//! a collector merges them into one summary that still carries certified
//! per-key error intervals — something plain counter sketches cannot do
//! (they merge, but cannot tell you which answers went bad).
//!
//! ```sh
//! cargo run --release --example distributed_merge
//! ```

use reliablesketch::core::EmergencyPolicy;
use reliablesketch::prelude::*;
use std::thread;
use std::time::Instant;

const SHARDS: usize = 4;
const ITEMS: usize = 4_000_000;
const MEMORY: usize = 512 * 1024; // per shard
const LAMBDA: u64 = 25;
const SEED: u64 = 2026;

fn build() -> ReliableSketch<u64> {
    ReliableSketch::<u64>::builder()
        .memory_bytes(MEMORY)
        .error_tolerance(LAMBDA)
        .emergency(EmergencyPolicy::ExactTable)
        .seed(SEED) // identical seeds across shards: a merge precondition
        .build()
}

fn main() {
    let stream = Dataset::IpTrace.generate(ITEMS, 7);
    let truth = GroundTruth::from_items(&stream);
    println!(
        "stream: {} items, {} distinct keys, {} shards x {} KB",
        ITEMS,
        truth.distinct(),
        SHARDS,
        MEMORY / 1024
    );

    // --- phase 1: each shard summarizes its slice on its own thread ----
    let t0 = Instant::now();
    let shards: Vec<ReliableSketch<u64>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..SHARDS)
            .map(|s| {
                let slice: Vec<Item<u64>> =
                    stream.iter().skip(s).step_by(SHARDS).copied().collect();
                scope.spawn(move || {
                    let mut sk = build();
                    for it in &slice {
                        sk.insert(&it.key, it.value);
                    }
                    sk
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let ingest = t0.elapsed();

    // --- phase 2: the collector folds the shards ----------------------
    let t1 = Instant::now();
    let merged = merge_all(shards).expect("identically configured shards");
    let fold = t1.elapsed();
    println!(
        "ingest {:.0} ms on {SHARDS} threads, fold {:.2} ms",
        ingest.as_secs_f64() * 1e3,
        fold.as_secs_f64() * 1e3
    );

    // --- phase 3: audit the merged summary against the ground truth ---
    //
    // Merging relaxes the a-priori `error ≤ Λ` ceiling (two shards can
    // elect different heavy candidates into one bucket), but the error
    // stays *sensed*: every key whose error exceeds Λ must also carry an
    // MPE above Λ, so the collector can tell exactly which answers to
    // distrust — the property plain counter sketches lose on merge.
    let mut outliers = 0u64;
    let mut flagged = 0u64;
    let mut silent_outliers = 0u64;
    let mut broken_intervals = 0u64;
    let mut worst_mpe = 0u64;
    let mut aae = 0.0f64;
    for (k, f) in truth.iter() {
        let est = merged.query_with_error(k);
        let err = est.value.abs_diff(f);
        if err > LAMBDA {
            outliers += 1;
            if est.max_possible_error <= LAMBDA {
                silent_outliers += 1; // error above Λ yet not flagged: bad
            }
        }
        if est.max_possible_error > LAMBDA {
            flagged += 1;
        }
        if !est.contains(f) {
            broken_intervals += 1;
        }
        worst_mpe = worst_mpe.max(est.max_possible_error);
        aae += err as f64;
    }
    aae /= truth.distinct() as f64;

    println!("merged summary ({} bytes model):", merged.memory_bytes());
    println!("  AAE               : {aae:.3}");
    println!("  outliers (>Λ={LAMBDA})  : {outliers}");
    println!("  keys flagged MPE>Λ: {flagged} (self-reported uncertainty)");
    println!("  silent outliers   : {silent_outliers} (must be 0 — errors stay sensed)");
    println!("  broken intervals  : {broken_intervals} (must be 0 — certified)");
    println!("  worst sensed MPE  : {worst_mpe}");
    println!(
        "  top-5 heavy hitters: {:?}",
        merged
            .heavy_hitters(10_000)
            .into_iter()
            .take(5)
            .map(|(k, e)| (k, e.value))
            .collect::<Vec<_>>()
    );

    assert_eq!(broken_intervals, 0, "certified intervals must never lie");
    assert_eq!(silent_outliers, 0, "every outlier must be self-flagged");
}
