//! Running the sketch on your own traces: write/read the binary and CSV
//! trace formats, then summarize a loaded trace.
//!
//! ```sh
//! cargo run --release --example trace_io
//! ```

use reliablesketch::prelude::*;
use reliablesketch::stream::io;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("reliablesketch_trace_demo");
    std::fs::create_dir_all(&dir)?;

    // 1. produce a trace (stand-in for your packet capture)
    let stream = Dataset::DataCenter.generate(500_000, 9);
    let bin_path = dir.join("capture.rskt");
    let csv_path = dir.join("capture.csv");
    io::write_binary(&bin_path, &stream)?;
    io::write_csv(&csv_path, &stream[..1000])?; // CSV for interchange
    println!(
        "wrote {} items → {} ({} KB binary) and first 1000 → {}",
        stream.len(),
        bin_path.display(),
        std::fs::metadata(&bin_path)?.len() / 1024,
        csv_path.display()
    );

    // 2. load it back and summarize
    let loaded = io::read_binary(&bin_path)?;
    assert_eq!(loaded, stream);
    let mut sk = ReliableSketch::<u64>::builder()
        .memory_bytes(128 * 1024)
        .error_tolerance(25)
        .build::<u64>();
    for it in &loaded {
        sk.insert(&it.key, it.value);
    }
    let truth = GroundTruth::from_items(&loaded);
    let outliers = truth
        .iter()
        .filter(|(k, f)| sk.query(k).abs_diff(*f) > 25)
        .count();
    println!(
        "summarized {} flows in {} KB: {} outliers, {} insertion failures",
        truth.distinct(),
        sk.memory_bytes() / 1024,
        outliers,
        sk.insertion_failures()
    );

    // 3. the CSV reader tolerates headers and defaults missing values to 1
    let csv_back = io::read_csv(&csv_path)?;
    assert_eq!(&csv_back[..], &stream[..1000]);
    println!("CSV round-trip verified ({} items)", csv_back.len());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
