//! Minimal `serde_json` shim: JSON text to and from the vendored serde
//! shim's [`Value`] data model.
//!
//! Supports everything the workspace round-trips through checkpoints:
//! full-width `u64` integers, shortest-roundtrip floats, escaped strings,
//! arrays and objects. Not a general JSON library — no streaming, no
//! borrowed deserialization — but `to_string`/`from_str` are call-compatible
//! with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::value::Value;
use serde::{de::DeserializeOwned, Serialize};

/// Error for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

// ---------------------------------------------------------------- writer

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("non-finite float {f} is not valid JSON")));
            }
            // Rust's Debug for f64 is the shortest representation that
            // round-trips, which is exactly what JSON needs.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Enforce the JSON number grammar (RFC 8259 §6): Rust's `FromStr` for
/// `f64`/`u64` is more permissive (`+5`, `.5`, `5.`, `007`, `inf`), and
/// accepting those here would let checkpoints round-trip through the shim
/// that the real `serde_json` rejects.
fn is_json_number(text: &str) -> bool {
    let mut rest = text.strip_prefix('-').unwrap_or(text).as_bytes();
    // Integer part: `0` alone, or a non-zero digit followed by digits.
    match rest {
        [b'0', tail @ ..] => rest = tail,
        [b'1'..=b'9', tail @ ..] => {
            rest = tail;
            while let [b'0'..=b'9', tail @ ..] = rest {
                rest = tail;
            }
        }
        _ => return false,
    }
    // Optional fraction: `.` followed by at least one digit.
    if let [b'.', tail @ ..] = rest {
        rest = tail;
        let mut digits = 0;
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
    }
    // Optional exponent: `e`/`E`, optional sign, at least one digit.
    if let [b'e' | b'E', tail @ ..] = rest {
        rest = tail;
        if let [b'+' | b'-', tail @ ..] = rest {
            rest = tail;
        }
        let mut digits = 0;
        while let [b'0'..=b'9', tail @ ..] = rest {
            rest = tail;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
    }
    rest.is_empty()
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or ']' at byte {}, got {:?}",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let value = self.value()?;
                    entries.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at byte {}, got {:?}",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs: only BMP escapes are emitted by
                            // this shim's writer; accept lone BMP scalars.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u scalar".into()))?,
                            );
                        }
                        other => return Err(Error(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream: back up and take
                    // the full character.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_json_number(text) {
            return Err(Error(format!("invalid number {text:?} at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid float literal {text:?}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("integer {text:?} out of range")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("integer {text:?} out of range")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "18446744073709551615",
            "-42",
            "1.5",
        ] {
            let v: Value = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&v, &mut out).unwrap();
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let json = r#"{"a":[1,2,{"b":"x\ny"}],"c":null}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&v, &mut out).unwrap();
        assert_eq!(out, json);
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![(1u64, true), (u64::MAX, false)];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u64, bool)> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn number_grammar_matches_json() {
        for bad in ["+5", ".5", "5.", "007", "-", "1e", "1e+", "--1", "0x10"] {
            assert!(from_str::<f64>(bad).is_err(), "{bad:?} must be rejected");
        }
        for (good, want) in [("1e5", 1e5), ("-0", 0.0), ("0.25", 0.25), ("2E-2", 0.02)] {
            assert_eq!(from_str::<f64>(good).unwrap(), want);
        }
    }
}
