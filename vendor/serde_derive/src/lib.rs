//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! shim.
//!
//! Implemented directly on the raw `proc_macro` token API — `syn`/`quote`
//! are unavailable offline. The parser handles the shapes this workspace
//! actually derives on: structs (named, tuple, unit) and enums whose
//! variants are unit, tuple, or struct-like, with plain type parameters
//! (`<K>` or `<K: Bound>`). Anything fancier (lifetimes, const generics,
//! `where` clauses) panics with a clear message rather than miscompiling.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Type-parameter identifiers, bounds stripped (e.g. `["K"]`).
    generics: Vec<String>,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive the shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive the shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
                           // Inner attributes (`#![..]`) cannot appear here; expect `[..]`.
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    // `#[serde(...)]` attributes carry semantics (rename,
                    // default, skip, tag, ...) this shim does not implement;
                    // ignoring one would silently change the wire format.
                    if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
                        if id.to_string() == "serde" {
                            panic!(
                                "serde_derive shim: #[serde(...)] attributes are not \
                                 supported; drop the attribute or restore the real \
                                 serde crates in [workspace.dependencies]"
                            );
                        }
                    }
                }
                other => panic!("serde_derive shim: malformed attribute, got {other:?}"),
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1; // pub(crate) etc.
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected identifier, got {other:?}"),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// After the opening `<`: collect type-parameter names, skipping bounds
    /// and defaults, until the matching `>` is consumed.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        let mut depth = 1usize; // the consumed '<'
        let mut at_param_start = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => {
                        depth += 1;
                        at_param_start = false;
                    }
                    '>' => {
                        depth -= 1;
                    }
                    ',' if depth == 1 => at_param_start = true,
                    '\'' => panic!("serde_derive shim: lifetime parameters are not supported"),
                    _ => at_param_start = false,
                },
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if at_param_start {
                        if s == "const" {
                            panic!("serde_derive shim: const generics are not supported");
                        }
                        params.push(s);
                    }
                    at_param_start = false;
                }
                Some(_) => at_param_start = false,
                None => panic!("serde_derive shim: unterminated generics"),
            }
        }
        params
    }

    /// Skip one field's type: everything until a top-level `,` (consumed) or
    /// the end of the token list.
    fn skip_type(&mut self) {
        let mut angle = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle = angle.saturating_sub(1);
                    } else if c == ',' && angle == 0 {
                        self.pos += 1;
                        return;
                    }
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
    }
}

fn named_fields(group: TokenStream) -> Vec<String> {
    let mut c = Cursor {
        tokens: group.into_iter().collect(),
        pos: 0,
    };
    let mut fields = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        c.skip_visibility();
        fields.push(c.expect_ident());
        if !c.eat_punct(':') {
            panic!(
                "serde_derive shim: expected `:` after field `{}`",
                fields.last().unwrap()
            );
        }
        c.skip_type();
    }
    fields
}

/// Count top-level comma-separated entries of a tuple field list.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle = 0usize;
    let mut arity = 1usize;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            let ch = p.as_char();
            if ch == '<' {
                angle += 1;
            } else if ch == '>' {
                angle = angle.saturating_sub(1);
            } else if ch == ',' && angle == 0 {
                arity += 1;
                trailing_comma = true;
                continue;
            }
        }
        trailing_comma = false;
    }
    arity - usize::from(trailing_comma)
}

fn parse(input: TokenStream) -> Input {
    let mut c = Cursor {
        tokens: input.into_iter().collect(),
        pos: 0,
    };
    c.skip_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident();
    let name = c.expect_ident();
    let generics = if c.eat_punct('<') {
        c.parse_generics()
    } else {
        Vec::new()
    };

    if let Some(TokenTree::Ident(id)) = c.peek() {
        if id.to_string() == "where" {
            panic!("serde_derive shim: `where` clauses are not supported");
        }
    }

    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: malformed struct body {other:?}"),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive shim: malformed enum body {other:?}"),
            };
            let mut vc = Cursor {
                tokens: body.into_iter().collect(),
                pos: 0,
            };
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.skip_attrs();
                let vname = vc.expect_ident();
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = VariantFields::Named(named_fields(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = VariantFields::Tuple(tuple_arity(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    _ => VariantFields::Unit,
                };
                if vc.eat_punct('=') {
                    vc.skip_type(); // discriminant expression, up to the comma
                } else {
                    vc.eat_punct(',');
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Kind::Enum(variants)
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };

    Input {
        name,
        generics,
        kind,
    }
}

// ---------------------------------------------------------------- codegen

fn impl_header(input: &Input, trait_name: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let bounded: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = input.generics.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", input.name, plain),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "Serialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::value::Value::Map(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::value::Value::Seq(::std::vec![{}])",
                items.join(", ")
            )
        }
        Kind::UnitStruct => "::serde::value::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::value::Value::Seq(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::value::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::value::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Map(::std::vec![{}]))]),",
                                fields.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "Deserialize");
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))?"))
                .collect();
            format!(
                "if __v.as_map().is_none() {{\n\
                     return ::std::result::Result::Err(\
                     ::serde::DeError::mismatch(\"struct {name}\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq()\
                     .filter(|s| s.len() == {n})\
                     .ok_or_else(|| ::serde::DeError::mismatch(\"tuple struct {name}\", __v))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::value::Value::Null => ::std::result::Result::Ok({name}),\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::mismatch(\"unit struct {name}\", other)),\n\
             }}"
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                        }
                        VariantFields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok(\
                             {name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let __s = __payload.as_seq()\
                                         .filter(|s| s.len() == {n})\
                                         .ok_or_else(|| ::serde::DeError::mismatch(\
                                         \"variant {name}::{vn}\", __payload))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __payload.field(\"{f}\"))?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                     match __s {{\n\
                         {unit}\n\
                         _ => return ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"unknown {name} variant {{__s:?}}\"))),\n\
                     }}\n\
                 }}\n\
                 let __m = __v.as_map()\
                     .filter(|m| m.len() == 1)\
                     .ok_or_else(|| ::serde::DeError::mismatch(\"enum {name}\", __v))?;\n\
                 let (__tag, __payload) = (&__m[0].0, &__m[0].1);\n\
                 match __tag.as_str() {{\n\
                     {tagged}\n\
                     _ => ::std::result::Result::Err(::serde::DeError(\
                     ::std::format!(\"unknown {name} variant {{__tag:?}}\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
         fn from_value(__v: &::serde::value::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
