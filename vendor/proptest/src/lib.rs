//! Minimal property-testing shim with `proptest`'s macro surface.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors the slice of `proptest` it uses: the `proptest!` macro
//! over `name in strategy` bindings, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range and tuple strategies, `collection::vec`,
//! `bool::ANY`, full-domain `any::<T>()`, the `prop_map` combinator, and
//! unweighted `prop_oneof!`.
//!
//! Semantics: each test runs `Config::cases` deterministic cases (seeded by
//! case index, so failures reproduce). There is **no shrinking** — a failure
//! reports the sampled inputs via `Debug` instead. As upstream does, the
//! `PROPTEST_CASES` environment variable adjusts the *default* case count;
//! an explicit `ProptestConfig::with_cases(n)` always wins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value: std::fmt::Debug;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every drawn value with `f`, mirroring
        /// `proptest`'s `Strategy::prop_map`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed same-valued strategies — the engine
    /// behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: std::fmt::Debug> Union<T> {
        /// Build from at least one arm.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    /// Box one `prop_oneof!` arm (free function so arm types unify by
    /// inference without naming the union's value type).
    pub fn union_arm<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T: std::fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_unit() as $t;
                    let v = self.start + unit * (self.end - self.start);
                    // Rounding (and the f64->f32 cast of `unit`) can land
                    // exactly on the exclusive upper bound; clamp below it.
                    if v >= self.end {
                        self.end.next_down().max(self.start)
                    } else {
                        v
                    }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Strategy producing one fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + std::fmt::Debug>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! Full-domain strategies, mirroring `proptest::prelude::any`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: std::fmt::Debug {
        /// Draw one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over `T`'s full domain; obtain via [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    /// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for an unbiased boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// An unbiased boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (exclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic runner machinery behind the `proptest!` macro.

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A config running exactly `cases` cases. Like upstream proptest,
        /// an explicit count is authoritative — `PROPTEST_CASES` only
        /// affects [`Config::default`].
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject,
        /// `prop_assert!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// SplitMix64: deterministic, seeded per case so failures reproduce.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// RNG for one case of one test.
        pub fn new(seed: u64) -> Self {
            TestRng(
                seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(0x1234_5678),
            )
        }

        /// RNG for case `case` of the test named `name`, so distinct tests
        /// draw independent streams (FNV-1a over the name, mixed with the
        /// case index).
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::new(h ^ case)
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn next_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies producing the same value type,
/// mirroring `proptest::prop_oneof!` (without upstream's weighted arms).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm($arm)),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: `proptest! { fn name(x in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __cases = __config.cases;
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            let mut __attempt: u64 = 0;
            while __passed < __cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    ::core::stringify!($name),
                    __attempt,
                );
                __attempt += 1;
                $(let $arg = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);)+
                let __inputs = ::std::format!(
                    ::core::concat!($("\n  ", ::core::stringify!($arg), " = {:?}"),+),
                    $(&$arg),+
                );
                let __result = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    ::core::result::Result::Ok(()) => __passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= 4 * __cases.max(64),
                            "proptest shim: too many prop_assume! rejections in {}",
                            ::core::stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest case {} of {} failed: {}\ninputs:{}",
                            __attempt - 1,
                            ::core::stringify!($name),
                            __msg,
                            __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, f in 1.5f64..2.0, b in crate::bool::ANY) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1.5..2.0).contains(&f));
            let _ = b;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn vec_and_tuple(ops in crate::collection::vec((0u64..30, crate::bool::ANY), 1..500)) {
            prop_assert!(!ops.is_empty() && ops.len() < 500);
            for (v, _) in &ops {
                prop_assert!(*v < 30, "value {v} escaped its range");
            }
        }

        #[test]
        fn assume_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn map_oneof_and_any(
            v in prop_oneof![
                (0u64..10).prop_map(|x| x * 2),
                Just(1u64),
                any::<u8>().prop_map(u64::from),
            ],
            w in any::<u32>(),
        ) {
            prop_assert!(v == 1 || v % 2 == 0 || v <= u64::from(u8::MAX));
            let _ = w;
        }
    }

    #[test]
    fn determinism() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut a = crate::test_runner::TestRng::new(7);
        let mut b = crate::test_runner::TestRng::new(7);
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    #[test]
    fn same_length_names_draw_independent_streams() {
        let mut a = crate::test_runner::TestRng::for_case("prop_aaaa", 0);
        let mut b = crate::test_runner::TestRng::for_case("prop_bbbb", 0);
        assert_ne!(
            (a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64()),
            "equal-length test names must not share a random stream"
        );
    }

    #[test]
    fn float_range_stays_below_upper_bound() {
        use crate::strategy::Strategy;
        // ulp(1e16) = 2.0, so naive start + unit*span rounds onto the
        // exclusive bound for about half of all draws.
        let s = 1.0e16f64..(1.0e16 + 2.0);
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..512 {
            let v = s.sample(&mut rng);
            assert!(v < s.end, "{v} >= {}", s.end);
        }
        let sf = 0.0f32..1.0f32;
        let mut rng = crate::test_runner::TestRng::new(4);
        for _ in 0..4096 {
            let v = sf.sample(&mut rng);
            assert!(v < sf.end);
        }
    }
}
