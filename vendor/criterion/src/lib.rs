//! Minimal `criterion` shim.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the `criterion` API its benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with throughput
//! annotations, `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize`
//! and `black_box`.
//!
//! Measurement is intentionally simple — a fixed warm-up then
//! `sample_size` timed samples, reporting the median per-iteration time —
//! so `cargo bench` gives usable relative numbers quickly. Statistical
//! rigor (outlier analysis, confidence intervals, HTML reports) is out of
//! scope for the shim; restore the upstream crate for that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (items, packets, inserts) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The shim runs one input per
/// routine call regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
    /// Explicit batch count.
    NumBatches(u64),
    /// Explicit iteration count.
    NumIterations(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { label: s.clone() }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last run, used for reporting.
    last_median: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that runs long
        // enough to time reliably, capped to keep total bench time small.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed > Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }

    /// Time `routine` over inputs produced by `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
        }
        samples.sort_unstable();
        self.last_median = samples[samples.len() / 2];
    }
}

fn report(label: &str, median: Duration, throughput: Option<Throughput>) {
    let ns = median.as_nanos().max(1);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.1} Melem/s", n as f64 / ns as f64 * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>12.1} MiB/s",
                n as f64 / ns as f64 * 1e9 / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<60} {ns:>12} ns/iter{rate}");
}

/// A named set of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the units processed per iteration for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        routine(&mut bencher);
        let label = format!("{}/{}", self.name, id.label);
        report(&label, bencher.last_median, self.throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Finish the group (drop-equivalent; kept for API compatibility).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Apply command-line configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            last_median: Duration::ZERO,
        };
        routine(&mut bencher);
        report(&id.label, bencher.last_median, None);
        self
    }

    /// Print the closing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; the shim
            // accepts and ignores them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![n; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
