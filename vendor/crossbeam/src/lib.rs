//! Minimal `crossbeam` shim backed by `std::sync::mpsc`.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors the slice of the `crossbeam` API it uses: multi-producer
//! channels with cloneable senders and iterable receivers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer single-consumer channels with crossbeam's API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is closed.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Cloneable sending half of a channel.
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }

        /// Iterate over received values until the channel closes.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;

        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }

    /// A channel holding at most `cap` in-flight values.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// A channel with unbounded buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_fan_in() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let txs: Vec<_> = (0..3).map(|_| tx.clone()).collect();
        drop(tx);
        std::thread::scope(|scope| {
            for (i, t) in txs.into_iter().enumerate() {
                scope.spawn(move || t.send(i as u32).unwrap());
            }
        });
        let mut got: Vec<u32> = rx.into_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(9u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }
}
