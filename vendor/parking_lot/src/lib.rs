//! Minimal `parking_lot` shim backed by `std::sync`.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `parking_lot` API it uses. The
//! semantic difference that matters to callers — `lock()` returning the guard
//! directly instead of a poison `Result` — is preserved by unwrapping poison
//! into the inner guard, which matches `parking_lot`'s "no poisoning"
//! behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never observes poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

/// A reader-writer lock whose guards never observe poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 8;
        assert_eq!(l.into_inner(), 8);
    }
}
