//! The shim's intermediate data model: an owned JSON-shaped tree.

/// An owned, JSON-shaped value.
///
/// Unsigned and signed integers are kept apart so `u64` counters round-trip
/// at full width; maps preserve insertion order (they are plain vectors),
/// which keeps serialized snapshots deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (full `u64` range).
    UInt(u64),
    /// Negative or signed integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// View as `u64` if the value is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            Value::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// View as `i64` if the value is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// View as `f64` if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(n) => Some(*n as f64),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// View as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as an object's entry list.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// View as an array's element list.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field in an object; absent fields read as [`Value::Null`]
    /// so `Option` fields tolerate elision.
    pub fn field(&self, name: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == name))
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }
}
