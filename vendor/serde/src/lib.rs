//! Minimal `serde`-shaped serialization facade.
//!
//! This build environment has no network access to a crates registry, so the
//! workspace vendors a small stand-in for the `serde` + `serde_derive` pair.
//! Instead of serde's visitor-based zero-copy data model, this shim routes
//! everything through one owned intermediate, [`value::Value`] — ample for
//! the workspace's checkpoint/restore JSON round-trips, and API-compatible at
//! every call site the workspace has (`derive(Serialize, Deserialize)` plus
//! `serde_json::{to_string, from_str}`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Error produced when a [`Value`] cannot be decoded into a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing a type mismatch.
    pub fn mismatch(expected: &str, got: &Value) -> Self {
        DeError(format!("expected {expected}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the intermediate data model.
    fn to_value(&self) -> Value;
}

/// Types that can be decoded from a [`Value`].
pub trait Deserialize: Sized {
    /// Decode from the intermediate data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization module mirroring `serde::de` paths.
pub mod de {
    /// Owned-deserialization marker, mirroring `serde::de::DeserializeOwned`.
    ///
    /// The shim's [`crate::Deserialize`] is already lifetime-free, so this is
    /// a blanket alias rather than a higher-ranked bound.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::mismatch(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // JSON numbers top out at u64 in this shim; persist the full width
        // as a decimal string.
        Value::Str(self.to_string())
    }
}
impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError(format!("bad u128 literal {s:?}"))),
            Value::UInt(n) => Ok(*n as u128),
            other => Err(DeError::mismatch("u128", other)),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::mismatch("f64", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::mismatch("f32", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-char string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::mismatch("fixed-length sequence", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::mismatch("tuple sequence", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::mismatch("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(x: T) {
        assert_eq!(T::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(42u64);
        roundtrip(-7i32);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip(String::from("hi"));
        roundtrip(Some(9u8));
        roundtrip(Option::<u8>::None);
        roundtrip(vec![1u64, 2, 3]);
        roundtrip([4u8; 13]);
        roundtrip((1u64, 2u64, true));
        roundtrip(u128::MAX);
    }

    #[test]
    fn range_errors_surface() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
    }
}
