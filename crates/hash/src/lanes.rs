//! Multi-lane (×4) hashing kernels for the batched sketch hot path.
//!
//! The sketch ingest loop spends most of its cycles hashing: one
//! MurmurHash3 evaluation per layer probe plus one for the fingerprint.
//! These kernels evaluate **four independent keys** through the exact
//! same arithmetic as the scalar functions, expressed over fixed-size
//! lane arrays ([`U32x4`]/[`U64x4`]) so LLVM can keep all four lanes in
//! one vector register — "manual SIMD" without `core::arch` intrinsics,
//! which the workspace-wide `#![forbid(unsafe_code)]` rules out.
//!
//! **Contract: every lane kernel is bit-identical to its scalar
//! counterpart.** Each lane performs the same wrapping multiplies,
//! rotates and xors in the same order as [`murmur3_x86_32`](crate::murmur3_x86_32) /
//! [`splitmix64`](crate::splitmix64) on that lane's input, so `murmur3_u64_x4(ks, s)[l] ==
//! murmur3_x86_32(&ks[l].to_le_bytes(), s)` for every lane `l`. The
//! tests below pin this, and `rsk-core`'s `simd_parity` suite pins the
//! whole ingest path built on top of it.

/// Lane count of the manual-SIMD kernels (one 128-bit vector of `u32`).
pub const LANES: usize = 4;

/// Four `u32` lanes with elementwise wrapping arithmetic.
///
/// The loops below are trivially unrollable (fixed length 4, no
/// cross-lane dependency), which is the shape LLVM's auto-vectorizer
/// turns into `pmulld`/`prold`-style vector code on x86-64 and NEON on
/// aarch64 — while staying 100 % safe, portable Rust.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct U32x4(pub [u32; 4]);

impl U32x4 {
    /// All four lanes set to `v`.
    #[inline]
    pub fn splat(v: u32) -> Self {
        Self([v; 4])
    }

    /// Elementwise `wrapping_mul` by a scalar constant.
    #[inline]
    pub fn mulc(self, m: u32) -> Self {
        Self(self.0.map(|x| x.wrapping_mul(m)))
    }

    /// Elementwise `rotate_left`.
    #[inline]
    pub fn rotl(self, r: u32) -> Self {
        Self(self.0.map(|x| x.rotate_left(r)))
    }

    /// Elementwise `wrapping_add` of a scalar constant.
    #[inline]
    pub fn addc(self, a: u32) -> Self {
        Self(self.0.map(|x| x.wrapping_add(a)))
    }

    /// Elementwise xor with another vector.
    #[inline]
    pub fn xor(self, o: Self) -> Self {
        let mut out = self.0;
        for (x, y) in out.iter_mut().zip(o.0) {
            *x ^= y;
        }
        Self(out)
    }

    /// Elementwise `x ^= x >> s` (the avalanche-mix building block).
    #[inline]
    pub fn xorshift(self, s: u32) -> Self {
        Self(self.0.map(|x| x ^ (x >> s)))
    }
}

/// Four `u64` lanes: the packed-bucket-word comparator's view.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct U64x4(pub [u64; 4]);

impl U64x4 {
    /// Elementwise logical shift right.
    #[inline]
    pub fn lsr(self, s: u32) -> Self {
        Self(self.0.map(|x| x >> s))
    }

    /// Elementwise equality mask (`true` where lanes agree).
    #[inline]
    pub fn eq_mask(self, o: Self) -> [bool; 4] {
        core::array::from_fn(|l| self.0[l] == o.0[l])
    }
}

const C1: u32 = 0xcc9e_2d51;
const C2: u32 = 0x1b87_3593;

/// The shared MurmurHash3 body for four keys of `NBLOCKS` whole 4-byte
/// blocks and no tail (integer keys are block-aligned by construction).
#[inline]
fn murmur3_blocks_x4<const NBLOCKS: usize>(
    blocks: [[u32; LANES]; NBLOCKS],
    len: u32,
    seed: u32,
) -> [u32; LANES] {
    let mut h1 = U32x4::splat(seed);
    for block in blocks {
        let k1 = U32x4(block).mulc(C1).rotl(15).mulc(C2);
        h1 = h1.xor(k1).rotl(13).mulc(5).addc(0xe654_6b64);
    }
    h1 = h1.xor(U32x4::splat(len));
    // fmix32, four lanes wide
    h1 = h1.xorshift(16).mulc(0x85eb_ca6b);
    h1 = h1.xorshift(13).mulc(0xc2b2_ae35);
    h1.xorshift(16).0
}

/// Four-lane [`murmur3_x86_32`](crate::murmur3_x86_32) over `u64` keys (two LE blocks each).
///
/// `murmur3_u64_x4(keys, seed)[l] == murmur3_x86_32(&keys[l].to_le_bytes(), seed)`.
#[inline]
pub fn murmur3_u64_x4(keys: [u64; LANES], seed: u32) -> [u32; LANES] {
    let lo = keys.map(|k| k as u32);
    let hi = keys.map(|k| (k >> 32) as u32);
    murmur3_blocks_x4([lo, hi], 8, seed)
}

/// Four-lane [`murmur3_x86_32`](crate::murmur3_x86_32) over `u32` keys (one LE block each).
#[inline]
pub fn murmur3_u32_x4(keys: [u32; LANES], seed: u32) -> [u32; LANES] {
    murmur3_blocks_x4([keys], 4, seed)
}

/// Four-lane [`murmur3_x86_32`](crate::murmur3_x86_32) over `u128` keys (four LE blocks each).
#[inline]
pub fn murmur3_u128_x4(keys: [u128; LANES], seed: u32) -> [u32; LANES] {
    let blocks: [[u32; LANES]; 4] = core::array::from_fn(|b| keys.map(|k| (k >> (32 * b)) as u32));
    murmur3_blocks_x4(blocks, 16, seed)
}

/// Four-lane [`splitmix64`](crate::splitmix64): the batched seed-derivation mixer.
#[inline]
pub fn splitmix64_x4(xs: [u64; LANES]) -> [u64; LANES] {
    let mut z = xs.map(|x| x.wrapping_add(0x9e37_79b9_7f4a_7c15));
    z = z.map(|z| (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = z.map(|z| (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb));
    z.map(|z| z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{murmur3_x86_32, splitmix64};

    fn mix(i: u64) -> u64 {
        splitmix64(i.wrapping_mul(0x9e37_79b9) ^ 0x5bd1_e995)
    }

    #[test]
    fn u64_lanes_match_scalar_murmur() {
        for seed in [0u32, 1, 7, 0xdead_beef, u32::MAX] {
            for base in 0..256u64 {
                let keys = [mix(base), mix(base + 1), !base, base << 17];
                let got = murmur3_u64_x4(keys, seed);
                for l in 0..LANES {
                    assert_eq!(got[l], murmur3_x86_32(&keys[l].to_le_bytes(), seed));
                }
            }
        }
    }

    #[test]
    fn u32_lanes_match_scalar_murmur() {
        for seed in [0u32, 3, 0x9747_b28c] {
            for base in 0..256u32 {
                let keys = [base, base.wrapping_mul(0x85eb_ca6b), !base, base << 9];
                let got = murmur3_u32_x4(keys, seed);
                for l in 0..LANES {
                    assert_eq!(got[l], murmur3_x86_32(&keys[l].to_le_bytes(), seed));
                }
            }
        }
    }

    #[test]
    fn u128_lanes_match_scalar_murmur() {
        for seed in [0u32, 11, 0xffff_ffff] {
            for base in 0..64u128 {
                let keys = [
                    base,
                    base << 77,
                    (mix(base as u64) as u128) << 64 | mix(base as u64 + 9) as u128,
                    u128::MAX - base,
                ];
                let got = murmur3_u128_x4(keys, seed);
                for l in 0..LANES {
                    assert_eq!(got[l], murmur3_x86_32(&keys[l].to_le_bytes(), seed));
                }
            }
        }
    }

    #[test]
    fn splitmix_lanes_match_scalar() {
        for base in 0..1024u64 {
            let xs = [
                base,
                !base,
                mix(base),
                base.wrapping_mul(0x0101_0101_0101_0101),
            ];
            let got = splitmix64_x4(xs);
            for l in 0..LANES {
                assert_eq!(got[l], splitmix64(xs[l]));
            }
        }
    }

    #[test]
    fn u64x4_shift_and_eq_mask() {
        let a = U64x4([1 << 40, 2 << 40, 3 << 40, 4 << 40]);
        assert_eq!(a.lsr(40).0, [1, 2, 3, 4]);
        assert_eq!(
            a.lsr(40).eq_mask(U64x4([1, 0, 3, 0])),
            [true, false, true, false]
        );
    }
}
