//! # rsk-hash — seeded non-cryptographic hashing for sketches
//!
//! Every sketch in this workspace locates cells with independent seeded hash
//! functions. The ReliableSketch paper (§6.1.1) uses 32-bit MurmurHash3 and
//! notes that the choice of hash function has little effect on accuracy; we
//! therefore implement MurmurHash3 from scratch (no external crates) and a few
//! cheaper auxiliary mixers used by the workload generators.
//!
//! Provided functions:
//!
//! * [`murmur3_x86_32`] — the 32-bit MurmurHash3 used by all sketches,
//!   verified against the public reference vectors;
//! * [`murmur3_x64_128`] — the 128-bit variant, used where 64-bit digests are
//!   needed (e.g. key scrambling, wide fingerprints);
//! * [`splitmix64`] — a fast 64-bit mixer used for seeding and by the
//!   synthetic workload generators;
//! * [`fnv1a64`] — FNV-1a, kept as an independent second family for tests
//!   that need two unrelated hash functions;
//! * [`crc32`] / [`crc32_seeded`] — the CRC family switch pipelines
//!   compute natively (the Tofino implementation derives its layer
//!   indexes from seeded CRCs, §5.2).
//!
//! The [`HashKey`] trait adapts key types (`u32`, `u64`, byte slices, …) to
//! the hashing functions, and [`HashFamily`] packages *k* independent seeded
//! functions as required by multi-row sketches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod fnv;
pub mod lanes;
mod murmur3;
mod splitmix;

pub use crc::{crc32, crc32_seeded};
pub use fnv::fnv1a64;
pub use lanes::{murmur3_u32_x4, murmur3_u64_x4, splitmix64_x4, U32x4, U64x4, LANES};
pub use murmur3::{murmur3_x64_128, murmur3_x86_32};
pub use splitmix::{splitmix64, SplitMix64};

/// A key type that can be fed to the seeded hash functions.
///
/// Implementations exist for the unsigned integer types used as flow
/// identifiers throughout the workspace (`u32`, `u64`, `u128`) and for the
/// 13-byte network 5-tuple. Integer keys are hashed over their little-endian
/// byte encoding so that results are identical across platforms.
pub trait HashKey: Copy + Eq + core::hash::Hash + core::fmt::Debug {
    /// 32-bit digest of the key under `seed`.
    fn hash32(&self, seed: u32) -> u32;

    /// 64-bit digest of the key under `seed`.
    fn hash64(&self, seed: u32) -> u64;

    /// 32-bit digests of four keys under `seed` at once.
    ///
    /// **Bit-identical to four [`Self::hash32`] calls** — the multi-lane
    /// kernels in [`lanes`] perform the same arithmetic per lane, so the
    /// batched sketch hot path built on this method cannot diverge from
    /// the scalar item loop. The default is the scalar loop itself; the
    /// integer keys the sketches use override it with the ×4 kernels.
    #[inline]
    fn hash32_x4(keys: &[Self; lanes::LANES], seed: u32) -> [u32; lanes::LANES] {
        [
            keys[0].hash32(seed),
            keys[1].hash32(seed),
            keys[2].hash32(seed),
            keys[3].hash32(seed),
        ]
    }
}

macro_rules! impl_hashkey_int {
    ($($t:ty => $x4:path),*) => {$(
        impl HashKey for $t {
            #[inline]
            fn hash32(&self, seed: u32) -> u32 {
                murmur3_x86_32(&self.to_le_bytes(), seed)
            }
            #[inline]
            fn hash64(&self, seed: u32) -> u64 {
                murmur3_x64_128(&self.to_le_bytes(), seed) as u64
            }
            #[inline]
            fn hash32_x4(keys: &[Self; lanes::LANES], seed: u32) -> [u32; lanes::LANES] {
                $x4(*keys, seed)
            }
        }
    )*};
}

impl_hashkey_int!(
    u32 => lanes::murmur3_u32_x4,
    u64 => lanes::murmur3_u64_x4,
    u128 => lanes::murmur3_u128_x4
);

impl HashKey for [u8; 13] {
    // 13-byte keys are the classic network 5-tuple (src, dst, sport, dport,
    // proto); traces that key on the full 5-tuple use this implementation.
    #[inline]
    fn hash32(&self, seed: u32) -> u32 {
        murmur3_x86_32(self, seed)
    }
    #[inline]
    fn hash64(&self, seed: u32) -> u64 {
        murmur3_x64_128(self, seed) as u64
    }
}

/// A family of `k` independent seeded hash functions mapping keys to array
/// indexes, as used by the row/layer structure of every sketch here.
///
/// Seeds are derived from a single master seed with [`SplitMix64`], so one
/// `u64` reproduces the whole family.
///
/// ```
/// use rsk_hash::HashFamily;
///
/// let family = HashFamily::new(3, 42);
/// let i = family.index(0, &0xabcd_u64, 1024);
/// assert!(i < 1024);
/// // deterministic: the same master seed reproduces the same mapping
/// assert_eq!(i, HashFamily::new(3, 42).index(0, &0xabcd_u64, 1024));
/// // rows are independent: row 1 almost surely maps elsewhere
/// let j = family.index(1, &0xabcd_u64, 1024);
/// let s = family.sign(0, &0xabcd_u64);
/// assert!(s == 1 || s == -1);
/// let _ = j;
/// ```
#[derive(Debug, Clone)]
pub struct HashFamily {
    seeds: Vec<u32>,
}

impl HashFamily {
    /// Build a family of `k` functions from `master_seed`.
    pub fn new(k: usize, master_seed: u64) -> Self {
        let mut sm = SplitMix64::new(master_seed);
        let seeds = (0..k).map(|_| sm.next_u64() as u32).collect();
        Self { seeds }
    }

    /// Number of functions in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// `true` if the family is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Seed of the `i`-th function (for diagnostics and tests).
    #[inline]
    pub fn seed(&self, i: usize) -> u32 {
        self.seeds[i]
    }

    /// 32-bit digest of `key` under the `i`-th function.
    #[inline]
    pub fn hash<K: HashKey>(&self, i: usize, key: &K) -> u32 {
        key.hash32(self.seeds[i])
    }

    /// Index of `key` into an array of `width` cells under the `i`-th
    /// function.
    ///
    /// Uses the multiply-shift range reduction (`(h * width) >> 32`), which
    /// avoids both the modulo bias and the division of `h % width`.
    #[inline]
    pub fn index<K: HashKey>(&self, i: usize, key: &K, width: usize) -> usize {
        debug_assert!(width > 0, "index into empty array");
        let h = self.hash(i, key) as u64;
        ((h * width as u64) >> 32) as usize
    }

    /// Four [`Self::index`] lookups at once through the ×4 lane kernels.
    ///
    /// Bit-identical to four scalar calls (see [`HashKey::hash32_x4`]):
    /// same digests, same multiply-shift range reduction per lane.
    #[inline]
    pub fn index_x4<K: HashKey>(
        &self,
        i: usize,
        keys: &[K; lanes::LANES],
        width: usize,
    ) -> [usize; lanes::LANES] {
        debug_assert!(width > 0, "index into empty array");
        let h = K::hash32_x4(keys, self.seeds[i]);
        core::array::from_fn(|l| ((h[l] as u64 * width as u64) >> 32) as usize)
    }

    /// A ±1 sign for `key` under the `i`-th function (used by Count sketch).
    #[inline]
    pub fn sign<K: HashKey>(&self, i: usize, key: &K) -> i64 {
        // take an independent bit: hash under the bitwise-not of the seed
        if key.hash32(!self.seeds[i]) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_is_reproducible() {
        let a = HashFamily::new(8, 42);
        let b = HashFamily::new(8, 42);
        for i in 0..8 {
            assert_eq!(a.seed(i), b.seed(i));
            assert_eq!(a.hash(i, &0xdead_beefu64), b.hash(i, &0xdead_beefu64));
        }
    }

    #[test]
    fn family_functions_are_distinct() {
        let f = HashFamily::new(16, 7);
        let key = 123456789u64;
        let digests: std::collections::HashSet<u32> = (0..16).map(|i| f.hash(i, &key)).collect();
        assert!(digests.len() >= 15, "seeded functions should disagree");
    }

    #[test]
    fn index_is_in_range() {
        let f = HashFamily::new(4, 99);
        for w in [1usize, 2, 3, 17, 1024, 1_000_003] {
            for k in 0u64..200 {
                let idx = f.index(2, &k, w);
                assert!(idx < w, "index {idx} out of range for width {w}");
            }
        }
    }

    #[test]
    fn index_spreads_uniformly() {
        let f = HashFamily::new(1, 3);
        let w = 64usize;
        let mut hist = vec![0usize; w];
        let n = 64_000u64;
        for k in 0..n {
            hist[f.index(0, &k, w)] += 1;
        }
        let expect = n as usize / w;
        for (i, &c) in hist.iter().enumerate() {
            assert!(
                c > expect / 2 && c < expect * 2,
                "bucket {i} has {c}, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn sign_is_balanced() {
        let f = HashFamily::new(1, 11);
        let total: i64 = (0u64..10_000).map(|k| f.sign(0, &k)).sum();
        assert!(total.abs() < 500, "signs should be near balanced: {total}");
    }

    #[test]
    fn integer_keys_hash_like_their_le_bytes() {
        let k: u64 = 0x0102_0304_0506_0708;
        assert_eq!(k.hash32(9), murmur3_x86_32(&k.to_le_bytes(), 9));
        let k32: u32 = 0xcafe_babe;
        assert_eq!(k32.hash32(9), murmur3_x86_32(&k32.to_le_bytes(), 9));
    }

    #[test]
    fn hash32_x4_matches_scalar_for_all_key_types() {
        let seed = 0xa5a5_5a5a;
        let k64: [u64; 4] = [0, 1, 0xdead_beef_cafe_f00d, u64::MAX];
        assert_eq!(
            u64::hash32_x4(&k64, seed),
            [0, 1, 2, 3].map(|l| k64[l].hash32(seed))
        );
        let k32: [u32; 4] = [9, 0xffff_ffff, 0x1234_5678, 42];
        assert_eq!(
            u32::hash32_x4(&k32, seed),
            [0, 1, 2, 3].map(|l| k32[l].hash32(seed))
        );
        let k128: [u128; 4] = [7, u128::MAX, 1 << 100, 0x0102_0304_0506_0708];
        assert_eq!(
            u128::hash32_x4(&k128, seed),
            [0, 1, 2, 3].map(|l| k128[l].hash32(seed))
        );
        // the 13-byte tuple key rides the default (scalar-loop) impl
        let kt: [[u8; 13]; 4] = [[1; 13], [2; 13], [3; 13], [0; 13]];
        assert_eq!(
            <[u8; 13]>::hash32_x4(&kt, seed),
            [0, 1, 2, 3].map(|l| kt[l].hash32(seed))
        );
    }

    #[test]
    fn index_x4_matches_scalar_index() {
        let f = HashFamily::new(4, 1234);
        for w in [1usize, 2, 61, 1024, 1_000_003] {
            for base in (0..4096u64).step_by(4) {
                let keys = [base, base + 1, base + 2, base + 3];
                let got = f.index_x4(1, &keys, w);
                for l in 0..4 {
                    assert_eq!(got[l], f.index(1, &keys[l], w));
                }
            }
        }
    }

    #[test]
    fn tuple13_key_hashes() {
        let a: [u8; 13] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13];
        let mut b = a;
        b[12] = 0;
        assert_ne!(a.hash32(0), b.hash32(0));
        assert_ne!(a.hash64(0), b.hash64(0));
    }
}
