//! CRC-32 (IEEE 802.3, reflected) — the hash family programmable-switch
//! pipelines compute natively; the Tofino implementation of ReliableSketch
//! derives its per-layer indexes from seeded CRCs (§5.2, Table 4's "Hash
//! Bits" row). Table-driven, one 256-entry table built at first use.

/// Reflected polynomial of CRC-32/ISO-HDLC (the Ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, computed once.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        t
    })
}

/// CRC-32 of `data` (IEEE 802.3: init `0xFFFF_FFFF`, final xor
/// `0xFFFF_FFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    crc32_seeded(data, 0)
}

/// Seeded CRC-32: `seed` is xor-folded into the initial state, giving the
/// independent per-layer functions a switch derives by seeding its CRC
/// units differently.
#[inline]
pub fn crc32_seeded(data: &[u8], seed: u32) -> u32 {
    let t = table();
    let mut crc = 0xFFFF_FFFFu32 ^ seed;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // the standard CRC-32 check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn seeds_decorrelate() {
        let digests: std::collections::HashSet<u32> =
            (0..64).map(|s| crc32_seeded(b"flowkey", s)).collect();
        assert_eq!(digests.len(), 64, "seeded CRCs must differ");
        // seed 0 reduces to the plain CRC
        assert_eq!(crc32_seeded(b"xyz", 0), crc32(b"xyz"));
    }

    #[test]
    fn incremental_bytes_change_digest() {
        let mut last = crc32(b"");
        let data = b"stream-summary";
        for len in 1..=data.len() {
            let h = crc32(&data[..len]);
            assert_ne!(h, last);
            last = h;
        }
    }
}
