//! SplitMix64 (Steele, Lea, Flood; public domain) — a tiny, statistically
//! strong 64-bit mixer. Used for deriving seed families and for scrambling
//! sequential key identifiers into uniformly distributed 64-bit flow IDs in
//! the workload generators.

/// One application of the SplitMix64 output function to `x`.
///
/// This is a bijection on `u64`, so distinct inputs always produce distinct
/// outputs — which the workload generators rely on to map rank `r` to a
/// unique flow identifier.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A SplitMix64 sequence generator (the canonical stateful form).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start the sequence at `seed`.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next value reduced to `[0, bound)` with multiply-shift.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Next value as a double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sequence() {
        // Sequence from the reference C implementation with seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        let expect = [
            6457827717110365317u64,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expect {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn stateless_matches_stateful_first_output() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut sm = SplitMix64::new(seed);
            assert_eq!(sm.next_u64(), splitmix64(seed));
        }
    }

    #[test]
    fn splitmix_is_injective_on_sample() {
        let mut seen = std::collections::HashSet::new();
        for x in 0u64..100_000 {
            assert!(seen.insert(splitmix64(x)));
        }
    }

    #[test]
    fn bounded_and_f64_are_in_range() {
        let mut sm = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(sm.next_bounded(17) < 17);
            let f = sm.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
