//! MurmurHash3 (Austin Appleby, public domain), reimplemented in safe Rust.
//!
//! Two variants are provided:
//! * `murmur3_x86_32` — the 32-bit digest used by all sketch cell lookups
//!   (the paper's §6.1.1 implementation choice);
//! * `murmur3_x64_128` — the 128-bit digest used where wider digests are
//!   required.
//!
//! Both are verified against the reference test vectors from the original
//! `smhasher` distribution.

/// 32-bit MurmurHash3 (the `MurmurHash3_x86_32` reference function).
#[inline]
pub fn murmur3_x86_32(data: &[u8], seed: u32) -> u32 {
    const C1: u32 = 0xcc9e_2d51;
    const C2: u32 = 0x1b87_3593;

    let mut h1 = seed;
    let mut chunks = data.chunks_exact(4);

    for chunk in &mut chunks {
        let mut k1 = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);

        h1 ^= k1;
        h1 = h1.rotate_left(13);
        h1 = h1.wrapping_mul(5).wrapping_add(0xe654_6b64);
    }

    let tail = chunks.remainder();
    let mut k1: u32 = 0;
    if tail.len() >= 3 {
        k1 ^= (tail[2] as u32) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= (tail[1] as u32) << 8;
    }
    if !tail.is_empty() {
        k1 ^= tail[0] as u32;
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(15);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u32;
    fmix32(h1)
}

/// Final avalanche mix of MurmurHash3 (32-bit).
#[inline]
fn fmix32(mut h: u32) -> u32 {
    h ^= h >> 16;
    h = h.wrapping_mul(0x85eb_ca6b);
    h ^= h >> 13;
    h = h.wrapping_mul(0xc2b2_ae35);
    h ^= h >> 16;
    h
}

/// 128-bit MurmurHash3 (the `MurmurHash3_x64_128` reference function).
///
/// Returns the digest as a `u128` packed so that its hexadecimal rendering
/// matches the canonical textual digest: the reference implementation's `h1`
/// occupies the high 64 bits and `h2` the low 64 bits.
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> u128 {
    const C1: u64 = 0x87c3_7b91_1142_53d5;
    const C2: u64 = 0x4cf5_ad43_2745_937f;

    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        let mut k1 = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
        let mut k2 = u64::from_le_bytes(chunk[8..16].try_into().unwrap());

        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;

        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;

        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // the reference implementation reads the tail with a fallthrough switch
    let t = |i: usize| tail[i] as u64;
    if tail.len() >= 15 {
        k2 ^= t(14) << 48;
    }
    if tail.len() >= 14 {
        k2 ^= t(13) << 40;
    }
    if tail.len() >= 13 {
        k2 ^= t(12) << 32;
    }
    if tail.len() >= 12 {
        k2 ^= t(11) << 24;
    }
    if tail.len() >= 11 {
        k2 ^= t(10) << 16;
    }
    if tail.len() >= 10 {
        k2 ^= t(9) << 8;
    }
    if tail.len() >= 9 {
        k2 ^= t(8);
        k2 = k2.wrapping_mul(C2);
        k2 = k2.rotate_left(33);
        k2 = k2.wrapping_mul(C1);
        h2 ^= k2;
    }
    if tail.len() >= 8 {
        k1 ^= t(7) << 56;
    }
    if tail.len() >= 7 {
        k1 ^= t(6) << 48;
    }
    if tail.len() >= 6 {
        k1 ^= t(5) << 40;
    }
    if tail.len() >= 5 {
        k1 ^= t(4) << 32;
    }
    if tail.len() >= 4 {
        k1 ^= t(3) << 24;
    }
    if tail.len() >= 3 {
        k1 ^= t(2) << 16;
    }
    if tail.len() >= 2 {
        k1 ^= t(1) << 8;
    }
    if !tail.is_empty() {
        k1 ^= t(0);
        k1 = k1.wrapping_mul(C1);
        k1 = k1.rotate_left(31);
        k1 = k1.wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    h1 = fmix64(h1);
    h2 = fmix64(h2);

    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    ((h1 as u128) << 64) | h2 as u128
}

/// Final avalanche mix of MurmurHash3 (64-bit).
#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors for MurmurHash3_x86_32 (Wikipedia / smhasher).
    #[test]
    fn x86_32_reference_vectors() {
        let cases: &[(&[u8], u32, u32)] = &[
            (b"", 0, 0),
            (b"", 1, 0x514e_28b7),
            (b"", 0xffff_ffff, 0x81f1_6f39),
            (b"\x00\x00\x00\x00", 0, 0x2362_f9de),
            (b"aaaa", 0x9747_b28c, 0x5a97_808a),
            (b"aaa", 0x9747_b28c, 0x283e_0130),
            (b"aa", 0x9747_b28c, 0x5d21_1726),
            (b"a", 0x9747_b28c, 0x7fa0_9ea6),
            (b"abcd", 0x9747_b28c, 0xf047_8627),
            (b"abc", 0x9747_b28c, 0xc84a_62dd),
            (b"ab", 0x9747_b28c, 0x7487_5592),
            (b"Hello, world!", 0x9747_b28c, 0x2488_4cba),
            (
                b"The quick brown fox jumps over the lazy dog",
                0x9747_b28c,
                0x2fa8_26cd,
            ),
        ];
        for &(data, seed, expect) in cases {
            assert_eq!(
                murmur3_x86_32(data, seed),
                expect,
                "x86_32({:?}, {seed:#x})",
                core::str::from_utf8(data).unwrap_or("<bytes>")
            );
        }
    }

    #[test]
    fn x64_128_reference_vectors() {
        // h1||h2 digests from the smhasher reference implementation.
        let cases: &[(&[u8], u32, u128)] = &[
            (b"", 0, 0),
            (b"hello", 0, 0xcbd8a7b341bd9b025b1e906a48ae1d19),
            (b"hello, world", 0, 0x342fac623a5ebc8e4cdcbc079642414d),
            // smhasher prints this digest as the little-endian byte dump
            // "6c1b07bc7bbc4be347939ac4a93c437a"; packed h1||h2 it reads:
            (
                b"The quick brown fox jumps over the lazy dog",
                0,
                0xe34bbc7bbc071b6c7a433ca9c49a9347,
            ),
        ];
        for &(data, seed, expect) in cases {
            assert_eq!(
                murmur3_x64_128(data, seed),
                expect,
                "x64_128({:?}, {seed})",
                core::str::from_utf8(data).unwrap_or("<bytes>")
            );
        }
    }

    #[test]
    fn x86_32_all_tail_lengths() {
        // exercise every remainder length 0..=3 with a fixed prefix
        let data = b"0123456789abcdef";
        let mut last = None;
        for len in 0..=data.len() {
            let h = murmur3_x86_32(&data[..len], 7);
            assert_ne!(Some(h), last, "adjacent lengths should differ");
            last = Some(h);
        }
    }

    #[test]
    fn x64_128_all_tail_lengths() {
        let data = b"0123456789abcdef0123456789abcdef";
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(seen.insert(murmur3_x64_128(&data[..len], 7)));
        }
    }

    #[test]
    fn seed_changes_digest() {
        for seed in 1u32..64 {
            assert_ne!(
                murmur3_x86_32(b"key", seed),
                murmur3_x86_32(b"key", seed - 1)
            );
        }
    }
}
