//! FNV-1a 64-bit — kept as a structurally unrelated second hash family for
//! tests that must distinguish "two different hash functions" from "the same
//! function with two seeds".

/// FNV-1a over `data`, folding `seed` into the offset basis.
#[inline]
pub fn fnv1a64(data: &[u8], seed: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ seed.wrapping_mul(PRIME);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_seed_zero() {
        // Canonical FNV-1a test vectors (seed 0 keeps the standard basis).
        assert_eq!(fnv1a64(b"", 0), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a", 0), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar", 0), 0x85944171f73967e8);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(fnv1a64(b"key", 1), fnv1a64(b"key", 2));
    }

    #[test]
    fn differs_from_murmur() {
        let h1 = fnv1a64(b"independence", 0) as u32;
        let h2 = crate::murmur3_x86_32(b"independence", 0);
        assert_ne!(h1, h2);
    }
}
