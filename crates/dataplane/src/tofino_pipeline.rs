//! Slot-level model of the Tofino deployment's *recirculation asynchrony*
//! (paper §5.2, Challenge II).
//!
//! [`super::tofino::TofinoReliable`] applies lock flags synchronously —
//! the right behavioural abstraction, but a real switch cannot do it: a
//! packet discovers `NO = λ` in a *later* stage than the flag lives in,
//! so it must be **recirculated** to write the flag on a second pass.
//! Until that pass completes, packets keep entering the pipeline and
//! taking the unlocked path through the same bucket.
//!
//! This module models exactly that window:
//!
//! * every ingress packet occupies one pipeline **slot**; a recirculated
//!   packet re-enters `recirc_latency` slots later and occupies another
//!   slot (the throughput cost the paper accepts);
//! * a packet that pushes `NO` to the threshold clamps `NO = λ`,
//!   schedules the flag write for `now + recirc_latency`, and carries its
//!   overflow onward *on the second pass* — so its descent into deeper
//!   layers is delayed;
//! * packets arriving in the window see `NO = λ` but `LOCKED` still
//!   unset, recirculate *again* (duplicate recirculations are real — no
//!   packet can know another flag-write is in flight), and their values
//!   descend late as well.
//!
//! With `recirc_latency = 0` the model collapses to the behavioural one
//! (verified by a differential test). Accuracy semantics under the
//! switch encoding are *two-sided*: overshoot remains covered by the
//! reported MPE (answers are sums of `NO`-style registers), but the
//! threshold-crossing path — saturated subtraction of the full arriving
//! value from `DIFF` while only part of it stays in `NO` — can
//! *under-count the displaced candidate* by up to the diverted overflow.
//! This is a property of the §5.2 encoding itself (the synchronous model
//! shares it), which is why Fig 20 evaluates the two-sided outlier
//! criterion `|err| ≤ Λ` rather than the CPU version's one-sided
//! interval, and one mechanistic reason the testbed needs somewhat more
//! SRAM for zero outliers than the CPU experiments (Fig 4). The
//! recirculation window widens that effect slightly and costs duplicate
//! recirculation passes, which this model quantifies.

use rsk_api::{Estimate, Key};
use rsk_core::{Depth, LayerGeometry, ReliableConfig};
use rsk_hash::HashFamily;
use std::collections::VecDeque;

use crate::tofino::SWITCH_LAYERS;

/// One bucket as laid out on the switch (see `tofino`): `(ID, DIFF)` in
/// stage A, `NO` + lock flag in stage B.
#[derive(Debug, Clone)]
struct Bucket<K> {
    id: Option<K>,
    diff: u64,
    no: u64,
    locked: bool,
}

impl<K> Default for Bucket<K> {
    fn default() -> Self {
        Self {
            id: None,
            diff: 0,
            no: 0,
            locked: false,
        }
    }
}

/// A packet on its recirculation pass: apply the flag, then resume the
/// insertion from `layer` with the remaining `value`.
#[derive(Debug, Clone)]
struct Recirculated<K> {
    due_slot: u64,
    flag: (usize, usize),
    resume_layer: usize,
    key: K,
    value: u64,
}

/// Slot-accurate Tofino variant with asynchronous lock flags.
#[derive(Debug, Clone)]
pub struct TofinoPipeline<K: Key> {
    geometry: LayerGeometry,
    layers: Vec<Vec<Bucket<K>>>,
    hashes: HashFamily,
    recirc_latency: u64,
    in_flight: VecDeque<Recirculated<K>>,
    slot: u64,
    ingress_packets: u64,
    recirculations: u64,
    failures: u64,
    dropped: u64,
}

impl<K: Key> TofinoPipeline<K> {
    /// Build like [`super::tofino::TofinoReliable::new`], with the given
    /// recirculation latency in pipeline slots (switch reality: roughly
    /// one pipeline length; 0 collapses to the synchronous model).
    pub fn new(sram_bytes: usize, lambda: u64, seed: u64, recirc_latency: u64) -> Self {
        let config = ReliableConfig {
            memory_bytes: sram_bytes,
            lambda,
            mice_filter: None,
            depth: Depth::Fixed(SWITCH_LAYERS),
            seed,
            ..Default::default()
        };
        let geometry = config.geometry();
        let layers = geometry
            .widths()
            .iter()
            .map(|&w| vec![Bucket::default(); w])
            .collect();
        let hashes = HashFamily::new(geometry.depth(), seed);
        Self {
            geometry,
            layers,
            hashes,
            recirc_latency,
            in_flight: VecDeque::new(),
            slot: 0,
            ingress_packets: 0,
            recirculations: 0,
            failures: 0,
            dropped: 0,
        }
    }

    /// Total recirculation passes (each consumed a pipeline slot).
    pub fn recirculations(&self) -> u64 {
        self.recirculations
    }

    /// Pipeline slots consumed: ingress packets + recirculation passes —
    /// the denominator of the effective line rate.
    pub fn slots_consumed(&self) -> u64 {
        self.ingress_packets + self.recirculations
    }

    /// Fraction of pipeline capacity lost to recirculation.
    pub fn recirculation_overhead(&self) -> f64 {
        if self.ingress_packets == 0 {
            0.0
        } else {
            self.recirculations as f64 / self.slots_consumed() as f64
        }
    }

    /// Values that fell past the last layer (control-plane territory).
    pub fn insertion_failures(&self) -> u64 {
        self.failures
    }

    /// Ingest one packet (one ingress slot), first letting any due
    /// recirculated packets complete their second pass.
    pub fn insert(&mut self, key: &K, value: u64) {
        self.slot += 1;
        self.ingress_packets += 1;
        self.drain_due();
        if value > 0 {
            self.pass(*key, value, 0);
        }
    }

    /// Let every in-flight recirculated packet land (end of stream).
    pub fn flush(&mut self) {
        self.slot = u64::MAX;
        self.drain_due();
        self.slot = self.ingress_packets; // keep monotone for reuse
    }

    fn drain_due(&mut self) {
        while let Some(front) = self.in_flight.front() {
            if front.due_slot > self.slot {
                break;
            }
            let p = self.in_flight.pop_front().expect("front exists");
            let (layer, index) = p.flag;
            self.layers[layer][index].locked = true;
            if p.value > 0 {
                self.pass(p.key, p.value, p.resume_layer);
            }
        }
    }

    /// One pipeline pass from `start_layer` (ingress uses 0; a
    /// recirculated packet resumes below its lock layer).
    fn pass(&mut self, key: K, mut v: u64, start_layer: usize) {
        for i in start_layer..self.geometry.depth() {
            let lambda = self.geometry.lambda(i);
            let j = self.hashes.index(i, &key, self.geometry.width(i));
            let b = &mut self.layers[i][j];

            // stage A: (ID, DIFF)
            if b.id.as_ref() == Some(&key) {
                b.diff += v;
                return;
            }
            if b.id.is_none() || (b.diff == 0 && !b.locked) {
                b.id = Some(key);
                b.diff = v;
                return;
            }
            if b.locked {
                v = v.max(1);
                continue;
            }

            // stage B: NO with saturated subtraction on DIFF
            b.diff = b.diff.saturating_sub(v);
            let new_no = b.no + v;
            if new_no >= lambda {
                // Challenge II, asynchronously: clamp NO, schedule the
                // flag write one recirculation away, and carry the
                // overflow on the second pass
                let overflow = new_no - lambda;
                b.no = lambda;
                self.recirculations += 1;
                self.in_flight.push_back(Recirculated {
                    due_slot: self.slot.saturating_add(self.recirc_latency),
                    flag: (i, j),
                    resume_layer: i + 1,
                    key,
                    value: overflow,
                });
                return; // this pass ends; the overflow re-enters later
            }
            b.no = new_no;
            return;
        }
        self.failures += 1;
        self.dropped += v;
    }

    /// Query with the certified interval (identical readout to the
    /// behavioural model).
    pub fn query_with_error(&self, key: &K) -> Estimate {
        let mut est = 0u64;
        let mut mpe = 0u64;
        for i in 0..self.geometry.depth() {
            let j = self.hashes.index(i, key, self.geometry.width(i));
            let b = &self.layers[i][j];
            let matches = b.id.as_ref() == Some(key);
            est += if matches { b.diff + b.no } else { b.no };
            mpe += b.no;
            if !b.locked || b.diff == 0 || matches {
                break;
            }
        }
        Estimate {
            value: est,
            max_possible_error: mpe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tofino::TofinoReliable;
    use proptest::prelude::*;
    use rsk_api::StreamSummary;
    use rsk_stream::Dataset;

    /// Zero-latency recirculation collapses to the synchronous
    /// behavioural model, answer for answer.
    #[test]
    fn zero_latency_equals_behavioural_model() {
        let stream = Dataset::IpTrace.generate(120_000, 5);
        let mut sync = TofinoReliable::<u64>::new(16 * 1024, 25, 9);
        let mut pipe = TofinoPipeline::<u64>::new(16 * 1024, 25, 9, 0);
        for it in &stream {
            sync.insert(&it.key, it.value);
            pipe.insert(&it.key, it.value);
        }
        pipe.flush();
        for it in stream.iter().take(20_000) {
            let a = sync.query_with_error(&it.key);
            let b = pipe.query_with_error(&it.key);
            assert_eq!(
                (a.value, a.max_possible_error),
                (b.value, b.max_possible_error),
                "divergence at {}",
                it.key
            );
        }
        assert_eq!(sync.recirculations(), pipe.recirculations());
    }

    #[test]
    fn latency_window_costs_extra_recirculations() {
        let stream = Dataset::IpTrace.generate(200_000, 6);
        let run = |latency: u64| {
            let mut pipe = TofinoPipeline::<u64>::new(8 * 1024, 25, 3, latency);
            for it in &stream {
                pipe.insert(&it.key, it.value);
            }
            pipe.flush();
            pipe.recirculations()
        };
        let instant = run(0);
        let realistic = run(64);
        let slow = run(1024);
        assert!(
            realistic >= instant,
            "async flags cannot reduce recirculations: {realistic} < {instant}"
        );
        assert!(
            slow >= realistic,
            "longer windows admit more duplicates: {slow} < {realistic}"
        );
    }

    #[test]
    fn overhead_fraction_is_small_at_paper_scale_ratio() {
        // the paper's deployment tolerates recirculation because it is
        // rare; at a sane SRAM/traffic ratio the overhead stays < 5 %
        let stream = Dataset::IpTrace.generate(400_000, 7);
        let mut pipe = TofinoPipeline::<u64>::new(64 * 1024, 25, 11, 64);
        for it in &stream {
            pipe.insert(&it.key, it.value);
        }
        pipe.flush();
        let overhead = pipe.recirculation_overhead();
        assert!(
            overhead < 0.05,
            "recirculation overhead {overhead:.3} too high"
        );
        assert_eq!(
            pipe.slots_consumed(),
            400_000 + pipe.recirculations(),
            "every recirculation must consume a slot"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The switch encoding's two-sided accuracy contract survives the
        /// asynchronous window: at adequate memory, every key's error
        /// stays within Λ (Fig 20's outlier criterion) and overshoot is
        /// covered by the reported MPE. A strict one-sided bound does
        /// NOT hold for this variant — see the module docs.
        #[test]
        fn prop_async_flags_keep_two_sided_contract(
            ops in proptest::collection::vec((0u64..60, 1u64..5), 1..800),
            latency in 0u64..200,
            seed in 0u64..16,
        ) {
            let lambda = 25u64;
            let mut pipe = TofinoPipeline::<u64>::new(64 * 1024, lambda, seed, latency);
            let mut truth = std::collections::HashMap::new();
            for (k, v) in ops {
                pipe.insert(&k, v);
                *truth.entry(k).or_insert(0u64) += v;
            }
            pipe.flush();
            prop_assume!(pipe.insertion_failures() == 0);
            for (&k, &f) in &truth {
                let est = pipe.query_with_error(&k);
                prop_assert!(est.value.abs_diff(f) <= lambda,
                    "outlier at {}: est {} truth {}", k, est.value, f);
                if est.value > f {
                    prop_assert!(est.value - f <= est.max_possible_error,
                        "overshoot beyond MPE at {}", k);
                }
            }
        }
    }
}
