//! # rsk-dataplane — hardware models of the paper's §5 implementations
//!
//! The paper deploys ReliableSketch on a Virtex-7 FPGA and an Edgecore
//! Wedge (Tofino ASIC) programmable switch. Neither platform is available
//! here, so this crate provides the closest executable equivalents
//! (DESIGN.md §5 records the substitution argument):
//!
//! * [`tofino`] — a **behavioural model** of the P4 program: the bucket is
//!   re-encoded the way §5.2 describes to fit switch constraints (DIFF/ID
//!   in one stage, NO in the next, lock flags set by recirculated packets,
//!   saturated subtraction, two-branch updates). Running this model over a
//!   packet stream exercises the *same algorithm the switch runs*, which
//!   is what Figure 20's accuracy-vs-SRAM curves measure. A resource
//!   estimator regenerates Table 4's rows from the program layout.
//! * [`fpga`] — a pipeline/resource model of the Verilog implementation:
//!   41-cycle fully pipelined insertion at 339 MHz, with per-module
//!   LUT/register/BRAM accounting that regenerates Table 3 and scales
//!   with the sketch geometry.
//! * [`fpga_pipeline`] — a **cycle-level simulator** of that pipeline:
//!   one key per clock, read-after-write hazards resolved by a modeled
//!   forwarding network, differentially tested for exact functional
//!   equivalence with the software sketch.
//! * [`tofino_pipeline`] — a **slot-level model of recirculation
//!   asynchrony** (§5.2 Challenge II): lock flags land one recirculation
//!   pass late, duplicate recirculations and delayed descents included;
//!   collapses to the behavioural model at zero latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fpga;
pub mod fpga_pipeline;
pub mod tofino;
pub mod tofino_pipeline;

pub use fpga::{FpgaModel, FpgaModuleUsage};
pub use fpga_pipeline::FpgaPipeline;
pub use tofino::{TofinoReliable, TofinoResources};
pub use tofino_pipeline::TofinoPipeline;
