//! Pipeline and resource model of the FPGA implementation (paper §5.1,
//! Table 3).
//!
//! The paper's Verilog design on a Virtex-7 VC709 (xc7vx690tffg1761-2) is
//! fully pipelined: one key enters every clock, an insertion completes
//! after 41 clocks, and the synthesized clock is 339 MHz — hence ≈340 M
//! insertions per second. Three modules make up the design: `hash`
//! (hash-value computation), `ESbucket` (the bucket arrays in block RAM)
//! and `Emergency` (a small stack for insertion failures).
//!
//! Here we model (a) the resource table — per-module LUT/register/BRAM
//! rows calibrated to the synthesis report and scaled with the sketch
//! geometry — and (b) the pipeline timing, from which throughput and
//! insertion latency follow.

use rsk_core::{LayerGeometry, BUCKET_BYTES};

/// Device totals of the xc7vx690tffg1761-2 (paper §5.1).
pub mod device {
    /// Slice LUTs available.
    pub const LUTS: u64 = 433_200;
    /// Slice registers available.
    pub const REGISTERS: u64 = 866_400;
    /// 36 Kb block RAM tiles available.
    pub const BRAM_TILES: u64 = 1_470;
}

/// Synthesized clock of the paper's design (MHz).
pub const CLOCK_MHZ: f64 = 339.0;

/// Pipeline depth: an insertion completes 41 clocks after entering.
pub const PIPELINE_DEPTH: u64 = 41;

/// Per-module resource usage (one row of Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpgaModuleUsage {
    /// Module name (`Hash`, `ESbucket`, `Emergency`, `Total`).
    pub module: &'static str,
    /// Slice LUTs.
    pub luts: u64,
    /// Slice registers.
    pub registers: u64,
    /// 36 Kb block RAM tiles.
    pub bram: u64,
    /// Clock frequency the module closes timing at (MHz).
    pub frequency_mhz: u64,
}

/// Resource and timing model of one synthesized ReliableSketch instance.
#[derive(Debug, Clone)]
pub struct FpgaModel {
    modules: Vec<FpgaModuleUsage>,
}

impl FpgaModel {
    /// Model the design for a given layer geometry.
    ///
    /// Calibration: the paper's 1 MB default configuration (≈16 layers of
    /// error-sensible buckets, ≈839 KB of bucket state after the mice
    /// filter) synthesizes to Table 3's numbers; module LUT/register
    /// counts scale with the layer count (one address/compare unit per
    /// layer) and BRAM with the bucket bytes.
    pub fn synthesize(geometry: &LayerGeometry) -> Self {
        let d = geometry.depth() as u64;
        let bucket_bytes = (geometry.total_buckets() * BUCKET_BYTES) as u64;

        // hash: one 90-bit hash lane per layer,5 LUT + 8 Reg each, plus
        // shared seed registers
        let hash = FpgaModuleUsage {
            module: "Hash",
            luts: 5 * d + 5,
            registers: 8 * d + 2,
            bram: 0,
            frequency_mhz: CLOCK_MHZ as u64,
        };
        // ESbucket: compare/select datapath per layer + BRAM for buckets;
        // a 36 Kb tile holds 4.5 KB of bucket state, plus four tiles per
        // layer for the read/write port muxes and a fixed block of eleven
        // tiles for the shared update controller
        let data_tiles = bucket_bytes.div_ceil(4_608);
        let esbucket = FpgaModuleUsage {
            module: "ESbucket",
            luts: 155 * d + 41,
            registers: 160 * d + 32,
            bram: data_tiles + d * 4 + 11,
            frequency_mhz: CLOCK_MHZ as u64,
        };
        // emergency stack: fixed-size FIFO + control
        let emergency = FpgaModuleUsage {
            module: "Emergency",
            luts: 48,
            registers: 112,
            bram: 1,
            frequency_mhz: CLOCK_MHZ as u64,
        };
        let total = FpgaModuleUsage {
            module: "Total",
            luts: hash.luts + esbucket.luts + emergency.luts,
            registers: hash.registers + esbucket.registers + emergency.registers,
            bram: hash.bram + esbucket.bram + emergency.bram,
            frequency_mhz: CLOCK_MHZ as u64,
        };
        Self {
            modules: vec![hash, esbucket, emergency, total],
        }
    }

    /// The module rows (`Hash`, `ESbucket`, `Emergency`, `Total`).
    pub fn modules(&self) -> &[FpgaModuleUsage] {
        &self.modules
    }

    /// A named module row.
    pub fn module(&self, name: &str) -> Option<&FpgaModuleUsage> {
        self.modules.iter().find(|m| m.module == name)
    }

    /// Device utilization of the total row as `(lut, register, bram)`
    /// fractions.
    pub fn utilization(&self) -> (f64, f64, f64) {
        let t = self.module("Total").expect("total row always present");
        (
            t.luts as f64 / device::LUTS as f64,
            t.registers as f64 / device::REGISTERS as f64,
            t.bram as f64 / device::BRAM_TILES as f64,
        )
    }

    /// Clocks to process `n` back-to-back insertions (fully pipelined:
    /// one new key per clock, plus the fill latency).
    pub fn cycles_for(&self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            n + PIPELINE_DEPTH - 1
        }
    }

    /// Sustained throughput in million insertions per second.
    pub fn throughput_mips(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let cycles = self.cycles_for(n) as f64;
        CLOCK_MHZ * n as f64 / cycles
    }

    /// Latency of a single insertion in nanoseconds.
    pub fn insertion_latency_ns(&self) -> f64 {
        PIPELINE_DEPTH as f64 * 1e3 / CLOCK_MHZ
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsk_core::{Depth, LayerGeometry};

    /// The paper's default 1 MB configuration (after the 20 % mice filter:
    /// ≈839 KB of buckets = 83 886 buckets) reproduces Table 3.
    fn paper_geometry() -> LayerGeometry {
        LayerGeometry::derive(83_886, 22, 2.0, 2.5, Depth::Fixed(16), false)
    }

    #[test]
    fn table3_reproduced_at_paper_layout() {
        let m = FpgaModel::synthesize(&paper_geometry());
        let hash = m.module("Hash").unwrap();
        assert_eq!((hash.luts, hash.registers, hash.bram), (85, 130, 0));
        let es = m.module("ESbucket").unwrap();
        assert_eq!((es.luts, es.registers, es.bram), (2521, 2592, 258));
        let em = m.module("Emergency").unwrap();
        assert_eq!((em.luts, em.registers, em.bram), (48, 112, 1));
        let t = m.module("Total").unwrap();
        assert_eq!((t.luts, t.registers, t.bram), (2654, 2834, 259));
        // utilization: 0.61 % LUTs, 0.33 % registers, 17.62 % BRAM
        let (lut, reg, bram) = m.utilization();
        assert!((lut - 0.0061).abs() < 2e-4, "lut {lut}");
        assert!((reg - 0.0033).abs() < 2e-4, "reg {reg}");
        assert!((bram - 0.1762).abs() < 2e-3, "bram {bram}");
    }

    #[test]
    fn throughput_approaches_clock_rate() {
        let m = FpgaModel::synthesize(&paper_geometry());
        // one insertion: dominated by fill latency
        assert!(m.throughput_mips(1) < 20.0);
        // sustained: ≈ 339 M/s, the paper's "340 million insertions/s"
        let sustained = m.throughput_mips(10_000_000);
        assert!((sustained - CLOCK_MHZ).abs() < 0.01);
        assert_eq!(m.cycles_for(0), 0);
        assert_eq!(m.cycles_for(1), 41);
        assert_eq!(m.cycles_for(100), 140);
    }

    #[test]
    fn latency_is_41_clocks() {
        let m = FpgaModel::synthesize(&paper_geometry());
        // 41 cycles at 339 MHz ≈ 121 ns
        assert!((m.insertion_latency_ns() - 120.94).abs() < 0.1);
    }

    #[test]
    fn bram_scales_with_memory() {
        let small = FpgaModel::synthesize(&LayerGeometry::derive(
            8_000,
            22,
            2.0,
            2.5,
            Depth::Fixed(16),
            false,
        ));
        let big = FpgaModel::synthesize(&paper_geometry());
        assert!(big.module("ESbucket").unwrap().bram > small.module("ESbucket").unwrap().bram);
        // logic scales with depth, not width
        assert_eq!(
            big.module("ESbucket").unwrap().luts,
            small.module("ESbucket").unwrap().luts
        );
    }
}
