//! Behavioural model of the Tofino P4 implementation (paper §5.2) and its
//! resource estimator (Table 4).
//!
//! Programmable switches constrain the algorithm in three ways the paper
//! works around, and this model reproduces each workaround faithfully:
//!
//! * **Challenge I (circular dependency)** — a stage's SALU can only
//!   read-modify-write one pair of 32-bit registers, but a bucket has
//!   three fields. The P4 program therefore keeps `(ID, DIFF)` in one
//!   stage — where `DIFF = YES − NO` — and `NO` in the next.
//! * **Challenge II (backward modification)** — a packet cannot set the
//!   `LOCKED` flag in an earlier stage of its own pipeline pass; the
//!   first packet that pushes `NO` to the threshold is *recirculated* to
//!   write the flag. The model counts these recirculations.
//! * **Challenge III (three-branch updates)** — the SALU supports two
//!   outcome branches, so on a collision `DIFF` is updated by *saturated
//!   subtraction*; when `DIFF` reaches zero the *next* packet performs
//!   the replacement (`ID ← e`, `DIFF ← v`).
//!
//! The result is algorithmically close to, but not identical with, the
//! CPU version: saturation discards the depth of negative overshoot, so
//! replacement happens slightly later — one reason the paper's testbed
//! needs somewhat more SRAM for zero outliers than the CPU experiments
//! (Fig 20 vs Fig 4).

use rsk_api::{Algorithm, Clear, Estimate, Key, MemoryFootprint, StreamSummary};
use rsk_core::{Depth, ReliableConfig};
use rsk_core::{LayerGeometry, BUCKET_BYTES};
use rsk_hash::HashFamily;

/// One bucket as laid out on the switch: stage A holds `(id, diff)`,
/// stage B holds `no` and the lock flag (flag writes go through
/// recirculation).
#[derive(Debug, Clone)]
struct SwitchBucket<K> {
    id: Option<K>,
    diff: u64,
    no: u64,
    locked: bool,
}

impl<K> Default for SwitchBucket<K> {
    fn default() -> Self {
        Self {
            id: None,
            diff: 0,
            no: 0,
            locked: false,
        }
    }
}

/// The pipeline-constrained ReliableSketch variant.
#[derive(Debug, Clone)]
pub struct TofinoReliable<K: Key> {
    geometry: LayerGeometry,
    layers: Vec<Vec<SwitchBucket<K>>>,
    hashes: HashFamily,
    recirculations: u64,
    failures: u64,
    dropped: u64,
}

impl<K: Key> TofinoReliable<K> {
    /// Build from SRAM bytes and tolerance `Λ`, mirroring the CPU config
    /// defaults (`R_w = 2`, `R_λ = 2.5`) but without the mice filter —
    /// the switch program implements the raw layered structure, and the
    /// stage budget caps the depth at 6 double-stages (Table 4 uses 12
    /// SALUs = 2 per layer).
    pub fn new(sram_bytes: usize, lambda: u64, seed: u64) -> Self {
        let config = ReliableConfig {
            memory_bytes: sram_bytes,
            lambda,
            mice_filter: None,
            depth: Depth::Fixed(SWITCH_LAYERS),
            seed,
            ..Default::default()
        };
        let geometry = config.geometry();
        let layers = geometry
            .widths()
            .iter()
            .map(|&w| vec![SwitchBucket::default(); w])
            .collect();
        let hashes = HashFamily::new(geometry.depth(), seed);
        Self {
            geometry,
            layers,
            hashes,
            recirculations: 0,
            failures: 0,
            dropped: 0,
        }
    }

    /// Packets that had to re-enter the pipeline to set lock flags —
    /// the switch-side cost of Challenge II.
    pub fn recirculations(&self) -> u64 {
        self.recirculations
    }

    /// Insertions whose value was not fully placed (handled by the
    /// control plane in the real deployment).
    pub fn insertion_failures(&self) -> u64 {
        self.failures
    }

    /// The layer schedule in use.
    pub fn geometry(&self) -> &LayerGeometry {
        &self.geometry
    }

    /// Query with the certified error interval (mirrors Algorithm 2 on
    /// the re-encoded fields: `YES = DIFF + NO`).
    pub fn query_with_error(&self, key: &K) -> Estimate {
        let mut est = 0u64;
        let mut mpe = 0u64;
        for i in 0..self.geometry.depth() {
            let j = self.hashes.index(i, key, self.geometry.width(i));
            let b = &self.layers[i][j];
            let matches = b.id.as_ref() == Some(key);
            est += if matches { b.diff + b.no } else { b.no };
            mpe += b.no;
            if !b.locked || b.diff == 0 || matches {
                break;
            }
        }
        Estimate {
            value: est,
            max_possible_error: mpe,
        }
    }
}

/// Stage budget: Table 4's 12 stateful ALUs at 2 per layer.
pub const SWITCH_LAYERS: usize = 6;

impl<K: Key> StreamSummary<K> for TofinoReliable<K> {
    fn insert(&mut self, key: &K, value: u64) {
        if value == 0 {
            return;
        }
        let mut v = value;
        for i in 0..self.geometry.depth() {
            let lambda = self.geometry.lambda(i);
            let j = self.hashes.index(i, key, self.geometry.width(i));
            let b = &mut self.layers[i][j];

            // stage A: (ID, DIFF) — two-branch SALU
            if b.id.as_ref() == Some(key) {
                b.diff += v;
                return;
            }
            if b.id.is_none() || (b.diff == 0 && !b.locked) {
                // replacement deferred to the packet that sees DIFF == 0
                b.id = Some(*key);
                b.diff = v;
                return;
            }

            if b.locked {
                // locked bucket passes the whole value on (flag already set;
                // NO stays frozen at λ)
                v = v.max(1);
                continue;
            }

            // stage B: NO with saturated-subtraction DIFF update
            b.diff = b.diff.saturating_sub(v);
            let new_no = b.no + v;
            if new_no >= lambda {
                // Challenge II: first packet over the threshold recirculates
                // to set the lock flag; overflow beyond λ moves on
                let overflow = new_no - lambda;
                b.no = lambda;
                b.locked = true;
                self.recirculations += 1;
                if overflow == 0 {
                    return;
                }
                v = overflow;
                continue;
            }
            b.no = new_no;
            return;
        }
        // fell off the last stage: control-plane territory
        self.failures += 1;
        self.dropped += v;
    }

    fn query(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }
}

impl<K: Key> MemoryFootprint for TofinoReliable<K> {
    fn memory_bytes(&self) -> usize {
        self.geometry.total_buckets() * BUCKET_BYTES
    }
}

impl<K: Key> Algorithm for TofinoReliable<K> {
    fn name(&self) -> String {
        "Ours(Tofino)".into()
    }
}

impl<K: Key> Clear for TofinoReliable<K> {
    fn clear(&mut self) {
        for layer in &mut self.layers {
            for b in layer {
                *b = SwitchBucket::default();
            }
        }
        self.recirculations = 0;
        self.failures = 0;
        self.dropped = 0;
    }
}

// ---------------------------------------------------------------------------
// Resource estimation (Table 4)
// ---------------------------------------------------------------------------

/// One resource row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRow {
    /// Resource name as printed in Table 4.
    pub resource: &'static str,
    /// Units consumed by the ReliableSketch program.
    pub usage: u64,
    /// Fraction of the chip's total quota.
    pub percentage: f64,
}

/// Estimated switch resource usage for a given program layout.
#[derive(Debug, Clone)]
pub struct TofinoResources {
    rows: Vec<ResourceRow>,
}

/// Tofino-1 totals the percentages are computed against (12 MAU stages).
mod chip {
    pub const HASH_BITS: u64 = 4992; // 416 per stage
    pub const SRAM_BLOCKS: u64 = 960; // 80 × 16 KB per stage
    pub const MAP_RAM: u64 = 576; // 48 per stage
    pub const TCAM: u64 = 288; // 24 per stage
    pub const SALU: u64 = 48; // 4 per stage
    pub const VLIW: u64 = 384; // 32 per stage
    pub const XBAR: u64 = 1536; // 128 per stage
}

impl TofinoResources {
    /// Estimate resources for a `layers`-deep program holding
    /// `sram_bytes` of bucket state.
    ///
    /// The per-layer constants come from the structure of the P4 program:
    /// each layer costs two SALUs (Challenge I's split), one ~90-bit hash
    /// computation (32-bit key CRC + index bits), ~4 VLIW instructions
    /// and ~18 match-crossbar bytes; SRAM blocks follow the bucket bytes
    /// with one overhead block per register, and map RAM shadows SRAM on
    /// stateful tables. At the paper's configuration (6 layers, ≈1.7 MB
    /// of bucket state) this reproduces Table 4's reported numbers.
    pub fn estimate(layers: usize, sram_bytes: usize) -> Self {
        let l = layers as u64;
        let salu = 2 * l; // Challenge I: (ID,DIFF) stage + NO stage
        let hash_bits = 90 * l + 1; // key CRC + index per layer
        let data_blocks = (sram_bytes as u64).div_ceil(16 * 1024);
        let sram = data_blocks + 6 * l; // + per-register overhead blocks
        let map_ram = data_blocks + 3 * l - 1; // shadow of stateful tables
        let vliw = 4 * l - 1; // two-branch updates per stage
        let xbar = 18 * l + 1; // key bytes into each stage's crossbar
        let rows = vec![
            ResourceRow {
                resource: "Hash Bits",
                usage: hash_bits,
                percentage: hash_bits as f64 / chip::HASH_BITS as f64,
            },
            ResourceRow {
                resource: "SRAM",
                usage: sram,
                percentage: sram as f64 / chip::SRAM_BLOCKS as f64,
            },
            ResourceRow {
                resource: "Map RAM",
                usage: map_ram,
                percentage: map_ram as f64 / chip::MAP_RAM as f64,
            },
            ResourceRow {
                resource: "TCAM",
                usage: 0,
                percentage: 0.0 / chip::TCAM as f64,
            },
            ResourceRow {
                resource: "Stateful ALU",
                usage: salu,
                percentage: salu as f64 / chip::SALU as f64,
            },
            ResourceRow {
                resource: "VLIW Instr",
                usage: vliw,
                percentage: vliw as f64 / chip::VLIW as f64,
            },
            ResourceRow {
                resource: "Match Xbar",
                usage: xbar,
                percentage: xbar as f64 / chip::XBAR as f64,
            },
        ];
        Self { rows }
    }

    /// The resource rows.
    pub fn rows(&self) -> &[ResourceRow] {
        &self.rows
    }

    /// Usage of a named resource.
    pub fn usage(&self, resource: &str) -> Option<u64> {
        self.rows
            .iter()
            .find(|r| r.resource == resource)
            .map(|r| r.usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn switch_variant_controls_errors() {
        let mut sw = TofinoReliable::<u64>::new(256 * 1024, 25, 3);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..100_000u64 {
            let k = i % 3_000;
            sw.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        let mut outliers = 0;
        for (&k, &f) in &truth {
            let est = sw.query(&k);
            if est.abs_diff(f) > 25 {
                outliers += 1;
            }
        }
        assert_eq!(
            outliers, 0,
            "switch model should control errors at ample SRAM"
        );
    }

    #[test]
    fn recirculations_happen_under_pressure() {
        let mut sw = TofinoReliable::<u64>::new(4 * 1024, 25, 4);
        for i in 0..100_000u64 {
            sw.insert(&(i % 5_000), 1);
        }
        assert!(sw.recirculations() > 0, "locks require recirculation");
        // recirculation is rare relative to traffic (one per lock event)
        assert!(sw.recirculations() < 10_000);
    }

    #[test]
    fn byte_valued_insertion_works() {
        let mut sw = TofinoReliable::<u64>::new(128 * 1024, 25_000, 5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let k = i % 500;
            let bytes = 64 + (i % 3) * 700;
            sw.insert(&k, bytes);
            *truth.entry(k).or_insert(0) += bytes;
        }
        let mut worst = 0u64;
        for (&k, &f) in &truth {
            worst = worst.max(sw.query(&k).abs_diff(f));
        }
        assert!(worst <= 25_000, "byte-mode error {worst} > Λ");
    }

    #[test]
    fn six_layer_budget() {
        let sw = TofinoReliable::<u64>::new(64 * 1024, 25, 1);
        assert_eq!(sw.geometry().depth(), SWITCH_LAYERS);
        assert_eq!(sw.name(), "Ours(Tofino)");
    }

    #[test]
    fn table4_reproduced_at_paper_layout() {
        // the paper's deployment: 6 layers, ≈1.66 MB of bucket SRAM
        let r = TofinoResources::estimate(6, 1_665_000);
        assert_eq!(r.usage("Stateful ALU"), Some(12)); // 25.00 %
        assert_eq!(r.usage("Hash Bits"), Some(541)); // 10.84 %
        assert_eq!(r.usage("TCAM"), Some(0)); // 0 %
        assert_eq!(r.usage("VLIW Instr"), Some(23)); // 5.99 %
        assert_eq!(r.usage("Match Xbar"), Some(109)); // 7.10 %
        assert_eq!(r.usage("SRAM"), Some(138)); // 14.37 %
        assert_eq!(r.usage("Map RAM"), Some(119)); // 20.66 %
        let pct = |name: &str| {
            r.rows()
                .iter()
                .find(|row| row.resource == name)
                .unwrap()
                .percentage
        };
        assert!((pct("Stateful ALU") - 0.25).abs() < 1e-9);
        assert!((pct("SRAM") - 0.1437).abs() < 1e-3);
        assert!((pct("Map RAM") - 0.2066).abs() < 1e-3);
        assert!((pct("Hash Bits") - 0.1084).abs() < 1e-3);
    }

    #[test]
    fn resources_scale_with_depth_and_memory() {
        let small = TofinoResources::estimate(4, 100_000);
        let big = TofinoResources::estimate(8, 2_000_000);
        for res in ["Hash Bits", "SRAM", "Stateful ALU"] {
            assert!(big.usage(res).unwrap() > small.usage(res).unwrap());
        }
    }

    #[test]
    fn clear_resets_model() {
        let mut sw = TofinoReliable::<u64>::new(8 * 1024, 25, 6);
        for i in 0..10_000u64 {
            sw.insert(&(i % 2_000), 1);
        }
        rsk_api::Clear::clear(&mut sw);
        assert_eq!(sw.recirculations(), 0);
        assert_eq!(sw.query(&5), 0);
    }
}
