//! Cycle-level simulation of the FPGA insertion pipeline (paper §5.1).
//!
//! [`super::fpga::FpgaModel`] models *resources and timing analytically*;
//! this module actually clocks the design. The paper's Verilog pipeline
//! accepts one key per clock and completes an insertion 41 clocks later;
//! for that to be functionally correct, back-to-back packets that touch
//! the same bucket must see each other's not-yet-committed updates — a
//! classic read-after-write hazard that hardware resolves with a
//! *forwarding (bypass) network* rather than stalls, since stalls would
//! break the one-key-per-clock line rate.
//!
//! The simulator models the paper's stage layout:
//!
//! ```text
//! [ hash ×8 ][ layer 1: read|write ][ layer 2: read|write ] … [ emergency ]
//! ```
//!
//! which for the paper's 16-layer configuration gives `8 + 2·16 + 1 = 41`
//! stages — the latency Table 3 reports. Each `read` stage performs the
//! layer's Algorithm-1 step against the bucket memory *with forwarding
//! from the in-flight `write` stage of the same layer*; each `write`
//! stage commits at the end of the clock. Forwarding can be switched off
//! ([`FpgaPipeline::set_forwarding`]) to demonstrate that the hazard is
//! real: without it, bursts to one bucket corrupt the election.
//!
//! Functional equivalence with the software sketch is exact and tested:
//! after draining, the pipeline's memory answers every query identically
//! to [`rsk_core::ReliableSketch`] built on the same geometry and seed.

use rsk_api::{Estimate, Key};
use rsk_core::LayerGeometry;
use rsk_hash::HashFamily;

/// Hash-unit latency in clocks (the `Hash` module of Table 3).
pub const HASH_STAGES: usize = 8;

/// One bucket in the pipeline's block RAM: `(ID, YES, NO)`.
type Bucket<K> = (Option<K>, u64, u64);

/// A packet in flight through the pipeline.
#[derive(Debug, Clone)]
struct Txn<K: Key> {
    key: K,
    /// Value still to be placed (0 once the insertion finished).
    remaining: u64,
    /// Bucket indices per layer, computed by the hash stages.
    indices: Vec<usize>,
    /// Write scheduled for the current layer's write stage, if any.
    pending: Option<(usize, usize, Bucket<K>)>,
}

/// Cycle-level model of the fully pipelined FPGA insertion datapath.
///
/// ```
/// use rsk_core::{Depth, LayerGeometry};
/// use rsk_dataplane::FpgaPipeline;
///
/// let geometry = LayerGeometry::derive(83_886, 22, 2.0, 2.5, Depth::Fixed(16), false);
/// let mut pipe = FpgaPipeline::<u64>::new(&geometry, 7);
/// assert_eq!(pipe.depth(), 41); // the paper's insertion latency
///
/// let items: Vec<(u64, u64)> = (0..1_000u64).map(|i| (i % 37, 1)).collect();
/// pipe.run(&items);
/// // line rate: n keys + drain latency
/// assert_eq!(pipe.clock(), 1_000 + 41);
/// assert!(pipe.query(&5).value >= 27);
/// ```
#[derive(Debug, Clone)]
pub struct FpgaPipeline<K: Key> {
    widths: Vec<usize>,
    lambdas: Vec<u64>,
    memory: Vec<Vec<Bucket<K>>>,
    hashes: HashFamily,
    /// `stages[s]` holds the transaction currently in stage `s`.
    stages: Vec<Option<Txn<K>>>,
    /// Remainders that survived every layer (the emergency stack).
    emergency: Vec<(K, u64)>,
    forwarding: bool,
    clock: u64,
    accepted: u64,
}

impl<K: Key> FpgaPipeline<K> {
    /// Build the pipeline for a layer schedule and hash seed.
    pub fn new(geometry: &LayerGeometry, seed: u64) -> Self {
        let widths = geometry.widths().to_vec();
        let lambdas = geometry.lambdas().to_vec();
        let memory = widths.iter().map(|&w| vec![(None, 0, 0); w]).collect();
        let stage_count = HASH_STAGES + 2 * widths.len() + 1;
        Self {
            hashes: HashFamily::new(widths.len(), seed),
            memory,
            stages: vec![None; stage_count],
            emergency: Vec::new(),
            forwarding: true,
            clock: 0,
            accepted: 0,
            widths,
            lambdas,
        }
    }

    /// Total pipeline stages (= insertion latency in clocks).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Clocks elapsed so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Keys accepted so far (one per clock — the design never stalls).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Remainders that overflowed into the emergency stack.
    pub fn emergency_stack(&self) -> &[(K, u64)] {
        &self.emergency
    }

    /// Enable or disable the forwarding network (on by default; turning
    /// it off exists to demonstrate the RAW hazard in tests and docs).
    pub fn set_forwarding(&mut self, on: bool) {
        self.forwarding = on;
    }

    /// Compute the hash stages for one packet ahead of time (the per-batch
    /// amortized prefix of [`Self::run_batched`]).
    fn prepare(&self, key: K, value: u64) -> Txn<K> {
        Txn {
            key,
            remaining: value,
            indices: (0..self.widths.len())
                .map(|i| self.hashes.index(i, &key, self.widths[i]))
                .collect(),
            pending: None,
        }
    }

    /// Clock the pipeline once, optionally accepting a new key.
    pub fn tick(&mut self, input: Option<(K, u64)>) {
        let txn = input.map(|(key, value)| self.prepare(key, value));
        self.tick_prepared(txn);
    }

    /// Clock the pipeline once with an already-hashed transaction.
    fn tick_prepared(&mut self, input: Option<Txn<K>>) {
        // evaluate read stages against current memory + forwarded writes,
        // then commit all write stages at end of clock, then shift
        let depth = self.widths.len();
        let layer_of_read = move |s: usize| -> Option<usize> {
            if s >= HASH_STAGES && (s - HASH_STAGES).is_multiple_of(2) {
                let i = (s - HASH_STAGES) / 2;
                (i < depth).then_some(i)
            } else {
                None
            }
        };

        // 1. read/decide stages (each sees the write stage one ahead)
        for s in (0..self.stages.len()).rev() {
            let Some(layer) = layer_of_read(s) else {
                continue;
            };
            // forwarded state from the transaction in this layer's write
            // stage (entered one clock earlier)
            let forwarded: Option<(usize, Bucket<K>)> = if self.forwarding {
                self.stages
                    .get(s + 1)
                    .and_then(|t| t.as_ref())
                    .and_then(|t| t.pending.as_ref())
                    .and_then(|&(l, j, state)| (l == layer).then_some((j, state)))
            } else {
                None
            };
            let Some(txn) = self.stages[s].as_mut() else {
                continue;
            };
            txn.pending = None;
            if txn.remaining == 0 {
                continue;
            }
            let j = txn.indices[layer];
            let lambda = self.lambdas[layer];
            let mut bucket = match forwarded {
                Some((fj, state)) if fj == j => state,
                _ => self.memory[layer][j],
            };

            // Algorithm 1, one layer step
            if bucket.0 == Some(txn.key) {
                bucket.1 += txn.remaining;
                txn.remaining = 0;
            } else if bucket.2.saturating_add(txn.remaining) > lambda && bucket.1 > lambda {
                let absorbed = lambda.saturating_sub(bucket.2);
                bucket.2 += absorbed;
                txn.remaining -= absorbed;
            } else {
                bucket.2 += txn.remaining;
                txn.remaining = 0;
                if bucket.2 >= bucket.1 {
                    bucket.0 = Some(txn.key);
                    core::mem::swap(&mut bucket.1, &mut bucket.2);
                }
            }
            txn.pending = Some((layer, j, bucket));
        }

        // 2. commit write stages (end of clock); take() so every pending
        // write commits exactly once — a stale pending re-committing at a
        // later stage would clobber younger transactions' writes
        for s in 0..self.stages.len() {
            if layer_of_read(s).is_some() {
                continue; // writes live in odd offsets
            }
            let Some(txn) = self.stages[s].as_mut() else {
                continue;
            };
            if let Some((layer, j, state)) = txn.pending.take() {
                self.memory[layer][j] = state;
            }
        }

        // 3. retire the last stage (emergency commit) and shift
        if let Some(txn) = self.stages.last().cloned().flatten() {
            if txn.remaining > 0 {
                self.emergency.push((txn.key, txn.remaining));
            }
        }
        for s in (1..self.stages.len()).rev() {
            self.stages[s] = self.stages[s - 1].take();
        }
        self.stages[0] = input.inspect(|_| {
            self.accepted += 1;
        });
        self.clock += 1;
    }

    /// Feed a whole stream at line rate (one key per clock) and drain.
    ///
    /// Ingestion is batched internally (see [`Self::run_batched`]); the
    /// cycle accounting is unchanged — one accepted key per clock, no
    /// idle gaps between batches.
    pub fn run<'a>(&mut self, items: impl IntoIterator<Item = &'a (K, u64)>) {
        const BATCH: usize = 256;
        let mut buffer = Vec::with_capacity(BATCH);
        for &(k, v) in items {
            buffer.push((k, v));
            if buffer.len() == BATCH {
                self.feed_batch(&buffer);
                buffer.clear();
            }
        }
        self.feed_batch(&buffer);
        self.drain();
    }

    /// Feed a materialized stream in `batch_size`-item batches and drain.
    ///
    /// Each batch's hash stages are evaluated in one tight loop per layer
    /// before any packet enters the pipeline — the software analogue of
    /// the hardware's dedicated hash units, and the same amortization
    /// [`rsk_core::ReliableSketch::insert_batch`] applies on the CPU path.
    /// Functionally identical to [`Self::run`]: same memory image, same
    /// clock count (`n + depth`).
    pub fn run_batched(&mut self, items: &[(K, u64)], batch_size: usize) {
        for batch in items.chunks(batch_size.max(1)) {
            self.feed_batch(batch);
        }
        self.drain();
    }

    /// Pre-hash `batch` layer by layer, then clock it in back to back.
    fn feed_batch(&mut self, batch: &[(K, u64)]) {
        let mut txns: Vec<Txn<K>> = batch
            .iter()
            .map(|&(key, value)| Txn {
                key,
                remaining: value,
                indices: vec![0; self.widths.len()],
                pending: None,
            })
            .collect();
        for i in 0..self.widths.len() {
            let w = self.widths[i];
            for t in &mut txns {
                t.indices[i] = self.hashes.index(i, &t.key, w);
            }
        }
        for t in txns {
            self.tick_prepared(Some(t));
        }
    }

    /// Clock until the pipeline is empty.
    pub fn drain(&mut self) {
        while self.stages.iter().any(Option::is_some) {
            self.tick(None);
        }
    }

    /// Algorithm-2 query over the committed memory (plus the emergency
    /// stack), for comparing against the software implementation.
    pub fn query(&self, key: &K) -> Estimate {
        let mut est = 0u64;
        let mut mpe = 0u64;
        for i in 0..self.widths.len() {
            let j = self.hashes.index(i, key, self.widths[i]);
            let b = &self.memory[i][j];
            let matches = b.0.as_ref() == Some(key);
            est += if matches { b.1 } else { b.2 };
            mpe += b.2;
            if b.2 < self.lambdas[i] || b.1 == b.2 || matches {
                break;
            }
        }
        let rem: u64 = self
            .emergency
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .sum();
        Estimate {
            value: est + rem,
            max_possible_error: mpe,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rsk_api::{ErrorSensing, StreamSummary};
    use rsk_core::{Depth, EmergencyPolicy, ReliableConfig, ReliableSketch, BUCKET_BYTES};

    fn software_twin(geometry: &LayerGeometry, seed: u64) -> ReliableSketch<u64> {
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * BUCKET_BYTES,
            lambda: geometry.total_lambda().max(1),
            depth: Depth::Fixed(geometry.depth()),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            lambda_floor_one: false,
            seed,
            ..Default::default()
        };
        ReliableSketch::with_geometry(config, geometry.clone())
    }

    fn check_against_software(geometry: &LayerGeometry, seed: u64, items: &[(u64, u64)]) {
        let mut hw = FpgaPipeline::<u64>::new(geometry, seed);
        hw.run(items);
        let mut sw = software_twin(geometry, seed);
        for &(k, v) in items {
            sw.insert(&k, v);
        }
        let keys: std::collections::HashSet<u64> = items.iter().map(|&(k, _)| k).collect();
        for k in keys {
            let h = hw.query(&k);
            let s = sw.query_with_error(&k);
            assert_eq!(
                (h.value, h.max_possible_error),
                (s.value, s.max_possible_error),
                "hardware/software divergence at key {k}"
            );
        }
    }

    #[test]
    fn paper_configuration_has_41_stages() {
        let geometry = LayerGeometry::derive(83_886, 22, 2.0, 2.5, Depth::Fixed(16), false);
        let p = FpgaPipeline::<u64>::new(&geometry, 1);
        assert_eq!(p.depth(), 41, "8 hash + 2·16 layer + 1 emergency");
    }

    #[test]
    fn line_rate_cycle_accounting() {
        let geometry = LayerGeometry::derive(1_000, 22, 2.0, 2.5, Depth::Fixed(8), false);
        let mut p = FpgaPipeline::<u64>::new(&geometry, 1);
        let items: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i % 37, 1)).collect();
        p.run(&items);
        // n keys at one per clock + drain = n + depth clocks
        assert_eq!(p.accepted(), 10_000);
        assert_eq!(p.clock(), 10_000 + p.depth() as u64);
    }

    #[test]
    fn back_to_back_same_key_needs_forwarding() {
        // A, B, B into one bucket: with forwarding the election ends at
        // (B, 2, 1); without it, the stale read corrupts the count
        let geometry = LayerGeometry::custom(vec![1], vec![100]).unwrap();
        let stream = [(1u64, 1u64), (2, 1), (2, 1)];

        let mut good = FpgaPipeline::<u64>::new(&geometry, 3);
        good.run(&stream);
        assert_eq!(good.query(&2).value, 2);

        let mut bad = FpgaPipeline::<u64>::new(&geometry, 3);
        bad.set_forwarding(false);
        bad.run(&stream);
        assert_ne!(
            bad.query(&2).value,
            2,
            "without forwarding the RAW hazard must corrupt the election"
        );
    }

    #[test]
    fn equivalent_to_software_on_real_trace_shape() {
        let geometry = LayerGeometry::derive(2_000, 25, 2.0, 2.5, Depth::Auto, false);
        let items: Vec<(u64, u64)> = (0..60_000u64)
            .map(|i| (rsk_hash::splitmix64(i % 1_500), 1 + i % 3))
            .collect();
        check_against_software(&geometry, 7, &items);
    }

    #[test]
    fn run_batched_is_identical_to_run() {
        let geometry = LayerGeometry::derive(1_500, 25, 2.0, 2.5, Depth::Auto, false);
        let items: Vec<(u64, u64)> = (0..20_000u64)
            .map(|i| (rsk_hash::splitmix64(i % 700), 1 + i % 4))
            .collect();
        let mut streamed = FpgaPipeline::<u64>::new(&geometry, 5);
        streamed.run(&items);
        // batch sizes that do and do not divide the stream length
        for batch in [1usize, 64, 333, 50_000] {
            let mut batched = FpgaPipeline::<u64>::new(&geometry, 5);
            batched.run_batched(&items, batch);
            assert_eq!(batched.accepted(), streamed.accepted());
            assert_eq!(batched.clock(), streamed.clock(), "batch={batch}");
            for &(k, _) in items.iter().take(2_000) {
                assert_eq!(batched.query(&k), streamed.query(&k), "batch={batch}");
            }
        }
    }

    #[test]
    fn five_tuple_keys_flow_through_the_pipeline() {
        // the generic-key path on the hardware model: 13-byte 5-tuples
        let geometry = LayerGeometry::derive(512, 25, 2.0, 2.5, Depth::Fixed(4), false);
        let mut hw = FpgaPipeline::<[u8; 13]>::new(&geometry, 3);
        let mut tuple = [0u8; 13];
        let items: Vec<([u8; 13], u64)> = (0..5_000u64)
            .map(|i| {
                tuple[0] = (i % 40) as u8;
                tuple[12] = 6; // TCP
                (tuple, 1)
            })
            .collect();
        hw.run(&items);
        tuple[0] = 7;
        let est = hw.query(&tuple);
        assert!(est.value >= 125, "flow undercounted: {est:?}");
        assert_eq!(hw.accepted(), 5_000);
    }

    #[test]
    fn emergency_stack_collects_overflow() {
        // tiny structure, colliding heavy keys: failures must surface in
        // the stack and still be answered by query()
        let geometry = LayerGeometry::custom(vec![1, 1], vec![2, 1]).unwrap();
        let items: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 3, 1)).collect();
        let mut p = FpgaPipeline::<u64>::new(&geometry, 5);
        p.run(&items);
        assert!(!p.emergency_stack().is_empty());
        for k in 0..3u64 {
            assert!(p.query(&k).value >= 100, "stack remainders not counted");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Hardware (cycle-level, forwarding) and software agree exactly
        /// on arbitrary streams and geometries.
        #[test]
        fn prop_pipeline_equals_software(
            widths in proptest::collection::vec(1usize..8, 1..4),
            lambda0 in 1u64..32,
            seed in 0u64..32,
            ops in proptest::collection::vec((0u64..32, 1u64..10), 1..300),
        ) {
            let lambdas: Vec<u64> = (0..widths.len()).map(|i| lambda0 >> i).collect();
            let geometry = LayerGeometry::custom(widths, lambdas).unwrap();
            check_against_software(&geometry, seed, &ops);
        }

        /// Interleaving idle clocks (gaps in the packet feed) never
        /// changes the result.
        #[test]
        fn prop_idle_gaps_are_transparent(
            ops in proptest::collection::vec((0u64..16, 1u64..6, 0u8..3), 1..200),
            seed in 0u64..16,
        ) {
            let geometry = LayerGeometry::custom(vec![4, 2], vec![8, 3]).unwrap();
            let mut gappy = FpgaPipeline::<u64>::new(&geometry, seed);
            let mut dense = FpgaPipeline::<u64>::new(&geometry, seed);
            for &(k, v, gap) in &ops {
                gappy.tick(Some((k, v)));
                for _ in 0..gap {
                    gappy.tick(None);
                }
                dense.tick(Some((k, v)));
            }
            gappy.drain();
            dense.drain();
            for k in 0u64..16 {
                prop_assert_eq!(gappy.query(&k), dense.query(&k), "key {}", k);
            }
        }
    }
}
