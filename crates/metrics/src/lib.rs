//! # rsk-metrics — evaluation metrics and measurement harness
//!
//! Implements the paper's four metrics (§6.1.3) and the measurement
//! machinery its figures need:
//!
//! * [`error`] — `# Outliers`, AAE, ARE, max error, error distributions;
//! * [`throughput`] — wall-clock insert/query throughput in Mpps;
//! * [`search`] — bisection for "minimum memory achieving zero outliers"
//!   (Figures 5, 11–15) and "memory achieving a target AAE";
//! * [`report`] — plain-text/CSV table emission shared by the `repro`
//!   binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confidence;
pub mod error;
pub mod heavy_hitters;
pub mod percentile;
pub mod report;
pub mod search;
pub mod throughput;

pub use confidence::{wilson_interval, zero_event_upper_bound};
pub use error::{evaluate, evaluate_subset, evaluate_with, ErrorReport};
pub use heavy_hitters::HhReport;
pub use percentile::TailSummary;
pub use report::Table;
pub use search::{min_memory_for_target_aae, min_memory_for_zero_outliers, SearchOptions};
pub use throughput::{measure_insert_mpps, measure_query_mpps};

/// A function that builds a sketch at a given memory budget and seed —
/// the shape every sweep in the harness works with.
pub type SketchFactory = Box<dyn Fn(usize, u64) -> Box<dyn rsk_api::Sketch<u64>>>;
