//! Wall-clock throughput in Mpps (paper §6.1.3, Figure 10).
//!
//! The paper measures 10 M inserts and 10 M queries on a pinned CPU with
//! `-O2`. Absolute numbers depend on the host; the harness reports Mpps
//! for *every algorithm under the same conditions*, which preserves the
//! ratios the paper's Figure 10 is about. Criterion benches in
//! `rsk-bench` provide the statistically rigorous version; this module is
//! the cheap single-shot variant the `repro` binary uses.

use rsk_api::StreamSummary;
use rsk_stream::Item;
use std::time::Instant;

/// Insert the whole stream once, returning million-operations-per-second.
pub fn measure_insert_mpps<S>(sketch: &mut S, items: &[Item<u64>]) -> f64
where
    S: StreamSummary<u64> + ?Sized,
{
    assert!(!items.is_empty());
    let start = Instant::now();
    for it in items {
        sketch.insert(&it.key, it.value);
    }
    mpps(items.len(), start)
}

/// Query every item's key once, returning Mpps. The checksum foils
/// dead-code elimination.
pub fn measure_query_mpps<S>(sketch: &S, items: &[Item<u64>]) -> f64
where
    S: StreamSummary<u64> + ?Sized,
{
    assert!(!items.is_empty());
    let start = Instant::now();
    let mut sink = 0u64;
    for it in items {
        sink = sink.wrapping_add(sketch.query(&it.key));
    }
    let elapsed = mpps(items.len(), start);
    // keep `sink` observable
    if sink == u64::MAX {
        eprintln!("improbable checksum {sink}");
    }
    elapsed
}

/// Time an arbitrary bulk operation over `ops` items and report Mpps.
///
/// The closure-based twin of [`measure_insert_mpps`] for ingestion paths
/// that are not single-item `StreamSummary` loops — the contender registry
/// times multi-worker `ingest_parallel` and merge-then-ingest pipelines
/// with this.
///
/// ```
/// use rsk_metrics::throughput::time_mpps;
///
/// let mut sum = 0u64;
/// let mpps = time_mpps(10_000, || {
///     for i in 0..10_000u64 {
///         sum = sum.wrapping_add(i);
///     }
/// });
/// assert!(mpps > 0.0 && mpps.is_finite());
/// ```
pub fn time_mpps(ops: usize, f: impl FnOnce()) -> f64 {
    assert!(ops > 0, "cannot time zero operations");
    let start = Instant::now();
    f();
    mpps(ops, start)
}

fn mpps(ops: usize, start: Instant) -> f64 {
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    ops as f64 / secs / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[derive(Default)]
    struct Noop(HashMap<u64, u64>);
    impl StreamSummary<u64> for Noop {
        fn insert(&mut self, k: &u64, v: u64) {
            *self.0.entry(*k).or_insert(0) += v;
        }
        fn query(&self, k: &u64) -> u64 {
            self.0.get(k).copied().unwrap_or(0)
        }
    }

    #[test]
    fn throughput_is_positive_and_finite() {
        let items: Vec<Item<u64>> = (0..10_000u64).map(Item::unit).collect();
        let mut s = Noop::default();
        let ins = measure_insert_mpps(&mut s, &items);
        let qry = measure_query_mpps(&s, &items);
        assert!(ins.is_finite() && ins > 0.0);
        assert!(qry.is_finite() && qry > 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_stream_rejected() {
        let mut s = Noop::default();
        measure_insert_mpps(&mut s, &[]);
    }
}
