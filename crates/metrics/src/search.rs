//! Memory bisection: "how much memory does algorithm X need to reach
//! goal G on this stream?" — the workhorse behind Figure 5 (zero-outlier
//! memory), Figures 11–14 (parameter ablations) and Figure 15 (Λ sweep).
//!
//! Outlier count is not perfectly monotone in memory (hash luck), so the
//! search (a) bisects on the predicate, then (b) verifies the returned
//! budget and, if the paper-style stability check is requested, a few
//! escalating budgets above it.

use crate::error::{evaluate, ErrorReport};
use rsk_api::Sketch;
use rsk_stream::{GroundTruth, Item};

/// Bisection options.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Lower bound of the search window (bytes).
    pub min_bytes: usize,
    /// Upper bound of the search window (bytes).
    pub max_bytes: usize,
    /// Stop when the window narrows below this (bytes).
    pub resolution: usize,
    /// Evaluate this many seeds per probe and require *all* to pass
    /// (the paper presents worst-case-of-100-seeds curves in Figure 7).
    pub seeds: u64,
}

impl Default for SearchOptions {
    fn default() -> Self {
        Self {
            min_bytes: 8 * 1024,
            max_bytes: 16 << 20,
            resolution: 16 * 1024,
            seeds: 1,
        }
    }
}

/// Smallest memory in the window for which `build(mem, seed)` yields zero
/// outliers at tolerance `lambda` for **all** probed seeds, or `None` if
/// even `max_bytes` fails.
pub fn min_memory_for_zero_outliers(
    build: &dyn Fn(usize, u64) -> Box<dyn Sketch<u64>>,
    stream: &[Item<u64>],
    truth: &GroundTruth<u64>,
    lambda: u64,
    opts: SearchOptions,
) -> Option<usize> {
    min_memory_such_that(
        build,
        stream,
        truth,
        opts,
        &|rep: &ErrorReport| rep.outliers == 0,
        lambda,
    )
}

/// Smallest memory in the window reaching `AAE ≤ target_aae`.
pub fn min_memory_for_target_aae(
    build: &dyn Fn(usize, u64) -> Box<dyn Sketch<u64>>,
    stream: &[Item<u64>],
    truth: &GroundTruth<u64>,
    target_aae: f64,
    opts: SearchOptions,
) -> Option<usize> {
    min_memory_such_that(
        build,
        stream,
        truth,
        opts,
        &move |rep: &ErrorReport| rep.aae <= target_aae,
        u64::MAX,
    )
}

fn min_memory_such_that(
    build: &dyn Fn(usize, u64) -> Box<dyn Sketch<u64>>,
    stream: &[Item<u64>],
    truth: &GroundTruth<u64>,
    opts: SearchOptions,
    good: &dyn Fn(&ErrorReport) -> bool,
    lambda: u64,
) -> Option<usize> {
    let probe = |mem: usize| -> bool {
        (0..opts.seeds).all(|seed| {
            let mut sk = build(mem, seed);
            for it in stream {
                sk.insert(&it.key, it.value);
            }
            good(&evaluate(sk.as_ref(), truth, lambda))
        })
    };

    if !probe(opts.max_bytes) {
        return None;
    }
    let (mut lo, mut hi) = (opts.min_bytes, opts.max_bytes);
    if probe(lo) {
        return Some(lo);
    }
    // invariant: lo fails, hi passes
    while hi - lo > opts.resolution.max(1) {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsk_api::{Algorithm, MemoryFootprint, StreamSummary};
    use rsk_stream::Item;

    /// Toy sketch whose error is exactly `threshold_bytes / mem` — makes
    /// the bisection target analytic.
    struct Synthetic {
        mem: usize,
        truth: GroundTruth<u64>,
    }
    impl StreamSummary<u64> for Synthetic {
        fn insert(&mut self, k: &u64, v: u64) {
            rsk_api::StreamSummary::insert(&mut self.truth, k, v);
        }
        fn query(&self, k: &u64) -> u64 {
            // error shrinks inversely with memory
            self.truth.freq(k) + (1_000_000 / self.mem) as u64
        }
    }
    impl MemoryFootprint for Synthetic {
        fn memory_bytes(&self) -> usize {
            self.mem
        }
    }
    impl Algorithm for Synthetic {
        fn name(&self) -> String {
            "Synthetic".into()
        }
    }

    fn fixture() -> (Vec<Item<u64>>, GroundTruth<u64>) {
        let stream: Vec<Item<u64>> = (0..200u64).map(Item::unit).collect();
        let truth = GroundTruth::from_items(&stream);
        (stream, truth)
    }

    #[test]
    fn finds_the_analytic_threshold() {
        let (stream, truth) = fixture();
        // zero outliers at Λ=25 needs ⌊1e6/mem⌋ ≤ 25 → mem ≥ ⌈1e6/26⌉ = 38_462
        let opts = SearchOptions {
            min_bytes: 1_000,
            max_bytes: 1_000_000,
            resolution: 500,
            seeds: 1,
        };
        let found = min_memory_for_zero_outliers(
            &|mem, _| {
                Box::new(Synthetic {
                    mem,
                    truth: GroundTruth::new(),
                })
            },
            &stream,
            &truth,
            25,
            opts,
        )
        .unwrap();
        assert!(
            (38_400..=39_500).contains(&found),
            "expected ≈38_462, got {found}"
        );
    }

    #[test]
    fn none_when_even_max_fails() {
        let (stream, truth) = fixture();
        let opts = SearchOptions {
            min_bytes: 100,
            max_bytes: 1_000,
            resolution: 50,
            seeds: 1,
        };
        assert!(min_memory_for_zero_outliers(
            &|mem, _| Box::new(Synthetic {
                mem,
                truth: GroundTruth::new()
            }),
            &stream,
            &truth,
            25,
            opts,
        )
        .is_none());
    }

    #[test]
    fn lower_bound_short_circuits() {
        let (stream, truth) = fixture();
        let opts = SearchOptions {
            min_bytes: 500_000,
            max_bytes: 1_000_000,
            resolution: 1_000,
            seeds: 1,
        };
        let found = min_memory_for_zero_outliers(
            &|mem, _| {
                Box::new(Synthetic {
                    mem,
                    truth: GroundTruth::new(),
                })
            },
            &stream,
            &truth,
            25,
            opts,
        )
        .unwrap();
        assert_eq!(found, 500_000);
    }

    #[test]
    fn aae_target_search() {
        let (stream, truth) = fixture();
        // AAE = ⌊1e6/mem⌋ ≤ 5 → mem ≥ ⌈1e6/6⌉ = 166_667
        let opts = SearchOptions {
            min_bytes: 10_000,
            max_bytes: 1_000_000,
            resolution: 2_000,
            seeds: 1,
        };
        let found = min_memory_for_target_aae(
            &|mem, _| {
                Box::new(Synthetic {
                    mem,
                    truth: GroundTruth::new(),
                })
            },
            &stream,
            &truth,
            5.0,
            opts,
        )
        .unwrap();
        assert!(
            (165_000..=172_000).contains(&found),
            "expected ≈166_667, got {found}"
        );
    }
}
