//! Heavy-hitter report quality: precision / recall / F1 against the
//! oracle, with the Λ-aware "hard error" notion the paper's introduction
//! uses (a flow below `T − Λ` flagged heavy, or above `T + Λ` missed, is
//! inexcusable for a sketch with the all-keys guarantee; flows inside the
//! `±Λ` band are legitimately ambiguous).

use rsk_stream::GroundTruth;

/// Quality of one heavy-hitter report at threshold `T` and tolerance `Λ`.
#[derive(Debug, Clone, PartialEq)]
pub struct HhReport {
    /// Reported keys that are truly above `T`.
    pub true_positives: usize,
    /// Reported keys below `T` (any miss).
    pub false_positives: usize,
    /// Keys above `T` that were not reported.
    pub false_negatives: usize,
    /// Reported keys below `T − Λ` — impossible under the guarantee.
    pub hard_false_positives: usize,
    /// Keys above `T + Λ` that were not reported — impossible under the
    /// guarantee.
    pub hard_false_negatives: usize,
}

impl HhReport {
    /// Score `reported` against the oracle.
    pub fn score(
        reported: impl IntoIterator<Item = u64>,
        truth: &GroundTruth<u64>,
        threshold: u64,
        lambda: u64,
    ) -> Self {
        let reported: std::collections::HashSet<u64> = reported.into_iter().collect();
        let mut tp = 0;
        let mut fp = 0;
        let mut hard_fp = 0;
        for &k in &reported {
            let f = truth.freq(&k);
            if f >= threshold {
                tp += 1;
            } else {
                fp += 1;
                if f < threshold.saturating_sub(lambda) {
                    hard_fp += 1;
                }
            }
        }
        let mut fnn = 0;
        let mut hard_fn = 0;
        for (k, f) in truth.iter() {
            if f >= threshold && !reported.contains(k) {
                fnn += 1;
                if f > threshold + lambda {
                    hard_fn += 1;
                }
            }
        }
        Self {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fnn,
            hard_false_positives: hard_fp,
            hard_false_negatives: hard_fn,
        }
    }

    /// `tp / (tp + fp)`, 1 when nothing was reported.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// `tp / (tp + fn)`, 1 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// No hard errors: what the all-keys guarantee promises.
    pub fn guarantee_clean(&self) -> bool {
        self.hard_false_positives == 0 && self.hard_false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsk_api::StreamSummary;

    fn oracle() -> GroundTruth<u64> {
        let mut gt = GroundTruth::new();
        // keys 0..100 with f = 10·k: heavy at T=500 ⇔ k ≥ 50
        for k in 0u64..100 {
            gt.insert(&k, 10 * k);
        }
        gt
    }

    #[test]
    fn perfect_report() {
        let truth = oracle();
        let r = HhReport::score(50..100u64, &truth, 500, 25);
        assert_eq!(r.true_positives, 50);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
        assert!(r.guarantee_clean());
    }

    #[test]
    fn soft_vs_hard_false_positives() {
        let truth = oracle();
        // key 48 (f=480, inside the 500−25 band) is a soft FP;
        // key 10 (f=100) is a hard FP
        let r = HhReport::score(vec![48u64, 10], &truth, 500, 25);
        assert_eq!(r.false_positives, 2);
        assert_eq!(r.hard_false_positives, 1);
        assert!(!r.guarantee_clean());
    }

    #[test]
    fn soft_vs_hard_false_negatives() {
        let truth = oracle();
        // report everything heavy except keys 50 (f=500, soft miss) and
        // 99 (f=990, hard miss: 990 > 525)
        let reported: Vec<u64> = (51..99).collect();
        let r = HhReport::score(reported, &truth, 500, 25);
        assert_eq!(r.false_negatives, 2);
        assert_eq!(r.hard_false_negatives, 1);
    }

    #[test]
    fn empty_cases() {
        let truth = GroundTruth::new();
        let r = HhReport::score(std::iter::empty(), &truth, 100, 25);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }
}
