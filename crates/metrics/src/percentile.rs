//! Percentile helpers over error distributions — used to read Figure
//! 19b-style "error at the top 10⁻ᵏ fraction of keys" points out of a
//! sorted error vector, and generally handy for tail analysis.

/// Value at the `q`-quantile (0 = smallest, 1 = largest) of an ascending
/// or descending sorted slice, by nearest-rank.
///
/// # Panics
/// Panics on an empty slice or `q ∉ [0, 1]`.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of empty distribution");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    // nearest-rank: the ⌈q·N⌉-th smallest value
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank - 1]
}

/// Error at the top-`ratio` rank of a *descending* error distribution —
/// Figure 19b's x-axis ("logarithmic ratio" of keys).
pub fn at_top_ratio(desc: &[u64], ratio: f64) -> u64 {
    assert!(!desc.is_empty());
    assert!((0.0..=1.0).contains(&ratio));
    let idx = (((desc.len() as f64) * ratio) as usize).min(desc.len() - 1);
    desc[idx]
}

/// Summary of a distribution's tail: max, p99, p95, p50.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSummary {
    /// Largest value.
    pub max: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 95th percentile.
    pub p95: u64,
    /// Median.
    pub p50: u64,
}

impl TailSummary {
    /// Summarize an unsorted error vector.
    pub fn of(values: &[u64]) -> Self {
        assert!(!values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Self {
            max: *sorted.last().unwrap(),
            p99: quantile_sorted(&sorted, 0.99),
            p95: quantile_sorted(&sorted, 0.95),
            p50: quantile_sorted(&sorted, 0.50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let asc: Vec<u64> = (0..=100).collect();
        assert_eq!(quantile_sorted(&asc, 0.0), 0);
        assert_eq!(quantile_sorted(&asc, 0.5), 50);
        assert_eq!(quantile_sorted(&asc, 1.0), 100);
    }

    #[test]
    fn top_ratio_reads_descending_head() {
        let desc: Vec<u64> = (0..1000).rev().collect(); // 999, 998, …
        assert_eq!(at_top_ratio(&desc, 0.0), 999);
        assert_eq!(at_top_ratio(&desc, 0.001), 998);
        assert_eq!(at_top_ratio(&desc, 1.0), 0);
    }

    #[test]
    fn tail_summary() {
        let values: Vec<u64> = (1..=100).collect();
        let t = TailSummary::of(&values);
        assert_eq!(t.max, 100);
        assert_eq!(t.p99, 99);
        assert_eq!(t.p95, 95);
        assert_eq!(t.p50, 50);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        quantile_sorted(&[], 0.5);
    }
}
