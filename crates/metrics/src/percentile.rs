//! Percentile helpers over error distributions — used to read Figure
//! 19b-style "error at the top 10⁻ᵏ fraction of keys" points out of a
//! sorted error vector, and generally handy for tail analysis.
//!
//! Rank arithmetic here is hardened against binary-float noise: products
//! like `0.07 × 100` evaluate to `7.000000000000001` in `f64`, and a bare
//! `ceil()` (or `as usize` truncation) then lands one rank off the
//! nearest-rank definition. Both entry points snap products within a few
//! ulps of an integer back onto it before rounding, and clamp the result
//! into the valid rank range; the property tests at the bottom pin the
//! behaviour against an exact rational reference.

/// Smallest rank `r ∈ [1, n]` with `r ≥ q·n`, robust to `f64` noise in
/// the product.
fn nearest_rank(q: f64, n: usize) -> usize {
    let scaled = q * n as f64;
    // a relative epsilon a few ulps wide: wide enough to absorb the
    // rounding error of one multiply, far too narrow to skip a real rank
    let eps = scaled.max(1.0) * f64::EPSILON * 4.0;
    let rank = (scaled - eps).ceil().max(1.0) as usize;
    rank.min(n)
}

/// Value at the `q`-quantile (0 = smallest, 1 = largest) of an ascending
/// or descending sorted slice, by nearest-rank (the `⌈q·N⌉`-th value).
///
/// `q = 0` reads the first element, `q = 1` the last.
///
/// # Panics
/// Panics on an empty slice or `q ∉ [0, 1]`.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty(), "quantile of empty distribution");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    sorted[nearest_rank(q, sorted.len()) - 1]
}

/// Error at the top-`ratio` rank of a *descending* error distribution —
/// Figure 19b's x-axis ("logarithmic ratio" of keys). Reads index
/// `⌊ratio·N⌋`, clamped to the last element (so `ratio = 1` reads the
/// minimum, matching the figure's right edge).
///
/// # Panics
/// Panics on an empty slice or `ratio ∉ [0, 1]`.
pub fn at_top_ratio(desc: &[u64], ratio: f64) -> u64 {
    assert!(!desc.is_empty(), "top-ratio of empty distribution");
    assert!((0.0..=1.0).contains(&ratio), "ratio out of range: {ratio}");
    let scaled = ratio * desc.len() as f64;
    let eps = scaled.max(1.0) * f64::EPSILON * 4.0;
    // snap upward: 0.29 × 100 = 28.999999999999996 must floor to 29
    let idx = (scaled + eps).floor() as usize;
    desc[idx.min(desc.len() - 1)]
}

/// Summary of a distribution's tail: max, p99, p95, p50.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailSummary {
    /// Largest value.
    pub max: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 95th percentile.
    pub p95: u64,
    /// Median.
    pub p50: u64,
}

impl TailSummary {
    /// Summarize an unsorted error vector.
    pub fn of(values: &[u64]) -> Self {
        assert!(!values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Self {
            max: *sorted.last().unwrap(),
            p99: quantile_sorted(&sorted, 0.99),
            p95: quantile_sorted(&sorted, 0.95),
            p50: quantile_sorted(&sorted, 0.50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantiles_of_known_distribution() {
        let asc: Vec<u64> = (0..=100).collect();
        assert_eq!(quantile_sorted(&asc, 0.0), 0);
        assert_eq!(quantile_sorted(&asc, 0.5), 50);
        assert_eq!(quantile_sorted(&asc, 1.0), 100);
    }

    #[test]
    fn float_noise_does_not_shift_the_rank() {
        // 0.07 × 100 = 7.000000000000001 in f64: a bare ceil() reads rank
        // 8; the nearest-rank definition says rank 7 (value 6 on 0..100)
        let asc: Vec<u64> = (0..100).collect();
        assert_eq!(quantile_sorted(&asc, 0.07), 6);
        // 0.29 × 100 = 28.999999999999996: a bare truncation reads index
        // 28; the definition says ⌊29.0⌋ = 29 (value 70 on 99..0)
        let desc: Vec<u64> = (0..100).rev().collect();
        assert_eq!(at_top_ratio(&desc, 0.29), 70);
    }

    #[test]
    fn boundary_quantiles_on_tiny_slices() {
        assert_eq!(quantile_sorted(&[42], 0.0), 42);
        assert_eq!(quantile_sorted(&[42], 1.0), 42);
        assert_eq!(quantile_sorted(&[1, 2], 0.0), 1);
        assert_eq!(quantile_sorted(&[1, 2], 0.5), 1);
        assert_eq!(quantile_sorted(&[1, 2], 1.0), 2);
        assert_eq!(at_top_ratio(&[7], 0.0), 7);
        assert_eq!(at_top_ratio(&[7], 1.0), 7);
        assert_eq!(at_top_ratio(&[9, 3], 1.0), 3);
    }

    #[test]
    fn top_ratio_reads_descending_head() {
        let desc: Vec<u64> = (0..1000).rev().collect(); // 999, 998, …
        assert_eq!(at_top_ratio(&desc, 0.0), 999);
        assert_eq!(at_top_ratio(&desc, 0.001), 998);
        assert_eq!(at_top_ratio(&desc, 1.0), 0);
    }

    #[test]
    fn tail_summary() {
        let values: Vec<u64> = (1..=100).collect();
        let t = TailSummary::of(&values);
        assert_eq!(t.max, 100);
        assert_eq!(t.p99, 99);
        assert_eq!(t.p95, 95);
        assert_eq!(t.p50, 50);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected_top_ratio() {
        at_top_ratio(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_ratio_rejected() {
        at_top_ratio(&[1], 1.5);
    }

    /// Exact integer reference: smallest rank `r ∈ [1, n]` with
    /// `r·den ≥ num·n`, for `q = num/den`.
    fn rank_ref(num: u64, den: u64, n: u64) -> u64 {
        (1..=n).find(|r| r * den >= num * n).unwrap_or(n).max(1)
    }

    proptest! {
        /// On an identity slice, the picked rank matches the exact
        /// rational nearest-rank for every representable q = num/den.
        #[test]
        fn prop_rank_matches_rational_reference(
            n in 1u64..2_000,
            den in 1u64..1_000,
            num_seed in 0u64..1_000,
        ) {
            let num = num_seed % (den + 1); // q = num/den ∈ [0, 1]
            let q = num as f64 / den as f64;
            let asc: Vec<u64> = (0..n).collect();
            let got = quantile_sorted(&asc, q) + 1; // value v = rank v+1 − 1
            prop_assert_eq!(got, rank_ref(num, den, n),
                "q={}/{} n={}", num, den, n);
        }

        /// The top-ratio index matches ⌊ratio·n⌋ (clamped), computed
        /// exactly in integers.
        #[test]
        fn prop_top_ratio_matches_rational_reference(
            n in 1u64..2_000,
            den in 1u64..1_000,
            num_seed in 0u64..1_000,
        ) {
            let num = num_seed % (den + 1);
            let ratio = num as f64 / den as f64;
            let desc: Vec<u64> = (0..n).rev().collect();
            let idx_ref = ((num * n) / den).min(n - 1);
            prop_assert_eq!(at_top_ratio(&desc, ratio), n - 1 - idx_ref,
                "ratio={}/{} n={}", num, den, n);
        }

        /// Quantiles are monotone in q.
        #[test]
        fn prop_quantile_monotone(
            values in proptest::collection::vec(0u64..1000, 1..200),
            qa in 0u32..101,
            qb in 0u32..101,
        ) {
            let mut sorted = values;
            sorted.sort_unstable();
            let (lo, hi) = (qa.min(qb), qa.max(qb));
            prop_assert!(
                quantile_sorted(&sorted, lo as f64 / 100.0)
                    <= quantile_sorted(&sorted, hi as f64 / 100.0)
            );
        }
    }
}
