//! Result-table emission shared by the `repro` binary and EXPERIMENTS.md:
//! fixed-width text for the terminal, CSV for `results/*.csv`.

use std::fmt;
use std::io::Write;
use std::path::Path;

/// A simple rectangular results table.
///
/// ```
/// use rsk_metrics::Table;
///
/// let mut t = Table::new("Figure X", &["algorithm", "outliers"]);
/// t.row(vec!["Ours".into(), "0".into()]);
/// t.row(vec!["CM_fast".into(), "5113".into()]);
/// assert_eq!(t.len(), 2);
/// assert!(t.to_csv().starts_with("algorithm,outliers"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    volatile: bool,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            volatile: false,
        }
    }

    /// Mark the table's cells as wall-clock (or otherwise host-dependent)
    /// measurements. Volatile tables still print to the terminal and save
    /// full CSVs, but the regenerated `results/REPORT.md` replaces their
    /// body with a pointer to the CSV so the committed report stays
    /// byte-for-byte reproducible (the CI report-rot gate diffs it).
    pub fn mark_volatile(mut self) -> Self {
        self.volatile = true;
        self
    }

    /// Does this table hold host-dependent (non-reproducible) cells?
    pub fn is_volatile(&self) -> bool {
        self.volatile
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Render as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&escape_row(&self.headers));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&escape_row(r));
            out.push('\n');
        }
        out
    }

    /// Write the CSV rendering to `path`, creating parent directories.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

fn escape_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        })
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Format a byte count the way the figures label their axes (KB/MB).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}MB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{}KB", bytes / 1024)
    }
}

/// Format an outlier count like the figures' log-scale axes (exact zero is
/// meaningful and printed as "0").
pub fn fmt_outliers(n: u64) -> String {
    n.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_fixed_width() {
        let mut t = Table::new("Demo", &["algo", "outliers"]);
        t.row(vec!["Ours".into(), "0".into()]);
        t.row(vec!["CM_fast".into(), "5213".into()]);
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| Ours    | 0        |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        t.row(vec!["has\"quote".into(), "ok".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\",ok"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn save_csv_roundtrip() {
        let dir = std::env::temp_dir().join("rsk_report_test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        t.save_csv(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, "a\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512 * 1024), "512KB");
        assert_eq!(fmt_bytes(1 << 20), "1.00MB");
        assert_eq!(fmt_bytes(3 << 19), "1.50MB");
    }
}
