//! Binomial confidence intervals for seed-replicated experiments.
//!
//! Experiments like the empirical-Δ study (`repro delta`) estimate a
//! failure *probability* from a handful of seed replications; reporting
//! the raw fraction alone overstates certainty ("0/20 runs failed" does
//! not mean `Δ = 0`). The Wilson score interval is the standard small-`n`
//! interval for such proportions — unlike the normal approximation it
//! behaves sanely at 0 and 1 — and its upper bound at zero successes,
//! `≈ z²/(n + z²)`, is the right number to quote as "the Δ we can rule
//! out at this confidence".

/// Two-sided Wilson score interval for a binomial proportion.
///
/// `successes` out of `trials`, at the given `z` (1.96 ≈ 95 %,
/// 2.576 ≈ 99 %). Returns `(low, high)` with `0 ≤ low ≤ p̂ ≤ high ≤ 1`.
///
/// ```
/// use rsk_metrics::confidence::wilson_interval;
///
/// // 0 outlier runs out of 20 seeds does NOT mean Δ = 0:
/// let (low, high) = wilson_interval(0, 20, 1.96);
/// assert_eq!(low, 0.0);
/// assert!(high > 0.1 && high < 0.2); // ≈ 0.16 — all we can claim
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "no trials, no interval");
    assert!(successes <= trials);
    assert!(z > 0.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The "rule-three"-style upper bound on a probability after observing
/// zero events in `trials` runs, at `z` standard scores (Wilson upper
/// bound at 0 successes).
pub fn zero_event_upper_bound(trials: u64, z: f64) -> f64 {
    wilson_interval(0, trials, z).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_the_point_estimate() {
        for (s, n) in [(0u64, 10u64), (1, 10), (5, 10), (10, 10), (3, 100)] {
            let (low, high) = wilson_interval(s, n, 1.96);
            let p = s as f64 / n as f64;
            assert!(
                low <= p + 1e-12 && p - 1e-12 <= high,
                "{s}/{n}: {low}..{high}"
            );
            assert!((0.0..=1.0).contains(&low) && (0.0..=1.0).contains(&high));
        }
    }

    #[test]
    fn shrinks_with_more_trials() {
        let (_, h20) = wilson_interval(0, 20, 1.96);
        let (_, h100) = wilson_interval(0, 100, 1.96);
        let (_, h1000) = wilson_interval(0, 1000, 1.96);
        assert!(h20 > h100 && h100 > h1000);
    }

    #[test]
    fn widens_with_confidence() {
        let (_, h95) = wilson_interval(0, 20, 1.96);
        let (_, h99) = wilson_interval(0, 20, 2.576);
        assert!(h99 > h95);
    }

    #[test]
    fn symmetric_cases() {
        // p̂ = 0.5 centers the interval
        let (low, high) = wilson_interval(10, 20, 1.96);
        assert!((low + high - 1.0).abs() < 1e-9);
    }

    #[test]
    fn known_value_spot_check() {
        // classic: 0/20 at 95 % → upper ≈ 0.1611
        let high = zero_event_upper_bound(20, 1.96);
        assert!((high - 0.1611).abs() < 2e-3, "got {high}");
    }

    #[test]
    #[should_panic(expected = "no trials")]
    fn rejects_zero_trials() {
        wilson_interval(0, 0, 1.96);
    }
}
