//! Accuracy metrics (paper §6.1.3).
//!
//! * **# Outliers** — keys whose absolute estimation error exceeds the
//!   user threshold `Λ` (the paper's headline metric);
//! * **AAE** — mean absolute error over all keys;
//! * **ARE** — mean relative error over all keys;
//! * plus the max error and the full sorted error distribution used by
//!   Figure 19b.

use rsk_api::StreamSummary;
use rsk_stream::GroundTruth;

/// Accuracy summary of one sketch against the exact oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// Keys with `|f̂ − f| > Λ`.
    pub outliers: u64,
    /// Average absolute error.
    pub aae: f64,
    /// Average relative error.
    pub are: f64,
    /// Largest absolute error observed.
    pub max_abs_error: u64,
    /// Number of keys evaluated.
    pub keys: usize,
}

impl ErrorReport {
    /// Did every key stay within the tolerance?
    pub fn zero_outliers(&self) -> bool {
        self.outliers == 0
    }

    /// The report as result-table cells, in the column order the
    /// contender-registry tables use: `ARE`, `AAE`, `# outliers`,
    /// `max |error|`. Formatting is fixed here so every per-contender row
    /// across the harness prints identically.
    pub fn cells(&self) -> Vec<String> {
        vec![
            format!("{:.4}", self.are),
            format!("{:.3}", self.aae),
            self.outliers.to_string(),
            self.max_abs_error.to_string(),
        ]
    }
}

/// Evaluate `sketch` on every key of the oracle with tolerance `lambda`.
///
/// ```
/// use rsk_core::ReliableSketch;
/// use rsk_api::StreamSummary;
/// use rsk_metrics::evaluate;
/// use rsk_stream::{Dataset, GroundTruth};
///
/// let stream = Dataset::Hadoop.generate(50_000, 1);
/// let truth = GroundTruth::from_items(&stream);
/// let mut sk = ReliableSketch::<u64>::builder()
///     .memory_bytes(64 * 1024)
///     .error_tolerance(25)
///     .build::<u64>();
/// for it in &stream {
///     sk.insert(&it.key, it.value);
/// }
/// let report = evaluate(&sk, &truth, 25);
/// assert!(report.zero_outliers()); // the paper's headline claim
/// ```
pub fn evaluate<S>(sketch: &S, truth: &GroundTruth<u64>, lambda: u64) -> ErrorReport
where
    S: StreamSummary<u64> + ?Sized,
{
    evaluate_with(|k| sketch.query(k), truth, lambda)
}

/// Evaluate an arbitrary point-query function on every oracle key.
///
/// This is [`evaluate`] for answerers that are not `StreamSummary` trait
/// objects — the contender registry of `rsk-exp` evaluates lock-free
/// sketches through their shared-reference query paths this way.
///
/// ```
/// use rsk_metrics::evaluate_with;
/// use rsk_stream::{GroundTruth, Item};
///
/// let stream: Vec<Item<u64>> = (0..100u64).map(Item::unit).collect();
/// let truth = GroundTruth::from_items(&stream);
/// let rep = evaluate_with(|k| truth.freq(k) + 3, &truth, 25);
/// assert_eq!(rep.outliers, 0);
/// assert!((rep.aae - 3.0).abs() < 1e-12);
/// ```
pub fn evaluate_with(
    query: impl Fn(&u64) -> u64,
    truth: &GroundTruth<u64>,
    lambda: u64,
) -> ErrorReport {
    evaluate_entries(query, lambda, truth.iter().map(|(k, f)| (*k, f)))
}

/// Evaluate only the given subset of keys (e.g. the frequent keys of
/// Figure 7).
pub fn evaluate_subset<S>(
    sketch: &S,
    truth: &GroundTruth<u64>,
    lambda: u64,
    keys: &[u64],
) -> ErrorReport
where
    S: StreamSummary<u64> + ?Sized,
{
    evaluate_subset_with(|k| sketch.query(k), truth, lambda, keys)
}

/// [`evaluate_subset`] for an arbitrary point-query function — the
/// contender registry's frequent-key (heavy-hitter) scenarios.
pub fn evaluate_subset_with(
    query: impl Fn(&u64) -> u64,
    truth: &GroundTruth<u64>,
    lambda: u64,
    keys: &[u64],
) -> ErrorReport {
    evaluate_entries(query, lambda, keys.iter().map(|&k| (k, truth.freq(&k))))
}

fn evaluate_entries(
    query: impl Fn(&u64) -> u64,
    lambda: u64,
    keys: impl Iterator<Item = (u64, u64)>,
) -> ErrorReport {
    let mut outliers = 0u64;
    let mut abs_sum = 0.0f64;
    let mut rel_sum = 0.0f64;
    let mut max_abs = 0u64;
    let mut n = 0usize;
    for (k, f) in keys {
        let est = query(&k);
        let abs = est.abs_diff(f);
        if abs > lambda {
            outliers += 1;
        }
        abs_sum += abs as f64;
        if f > 0 {
            rel_sum += abs as f64 / f as f64;
        }
        max_abs = max_abs.max(abs);
        n += 1;
    }
    ErrorReport {
        outliers,
        aae: if n == 0 { 0.0 } else { abs_sum / n as f64 },
        are: if n == 0 { 0.0 } else { rel_sum / n as f64 },
        max_abs_error: max_abs,
        keys: n,
    }
}

/// Absolute error of every key, sorted descending — Figure 19b's "error
/// distribution" series.
pub fn error_distribution<S>(sketch: &S, truth: &GroundTruth<u64>) -> Vec<u64>
where
    S: StreamSummary<u64> + ?Sized,
{
    let mut errs: Vec<u64> = truth
        .iter()
        .map(|(k, f)| sketch.query(k).abs_diff(f))
        .collect();
    errs.sort_unstable_by(|a, b| b.cmp(a));
    errs
}

/// Mean absolute *sensed* error vs mean absolute *actual* error, bucketed
/// by actual error — Figure 18a's two series (only meaningful for
/// error-sensing sketches).
pub fn sensed_vs_actual<S>(
    sketch: &S,
    truth: &GroundTruth<u64>,
    max_actual: u64,
) -> Vec<(u64, f64, f64)>
where
    S: rsk_api::ErrorSensing<u64> + ?Sized,
{
    // bucket index = actual absolute error
    let mut sums = vec![(0u64, 0.0f64, 0.0f64); (max_actual + 1) as usize];
    for (k, f) in truth.iter() {
        let est = sketch.query_with_error(k);
        let actual = est.value.abs_diff(f);
        if actual <= max_actual {
            let b = &mut sums[actual as usize];
            b.0 += 1;
            b.1 += est.max_possible_error as f64;
            b.2 += actual as f64;
        }
    }
    sums.iter()
        .enumerate()
        .filter(|(_, (n, _, _))| *n > 0)
        .map(|(a, (n, sensed, actual))| (a as u64, sensed / *n as f64, actual / *n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsk_api::{Estimate, StreamSummary};
    use rsk_stream::Item;

    /// Deterministic fake sketch: answers truth + fixed error per key.
    struct Skewed {
        truth: GroundTruth<u64>,
        extra: u64,
    }
    impl StreamSummary<u64> for Skewed {
        fn insert(&mut self, _: &u64, _: u64) {}
        fn query(&self, k: &u64) -> u64 {
            self.truth.freq(k)
                + if (*k).is_multiple_of(2) {
                    self.extra
                } else {
                    0
                }
        }
    }
    impl rsk_api::ErrorSensing<u64> for Skewed {
        fn query_with_error(&self, k: &u64) -> Estimate {
            Estimate {
                value: self.query(k),
                max_possible_error: self.extra,
            }
        }
    }

    fn oracle(n: u64) -> GroundTruth<u64> {
        let items: Vec<Item<u64>> = (0..n).map(|k| Item::new(k, 10 + k)).collect();
        GroundTruth::from_items(&items)
    }

    #[test]
    fn outlier_counting() {
        let truth = oracle(100);
        let sk = Skewed {
            truth: truth.clone(),
            extra: 30,
        };
        // even keys (50 of them) err by 30 > Λ=25; odd keys exact
        let rep = evaluate(&sk, &truth, 25);
        assert_eq!(rep.outliers, 50);
        assert_eq!(rep.keys, 100);
        assert_eq!(rep.max_abs_error, 30);
        assert!(!rep.zero_outliers());
        // with Λ=30 nothing is an outlier
        assert!(evaluate(&sk, &truth, 30).zero_outliers());
    }

    #[test]
    fn aae_and_are() {
        let truth = oracle(2); // keys 0 (f=10), 1 (f=11)
        let sk = Skewed {
            truth: truth.clone(),
            extra: 5,
        };
        let rep = evaluate(&sk, &truth, 100);
        assert!((rep.aae - 2.5).abs() < 1e-12); // (5 + 0)/2
        assert!((rep.are - 0.25).abs() < 1e-12); // (0.5 + 0)/2
    }

    #[test]
    fn subset_evaluation() {
        let truth = oracle(100);
        let sk = Skewed {
            truth: truth.clone(),
            extra: 30,
        };
        let evens: Vec<u64> = (0..100).filter(|k| k % 2 == 0).collect();
        let rep = evaluate_subset(&sk, &truth, 25, &evens);
        assert_eq!(rep.outliers, 50);
        assert_eq!(rep.keys, 50);
    }

    #[test]
    fn distribution_is_sorted_descending() {
        let truth = oracle(10);
        let sk = Skewed {
            truth: truth.clone(),
            extra: 7,
        };
        let d = error_distribution(&sk, &truth);
        assert_eq!(d.len(), 10);
        assert!(d.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(d[0], 7);
        assert_eq!(*d.last().unwrap(), 0);
    }

    #[test]
    fn sensed_vs_actual_buckets() {
        let truth = oracle(100);
        let sk = Skewed {
            truth: truth.clone(),
            extra: 3,
        };
        let rows = sensed_vs_actual(&sk, &truth, 10);
        // two buckets: actual 0 (odd keys) and actual 3 (even keys)
        assert_eq!(rows.len(), 2);
        let zero = rows.iter().find(|r| r.0 == 0).unwrap();
        let three = rows.iter().find(|r| r.0 == 3).unwrap();
        assert!((zero.1 - 3.0).abs() < 1e-12); // sensed MPE is 3 everywhere
        assert!((three.2 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_oracle_yields_zeros() {
        let truth = GroundTruth::new();
        let sk = Skewed {
            truth: truth.clone(),
            extra: 0,
        };
        let rep = evaluate(&sk, &truth, 25);
        assert_eq!(rep.keys, 0);
        assert_eq!(rep.aae, 0.0);
    }
}
