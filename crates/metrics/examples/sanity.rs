use rsk_api::{MemoryFootprint, StreamSummary};
use rsk_core::ReliableSketch;
use rsk_metrics::evaluate;
use rsk_stream::{Dataset, GroundTruth};

fn main() {
    // 1M items ≈ 10% of paper scale; memory scaled the same way: 100KB ↔ 1MB
    let stream = Dataset::IpTrace.generate(1_000_000, 1);
    let truth = GroundTruth::from_items(&stream);
    println!(
        "items={} distinct={} max_f={}",
        truth.total(),
        truth.distinct(),
        truth.max_freq()
    );
    for mem_kb in [25usize, 50, 100, 200, 400] {
        let mut sk: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(mem_kb * 1024)
            .error_tolerance(25)
            .seed(7)
            .build();
        for it in &stream {
            sk.insert(&it.key, it.value);
        }
        let rep = evaluate(&sk, &truth, 25);
        println!("Ours  mem={}KB outliers={} aae={:.2} are={:.4} maxerr={} failures={} mem_used={} depth={} filter_sat={:.2}",
            mem_kb, rep.outliers, rep.aae, rep.are, rep.max_abs_error,
            sk.insertion_failures(), sk.memory_bytes(), sk.geometry().depth(), -1.0);
    }
    for mem_kb in [100usize, 400] {
        let mut cm = rsk_baselines::CmSketch::<u64>::fast(mem_kb * 1024, 7);
        for it in &stream {
            cm.insert(&it.key, it.value);
        }
        let rep = evaluate(&cm, &truth, 25);
        println!(
            "CMfast mem={}KB outliers={} aae={:.2}",
            mem_kb, rep.outliers, rep.aae
        );
    }
}
