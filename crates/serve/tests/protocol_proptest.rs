//! Property tests for the wire protocol: arbitrary frames round-trip
//! bit-for-bit, and arbitrary corruption is rejected rather than
//! misparsed.
//!
//! Deterministic, table-driven coverage of each frame kind lives next
//! to the codec in `src/protocol.rs`; this file sweeps the spaces those
//! tables cannot enumerate — random field values, random truncation
//! points, random junk payloads.

use proptest::prelude::*;
use rsk_api::KeySet;
use rsk_serve::protocol::{
    ProtocolError, Request, Response, SnapshotKind, StatsReply, MAX_BATCH, VERSION,
};
use rsk_serve::ErrorCode;

fn arb_keyset() -> impl Strategy<Value = KeySet> {
    let explicit = proptest::collection::vec(proptest::prelude::any::<u64>(), 0..64)
        .prop_map(KeySet::explicit);
    let range = (
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(a, b)| KeySet::range(a.min(b), a.max(b)));
    let mask = (
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(pattern, mask)| KeySet::mask(pattern, mask));
    prop_oneof![explicit, range, mask]
}

fn arb_request() -> impl Strategy<Value = Request> {
    let ingest = (
        proptest::prelude::any::<u32>(),
        proptest::collection::vec((proptest::prelude::any::<u64>(), 0u64..1 << 40), 0..64),
    )
        .prop_map(|(tenant, items)| Request::Ingest { tenant, items });
    let query = (
        proptest::prelude::any::<u32>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(tenant, key)| Request::Query { tenant, key });
    let certified = (
        proptest::prelude::any::<u32>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(tenant, key)| Request::QueryCertified { tenant, key });
    let seal = proptest::prelude::any::<u32>().prop_map(|tenant| Request::Seal { tenant });
    let merge = (
        proptest::prelude::any::<u32>(),
        proptest::prelude::any::<u32>(),
    )
        .prop_map(|(dst, src)| Request::Merge { dst, src });
    let snapshot =
        (proptest::prelude::any::<u32>(), 0u8..3).prop_map(|(tenant, raw)| Request::Snapshot {
            tenant,
            kind: match raw {
                0 => SnapshotKind::Full,
                1 => SnapshotKind::Delta,
                _ => SnapshotKind::Slim,
            },
        });
    let push_delta = (
        proptest::prelude::any::<u32>(),
        proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256),
    )
        .prop_map(|(tenant, payload)| Request::PushDelta { tenant, payload });
    let slim_query = (
        proptest::prelude::any::<u32>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(tenant, key)| Request::SlimQuery { tenant, key });
    let top_k = (
        proptest::prelude::any::<u32>(),
        proptest::prelude::any::<u32>(),
    )
        .prop_map(|(tenant, k)| Request::TopK { tenant, k });
    let subpop = (proptest::prelude::any::<u32>(), arb_keyset())
        .prop_map(|(tenant, set)| Request::Subpop { tenant, set });
    prop_oneof![
        ingest,
        query,
        certified,
        seal,
        merge,
        snapshot,
        push_delta,
        slim_query,
        top_k,
        subpop,
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    let ack = proptest::prelude::any::<u32>().prop_map(|accepted| Response::IngestAck { accepted });
    let value = proptest::prelude::any::<u64>().prop_map(|value| Response::Value { value });
    let certified = (
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(
            |(value, max_possible_error, slack, epoch)| Response::Certified {
                value,
                max_possible_error,
                slack,
                epoch,
            },
        );
    let sealed = proptest::prelude::any::<u64>().prop_map(|epoch| Response::Sealed { epoch });
    let stats = (
        (
            proptest::prelude::any::<u32>(),
            proptest::prelude::any::<u32>(),
        ),
        (
            proptest::prelude::any::<u64>(),
            proptest::prelude::any::<u64>(),
            proptest::prelude::any::<u64>(),
        ),
        (
            proptest::prelude::any::<u64>(),
            proptest::prelude::any::<u64>(),
            proptest::prelude::any::<u64>(),
            proptest::prelude::any::<u64>(),
        ),
    )
        .prop_map(
            |((tenants, connections), (items_ingested, queries, seals), (merges, rb, rc, rep))| {
                Response::Stats(StatsReply {
                    tenants,
                    connections,
                    items_ingested,
                    queries,
                    seals,
                    merges,
                    rejected_batches: rb,
                    rejected_connections: rc,
                    replications: rep,
                })
            },
        );
    let error = (0u8..7, proptest::collection::vec(32u8..127, 0..64)).prop_map(|(raw, msg)| {
        let code = match raw {
            0 | 1 => ErrorCode::Malformed,
            2 => ErrorCode::BatchTooLarge,
            3 => ErrorCode::TooManyConnections,
            4 => ErrorCode::MergeRefused,
            5 => ErrorCode::BadTenant,
            _ => ErrorCode::ReplicateRefused,
        };
        Response::Error {
            code,
            message: String::from_utf8(msg).expect("printable ASCII"),
        }
    });
    let snapshot_resp = proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256)
        .prop_map(|payload| Response::Snapshot { payload });
    let top_k = (
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::collection::vec(
            (
                proptest::prelude::any::<u64>(),
                proptest::prelude::any::<u64>(),
                proptest::prelude::any::<u64>(),
            ),
            0..48,
        ),
    )
        .prop_map(|(epoch, slack, floor, entries)| Response::TopK {
            epoch,
            slack,
            floor,
            entries,
        });
    let subpop = (
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
        proptest::prelude::any::<u64>(),
    )
        .prop_map(|(estimate, lo, hi, slack, epoch)| Response::Subpop {
            estimate,
            lo,
            hi,
            slack,
            epoch,
        });
    prop_oneof![
        ack,
        value,
        certified,
        sealed,
        Just(Response::Merged),
        stats,
        snapshot_resp,
        Just(Response::Replicated),
        top_k,
        subpop,
        Just(Response::ShuttingDown),
        error,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every representable request survives encode → decode unchanged.
    #[test]
    fn prop_request_round_trips(req in arb_request()) {
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Every representable response survives encode → decode unchanged.
    #[test]
    fn prop_response_round_trips(resp in arb_response()) {
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Truncating a valid frame at any point yields a typed error,
    /// never a bogus parse or a panic.
    #[test]
    fn prop_truncation_never_misparses(req in arb_request(), frac in 0.0f64..1.0) {
        let full = req.encode();
        let cut = ((full.len() as f64) * frac) as usize;
        prop_assume!(cut < full.len());
        prop_assert!(Request::decode(&full[..cut]).is_err());
    }

    /// Appending junk to a valid frame is always rejected as trailing
    /// bytes (the codec must not silently ignore suffixes).
    #[test]
    fn prop_suffixed_frames_rejected(req in arb_request(), junk in proptest::collection::vec(proptest::prelude::any::<u8>(), 1..32)) {
        let mut bytes = req.encode();
        bytes.extend_from_slice(&junk);
        prop_assert!(Request::decode(&bytes).is_err());
    }

    /// Arbitrary byte soup either decodes to something that re-encodes
    /// to the exact same bytes (a genuinely valid frame) or fails with
    /// a typed error — never panics, never aliases.
    #[test]
    fn prop_junk_decode_is_total(bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..256)) {
        match Request::decode(&bytes) {
            Ok(req) => prop_assert_eq!(req.encode(), bytes),
            Err(
                ProtocolError::Truncated
                | ProtocolError::TrailingBytes
                | ProtocolError::BadVersion(_)
                | ProtocolError::UnknownOpcode(_)
                | ProtocolError::CountTooLarge(_)
                | ProtocolError::BadUtf8
                | ProtocolError::Oversized(_)
                | ProtocolError::NonCanonical(_),
            ) => {}
        }
        if let Ok(resp) = Response::decode(&bytes) {
            prop_assert_eq!(resp.encode(), bytes);
        }
    }

    /// An ingest frame whose declared count disagrees with its byte
    /// count is rejected whichever way it lies.
    #[test]
    fn prop_ingest_count_lies_rejected(
        tenant in proptest::prelude::any::<u32>(),
        real in 0u32..16,
        claimed in 0u32..(MAX_BATCH as u32),
    ) {
        prop_assume!(real != claimed);
        let mut bytes = vec![VERSION, 0x01];
        bytes.extend_from_slice(&tenant.to_le_bytes());
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, real as usize * 16));
        prop_assert!(Request::decode(&bytes).is_err());
    }

    /// A subpop frame with an explicit key set whose declared count
    /// disagrees with the bytes that follow is rejected whichever way it
    /// lies — including counts past `MAX_BATCH`, which bounce before
    /// allocation.
    #[test]
    fn prop_subpop_count_lies_rejected(
        tenant in proptest::prelude::any::<u32>(),
        real in 0u32..16,
        claimed in proptest::prelude::any::<u32>(),
    ) {
        prop_assume!(real != claimed);
        let mut bytes = vec![VERSION, 0x0C];
        bytes.extend_from_slice(&tenant.to_le_bytes());
        bytes.push(0); // explicit-set tag
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, real as usize * 8));
        prop_assert!(Request::decode(&bytes).is_err());
    }

    /// An explicit key list that is not sorted strictly increasing is
    /// rejected as non-canonical: decode must never accept bytes it
    /// would re-encode differently.
    #[test]
    fn prop_subpop_non_canonical_keys_rejected(
        tenant in proptest::prelude::any::<u32>(),
        keys in proptest::collection::vec(proptest::prelude::any::<u64>(), 2..32),
    ) {
        let mut keys = keys;
        keys.sort_unstable();
        keys.reverse();
        prop_assume!(keys.windows(2).any(|w| w[0] >= w[1]));
        let mut bytes = vec![VERSION, 0x0C];
        bytes.extend_from_slice(&tenant.to_le_bytes());
        bytes.push(0); // explicit-set tag
        bytes.extend_from_slice(&(keys.len() as u32).to_le_bytes());
        for k in &keys {
            bytes.extend_from_slice(&k.to_le_bytes());
        }
        prop_assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::NonCanonical("explicit key set must be sorted strictly increasing")
        );
    }

    /// A top-K reply whose declared entry count disagrees with the
    /// bytes that follow is rejected whichever way it lies — including
    /// counts past `MAX_BATCH`, which must bounce before allocation.
    #[test]
    fn prop_topk_count_lies_rejected(
        header in proptest::collection::vec(proptest::prelude::any::<u64>(), 3),
        real in 0u32..16,
        claimed in proptest::prelude::any::<u32>(),
    ) {
        prop_assume!(real != claimed);
        let mut bytes = vec![VERSION, 0x8A];
        for word in &header {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        bytes.extend_from_slice(&claimed.to_le_bytes());
        bytes.extend(std::iter::repeat_n(0u8, real as usize * 24));
        prop_assert!(Response::decode(&bytes).is_err());
    }
}
