//! `rsk-load` — drive a running `rsk-serve` with simulated client flows.
//!
//! ```sh
//! rsk-load --addr 127.0.0.1:4901 --quick --shutdown
//! ```
//!
//! Pushes `tenants × connections × items` Zipf-skewed updates through
//! pipelined ingest connections, then validates certified queries,
//! certified top-K answers, and certified subpopulation-weight
//! aggregates against exact ground truth. With `--replicate`, additionally ships
//! every tenant to a second server (full snapshot, then delta cuts
//! across a seal) and holds the replica to the same certified contract.
//! Exits non-zero if any certified interval misses the truth, the
//! server undercounts, or a replica probe misses. Flags:
//!
//! ```text
//! --addr A        server address          (default 127.0.0.1:4901)
//! --quick         CI shape: 4×4×65536 = 1,048,576 updates
//! --tenants N     distinct tenants        (default 8)
//! --connections N connections per tenant  (default 8)
//! --items N       updates per connection  (default 262144)
//! --batch N       items per ingest frame  (default 2048)
//! --window N      credit window (batches) (default 8)
//! --skew S        Zipf skew               (default 1.1)
//! --universe N    keys per tenant         (default 100000)
//! --seed N        master seed             (default 42)
//! --probes N      certified probes/tenant (default 128)
//! --replicate A   replicate tenants to a second server and probe it
//! --shutdown      send Shutdown when done (to the replica too)
//! ```

use std::process::exit;

use rsk_serve::{Client, LoadConfig};

fn usage(err: &str) -> ! {
    eprintln!("rsk-load: {err}");
    eprintln!("usage: rsk-load [--addr A] [--quick] [--tenants N] [--connections N] [--items N] [--batch N] [--window N] [--skew S] [--universe N] [--seed N] [--probes N] [--replicate A] [--shutdown]");
    exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| usage(&format!("{flag} needs a value")));
    raw.parse()
        .unwrap_or_else(|_| usage(&format!("bad value {raw:?} for {flag}")))
}

fn main() {
    let mut addr = "127.0.0.1:4901".to_string();
    let mut replicate: Option<String> = None;
    let mut quick = false;
    let mut shutdown = false;
    let mut overrides: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, args.next()),
            "--replicate" => replicate = Some(parse(&arg, args.next())),
            "--quick" => quick = true,
            "--shutdown" => shutdown = true,
            "--tenants" | "--connections" | "--items" | "--batch" | "--window" | "--skew"
            | "--universe" | "--seed" | "--probes" => {
                let value = args
                    .next()
                    .unwrap_or_else(|| usage(&format!("{arg} needs a value")));
                overrides.push((arg, value));
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }

    let mut cfg = if quick {
        LoadConfig::quick(addr.clone())
    } else {
        LoadConfig {
            addr: addr.clone(),
            ..LoadConfig::default()
        }
    };
    cfg.replicate = replicate.clone();
    for (flag, value) in overrides {
        match flag.as_str() {
            "--tenants" => cfg.tenants = parse(&flag, Some(value)),
            "--connections" => cfg.connections = parse(&flag, Some(value)),
            "--items" => cfg.items_per_connection = parse(&flag, Some(value)),
            "--batch" => cfg.batch = parse(&flag, Some(value)),
            "--window" => cfg.window = parse(&flag, Some(value)),
            "--skew" => cfg.skew = parse(&flag, Some(value)),
            "--universe" => cfg.universe = parse(&flag, Some(value)),
            "--seed" => cfg.seed = parse(&flag, Some(value)),
            "--probes" => cfg.probes = parse(&flag, Some(value)),
            _ => unreachable!("vetted above"),
        }
    }

    println!(
        "rsk-load: {} tenants x {} connections x {} items = {} updates -> {}",
        cfg.tenants,
        cfg.connections,
        cfg.items_per_connection,
        cfg.total_updates(),
        cfg.addr
    );
    let report = match rsk_serve::run_load(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rsk-load: {e}");
            exit(1);
        }
    };
    println!(
        "ingest:   {} updates in {} batches over {:.2}s ({:.2} M updates/s)",
        report.total_updates,
        report.batches,
        report.elapsed.as_secs_f64(),
        report.mupdates_per_sec
    );
    println!(
        "latency:  certified p50 {} us, p99 {} us over {} probes",
        report.p50_us, report.p99_us, report.probes
    );
    println!(
        "pressure: {} client stall events, {} server-refused batches",
        report.stalls, report.server_rejected_batches
    );
    println!(
        "verify:   {}/{} certified intervals contained the exact truth; server counted {} items",
        report.probes_contained, report.probes, report.server_items
    );
    println!(
        "top-k:    {}/{} entries contained the exact truth; {} recall misses above the floor",
        report.topk_contained, report.topk_probes, report.topk_recall_misses
    );
    println!(
        "subpop:   {}/{} subset intervals contained the exact subset truth",
        report.subpop_contained, report.subpop_probes
    );
    if replicate.is_some() {
        println!(
            "replica:  {}/{} probes contained the truth; {} B full vs {} B delta on the wire",
            report.replica_contained,
            report.replica_probes,
            report.replicate_full_bytes,
            report.replicate_delta_bytes
        );
    }

    let mut failed = false;
    if report.probes_contained != report.probes {
        eprintln!("rsk-load: FAIL — certified interval missed the ground truth");
        failed = true;
    }
    if report.server_items < report.total_updates {
        eprintln!("rsk-load: FAIL — server counted fewer items than were acknowledged");
        failed = true;
    }
    if report.topk_probes == 0 || report.topk_contained != report.topk_probes {
        eprintln!("rsk-load: FAIL — a top-K entry's certified interval missed the truth");
        failed = true;
    }
    if report.topk_recall_misses != 0 {
        eprintln!("rsk-load: FAIL — a true heavy key above the certified floor went unreported");
        failed = true;
    }
    if report.subpop_probes == 0 || report.subpop_contained != report.subpop_probes {
        eprintln!("rsk-load: FAIL — a subpopulation interval missed the exact subset truth");
        failed = true;
    }
    if replicate.is_some() {
        if report.replica_probes == 0 || report.replica_contained != report.replica_probes {
            eprintln!("rsk-load: FAIL — a replica probe missed the ground truth");
            failed = true;
        }
        if report.replicate_delta_bytes >= report.replicate_full_bytes {
            eprintln!("rsk-load: FAIL — delta ships did not undercut full snapshots");
            failed = true;
        }
    }
    if shutdown {
        let mut targets = vec![addr.clone()];
        targets.extend(replicate.clone());
        for target in targets {
            match Client::connect(&target as &str).and_then(|mut c| {
                c.shutdown()
                    .map_err(|e| std::io::Error::other(e.to_string()))
            }) {
                Ok(()) => println!("rsk-load: server {target} shutdown requested"),
                Err(e) => {
                    eprintln!("rsk-load: shutdown of {target} failed: {e}");
                    failed = true;
                }
            }
        }
    }
    exit(i32::from(failed))
}
