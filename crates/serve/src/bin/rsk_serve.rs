//! `rsk-serve` — run the multi-tenant sketch server.
//!
//! ```sh
//! rsk-serve --addr 127.0.0.1:4901 --memory-kb 256 --lambda 25
//! ```
//!
//! The server runs until a wire-level `Shutdown` frame arrives (e.g.
//! `rsk-load --shutdown`). All flags:
//!
//! ```text
//! --addr A            bind address        (default 127.0.0.1:4901)
//! --threads N         accept threads      (default: one per core)
//! --max-connections N connection ceiling  (default 256)
//! --max-batch N       ingest batch ceiling(default 16384)
//! --stripes N         tenant-map stripes  (default 16)
//! --memory-kb N       KB per tenant generation (default 256)
//! --lambda N          error tolerance Λ   (default 25)
//! --seed N            sketch hash seed    (default 0x5eed5eed)
//! ```

use std::process::exit;

use rsk_serve::{ServeConfig, ServerHandle, SketchSpec};

fn usage(err: &str) -> ! {
    eprintln!("rsk-serve: {err}");
    eprintln!("usage: rsk-serve [--addr A] [--threads N] [--max-connections N] [--max-batch N] [--stripes N] [--memory-kb N] [--lambda N] [--seed N]");
    exit(2)
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let raw = value.unwrap_or_else(|| usage(&format!("{flag} needs a value")));
    raw.parse()
        .unwrap_or_else(|_| usage(&format!("bad value {raw:?} for {flag}")))
}

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:4901".into(),
        ..ServeConfig::default()
    };
    let mut spec = SketchSpec::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse(&arg, args.next()),
            "--threads" => config.accept_threads = parse(&arg, args.next()),
            "--max-connections" => config.max_connections = parse(&arg, args.next()),
            "--max-batch" => config.max_batch = parse(&arg, args.next()),
            "--stripes" => config.stripes = parse(&arg, args.next()),
            "--memory-kb" => spec.memory_bytes = parse::<usize>(&arg, args.next()) * 1024,
            "--lambda" => spec.error_tolerance = parse(&arg, args.next()),
            "--seed" => spec.seed = parse(&arg, args.next()),
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    config.spec = spec;

    let server = match ServerHandle::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rsk-serve: failed to bind: {e}");
            exit(1);
        }
    };
    println!("rsk-serve listening on {}", server.local_addr());
    let spec = server.spec();
    println!(
        "tenant spec: {} KB / generation, lambda {}, seed {:#x}",
        spec.memory_bytes / 1024,
        spec.error_tolerance,
        spec.seed,
    );
    server.join();
    println!("rsk-serve: shutdown complete");
}
