//! # rsk-serve — the multi-tenant ReliableSketch service
//!
//! A network front end for the workspace's sketches: a thread-per-core
//! TCP server speaking a length-prefixed binary protocol, holding one
//! [`EpochedConcurrent`](rsk_core::EpochedConcurrent) window per tenant
//! behind a striped tenant map. Certified queries travel the
//! [`ConcurrentErrorSensing`](rsk_api::ConcurrentErrorSensing) path, so
//! every answer carries its maximum possible error plus the window's
//! documented contention slack — the server's accuracy contract is the
//! sketch's, end to end.
//!
//! The crate has no async runtime and no external dependencies beyond
//! the workspace: `std::net` blocking sockets, plain threads, and the
//! lock-free sketches doing the actual concurrency work.
//!
//! | Layer | Module | Job |
//! |---|---|---|
//! | wire | [`protocol`] | frames, opcodes, strict decode |
//! | state | [`tenant`] | striped tenant map, epoch windows |
//! | server | [`server`] | accept loops, dispatch, backpressure |
//! | client | [`client`] | blocking request/response surface |
//! | load | [`load`] | pipelined generator + certified validation |
//!
//! The wire format is specified in `docs/PROTOCOL.md`.
//!
//! # Examples
//!
//! ```
//! use rsk_serve::{Client, ServeConfig, ServerHandle};
//!
//! // An ephemeral server on loopback.
//! let server = ServerHandle::start(ServeConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.ingest(7, &[(0xfeed, 100), (0xbeef, 1)]).unwrap();
//!
//! let answer = client.query_certified(7, 0xfeed).unwrap();
//! assert!(answer.contains(100));
//!
//! // Epoch rotation: the active generation freezes, queries span both.
//! client.seal(7).unwrap();
//! client.ingest(7, &[(0xfeed, 10)]).unwrap();
//! assert!(client.query_certified(7, 0xfeed).unwrap().contains(110));
//!
//! drop(client);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod load;
pub mod protocol;
pub mod server;
pub mod tenant;

pub use client::{Client, ClientError, SubpopAnswer, TopKAnswer};
pub use load::{run as run_load, LoadConfig, LoadReport};
pub use protocol::{ErrorCode, ProtocolError, Request, Response, SnapshotKind, StatsReply};
pub use server::{ServeConfig, ServerHandle, ServerStats};
pub use tenant::{CertifiedAnswer, SketchSpec, Tenant, TenantMap, DEFAULT_TOPK_CAPACITY};
