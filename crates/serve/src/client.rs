//! Blocking client for the `rsk-serve` wire protocol.
//!
//! One request / one response per call, over a buffered `TcpStream`.
//! The pipelined high-throughput path lives in [`crate::load`]; this
//! type is the simple correctness-first surface the end-to-end tests
//! and the control operations (seal, merge, stats, shutdown) use.
//!
//! # Examples
//!
//! ```
//! use rsk_serve::{Client, ServeConfig, ServerHandle};
//!
//! let server = ServerHandle::start(ServeConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//!
//! client.ingest(1, &[(42, 10), (42, 5)]).unwrap();
//! let answer = client.query_certified(1, 42).unwrap();
//! assert!(answer.contains(15));
//!
//! drop(client);
//! server.shutdown();
//! ```

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use rsk_api::{CertifiedWeight, KeySet};

use crate::protocol::{
    read_frame, send_request, ErrorCode, ProtocolError, Request, Response, SnapshotKind, StatsReply,
};
pub use crate::tenant::CertifiedAnswer;

/// A decoded [`Response::TopK`]: the tenant's certified heavy hitters
/// plus the metadata needed to interpret them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopKAnswer {
    /// Epoch index the answer was computed at.
    pub epoch: u64,
    /// Contention slack: each entry's interval and the floor widen by
    /// this much under racing same-key writers (see
    /// [`CertifiedAnswer::slack`]).
    pub slack: u64,
    /// Guaranteed ceiling on every unreported key's window count
    /// (before slack). `u64::MAX` means the window cannot certify an
    /// answer (e.g. freshly restored from a replica payload).
    pub floor: u64,
    /// `(key, count, error)` triples, heaviest first: truth ∈
    /// `[count − error − slack, count + slack]`.
    pub entries: Vec<(u64, u64, u64)>,
}

impl TopKAnswer {
    /// Does entry `i`'s certified interval (widened by `slack`) contain
    /// `truth`?
    pub fn entry_contains(&self, i: usize, truth: u64) -> bool {
        let (_, count, error) = self.entries[i];
        let lower = count.saturating_sub(error + self.slack);
        lower <= truth && truth <= count.saturating_add(self.slack)
    }
}

/// A decoded [`Response::Subpop`]: a certified subpopulation weight
/// plus the epoch it was computed at. The weight's interval contract is
/// [`CertifiedWeight`]'s: `lo ≤ truth ≤ hi + slack`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubpopAnswer {
    /// The certified aggregate: estimate, bounds, and contention slack.
    pub weight: CertifiedWeight,
    /// Epoch index the answer was computed at.
    pub epoch: u64,
}

impl SubpopAnswer {
    /// Does the certified interval contain `truth`?
    pub fn contains(&self, truth: u64) -> bool {
        self.weight.contains(truth)
    }
}

/// Anything a request/response exchange can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a well-formed frame of the wrong kind.
    Unexpected(Response),
    /// The connection closed before a response arrived.
    Disconnected,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Server { code, message } => write!(f, "server error ({code:?}): {message}"),
            Self::Unexpected(resp) => write!(f, "unexpected response frame: {resp:?}"),
            Self::Disconnected => write!(f, "connection closed mid-exchange"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// Blocking request/response client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        send_request(&mut self.writer, req)?;
        io::Write::flush(&mut self.writer)?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Disconnected)?;
        let resp = Response::decode(&payload)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Fold `items` into `tenant`; returns the accepted count.
    pub fn ingest(&mut self, tenant: u32, items: &[(u64, u64)]) -> Result<u32, ClientError> {
        match self.call(&Request::Ingest {
            tenant,
            items: items.to_vec(),
        })? {
            Response::IngestAck { accepted } => Ok(accepted),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Point estimate for `key` in `tenant`.
    pub fn query(&mut self, tenant: u32, key: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Query { tenant, key })? {
            Response::Value { value } => Ok(value),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Certified estimate for `key` in `tenant`.
    pub fn query_certified(
        &mut self,
        tenant: u32,
        key: u64,
    ) -> Result<CertifiedAnswer, ClientError> {
        match self.call(&Request::QueryCertified { tenant, key })? {
            Response::Certified {
                value,
                max_possible_error,
                slack,
                epoch,
            } => Ok(CertifiedAnswer {
                value,
                max_possible_error,
                slack,
                epoch,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Rotate `tenant`'s epoch window; returns the new epoch index.
    pub fn seal(&mut self, tenant: u32) -> Result<u64, ClientError> {
        match self.call(&Request::Seal { tenant })? {
            Response::Sealed { epoch } => Ok(epoch),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Fold tenant `src`'s window into tenant `dst`.
    pub fn merge(&mut self, dst: u32, src: u32) -> Result<(), ClientError> {
        match self.call(&Request::Merge { dst, src })? {
            Response::Merged => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Capture a replication payload of `tenant`'s window.
    ///
    /// The returned bytes are self-describing: feed them to
    /// [`Client::push_delta`] on another server (full snapshots and
    /// deltas) or decode them locally with `SlimSummary::from_bytes`
    /// (slim digests).
    pub fn snapshot(&mut self, tenant: u32, kind: SnapshotKind) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::Snapshot { tenant, kind })? {
            Response::Snapshot { payload } => Ok(payload),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Apply a shipped replication payload (full snapshot or delta) to
    /// `tenant`'s window on this server.
    pub fn push_delta(&mut self, tenant: u32, payload: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::PushDelta {
            tenant,
            payload: payload.to_vec(),
        })? {
            Response::Replicated => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Certified estimate for `key` in `tenant`, answered through a
    /// freshly distilled slim digest of the window instead of the full
    /// sketch — the verification path for slim replication.
    pub fn query_slim(&mut self, tenant: u32, key: u64) -> Result<CertifiedAnswer, ClientError> {
        match self.call(&Request::SlimQuery { tenant, key })? {
            Response::Certified {
                value,
                max_possible_error,
                slack,
                epoch,
            } => Ok(CertifiedAnswer {
                value,
                max_possible_error,
                slack,
                epoch,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// The `k` heaviest keys of `tenant`'s visible window, each with its
    /// certified error, plus the floor every unreported key sits under.
    pub fn top_k(&mut self, tenant: u32, k: u32) -> Result<TopKAnswer, ClientError> {
        match self.call(&Request::TopK { tenant, k })? {
            Response::TopK {
                epoch,
                slack,
                floor,
                entries,
            } => Ok(TopKAnswer {
                epoch,
                slack,
                floor,
                entries,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Certified subpopulation weight of `set` in `tenant`'s visible
    /// window: the subset's true total value lies within the returned
    /// interval (`lo ≤ truth ≤ hi + slack`). Explicit sets are capped
    /// at the wire batch ceiling; range and mask predicates travel as
    /// two words regardless of how many keys they select.
    pub fn subpop(&mut self, tenant: u32, set: &KeySet) -> Result<SubpopAnswer, ClientError> {
        match self.call(&Request::Subpop {
            tenant,
            set: set.clone(),
        })? {
            Response::Subpop {
                estimate,
                lo,
                hi,
                slack,
                epoch,
            } => Ok(SubpopAnswer {
                weight: CertifiedWeight {
                    estimate,
                    lo,
                    hi,
                    slack,
                },
                epoch,
            }),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Server-wide counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Unexpected(other)),
        }
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(ClientError::Unexpected(other)),
        }
    }
}
