//! The length-prefixed binary wire protocol.
//!
//! Every frame on the wire is
//!
//! ```text
//! [len: u32 LE] [version: u8] [opcode: u8] [body: len − 2 bytes]
//! ```
//!
//! where `len` counts the payload (version byte onward). Integers are
//! little-endian throughout; there is no padding and no alignment. The
//! full frame catalogue, body layouts, and error-code table live in
//! `docs/PROTOCOL.md`.
//!
//! Decoding is strict: unknown opcodes, version mismatches, truncated
//! bodies, trailing bytes, and oversized counts are all rejected with a
//! typed [`ProtocolError`] rather than being guessed at. A server never
//! tears down a connection over a malformed *payload* (it answers
//! [`Response::Error`] and keeps reading); only an unparseable *frame
//! header* or an oversized length kills the connection, because after
//! that the byte stream has no trustworthy resynchronisation point.
//!
//! # Examples
//!
//! ```
//! use rsk_serve::protocol::{Request, Response};
//!
//! let req = Request::QueryCertified { tenant: 7, key: 0xfeed };
//! let bytes = req.encode();
//! assert_eq!(Request::decode(&bytes).unwrap(), req);
//!
//! let resp = Response::Certified { value: 41, max_possible_error: 3, slack: 0, epoch: 2 };
//! assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
//! ```

use rsk_api::KeySet;
use std::io::{self, Read, Write};

/// Protocol version spoken by this crate. A frame carrying any other
/// version is rejected with [`ProtocolError::BadVersion`].
pub const VERSION: u8 = 1;

/// Hard ceiling on the payload length a peer may declare, sized for the
/// largest legitimate frame: a full replication snapshot of a tenant
/// window ([`Request::PushDelta`] / [`Response::Snapshot`]); max-size
/// ingest batches fit with two orders of magnitude to spare. Anything
/// larger is treated as a framing attack / corruption and the
/// connection dies. A snapshot that genuinely exceeds this is refused
/// at the application layer with [`ErrorCode::ReplicateRefused`]
/// instead of poisoning the stream.
pub const MAX_FRAME_LEN: u32 = 1 << 23;

/// Most items a single `Ingest` frame may carry. Larger batches are
/// refused with [`ErrorCode::BatchTooLarge`] — this is the server-side
/// half of the backpressure contract (the client-side half is the
/// bounded credit window in `rsk-load`).
pub const MAX_BATCH: usize = 1 << 14;

/// Typed decode failure. `Display` explains each case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Payload ended before the advertised structure was complete.
    Truncated,
    /// Payload continued past the advertised structure.
    TrailingBytes,
    /// First payload byte was not [`VERSION`].
    BadVersion(u8),
    /// Opcode byte names no known frame.
    UnknownOpcode(u8),
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// A count field exceeds its documented ceiling.
    CountTooLarge(u32),
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A structured field is well-formed bytes but violates the frame's
    /// canonical-form rules (e.g. an unsorted explicit key set, an
    /// inverted range, or mask-pattern bits outside the mask). Canonical
    /// form is required so that decode∘encode is the identity — a frame
    /// that decodes must re-encode to the exact same bytes.
    NonCanonical(&'static str),
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Truncated => write!(f, "frame body truncated"),
            Self::TrailingBytes => write!(f, "frame body has trailing bytes"),
            Self::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            Self::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            Self::Oversized(n) => write!(f, "declared frame length {n} exceeds {MAX_FRAME_LEN}"),
            Self::CountTooLarge(n) => write!(f, "declared count {n} exceeds ceiling"),
            Self::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            Self::NonCanonical(what) => write!(f, "field violates canonical form: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Machine-readable error class carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Payload failed to decode; the offending frame is dropped.
    Malformed = 1,
    /// `Ingest` batch exceeded [`MAX_BATCH`] items (backpressure).
    BatchTooLarge = 2,
    /// Server is at its connection ceiling; the connection closes after
    /// this frame.
    TooManyConnections = 3,
    /// A `Merge` was refused by the sketch layer (shape/seed mismatch).
    MergeRefused = 4,
    /// The request named a tenant the server refuses to materialise.
    BadTenant = 5,
    /// A replication operation was refused: the payload was corrupt,
    /// truncated, or incompatible with the tenant's window, or the
    /// requested snapshot does not fit in [`MAX_FRAME_LEN`].
    ReplicateRefused = 6,
}

impl ErrorCode {
    fn from_u8(code: u8) -> Option<Self> {
        Some(match code {
            1 => Self::Malformed,
            2 => Self::BatchTooLarge,
            3 => Self::TooManyConnections,
            4 => Self::MergeRefused,
            5 => Self::BadTenant,
            6 => Self::ReplicateRefused,
            _ => return None,
        })
    }
}

/// Which replication payload a [`Request::Snapshot`] asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SnapshotKind {
    /// Complete window state ([`rsk_api::Replicate::snapshot_bytes`]).
    Full = 0,
    /// Buckets dirtied since the last cut, falling back to a full
    /// snapshot when no cut exists
    /// ([`rsk_api::Replicate::delta_bytes`]).
    Delta = 1,
    /// Query-only slim digest ([`rsk_api::Replicate::slim_bytes`]).
    Slim = 2,
}

impl SnapshotKind {
    fn from_u8(kind: u8) -> Option<Self> {
        Some(match kind {
            0 => Self::Full,
            1 => Self::Delta,
            2 => Self::Slim,
            _ => return None,
        })
    }
}

/// Client → server frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fold a batch of `(key, value)` updates into `tenant`'s active
    /// generation. At most [`MAX_BATCH`] items.
    Ingest {
        /// Target tenant id (materialised on first touch).
        tenant: u32,
        /// `(key, value)` updates, applied in order.
        items: Vec<(u64, u64)>,
    },
    /// Point estimate only (no certification) for `key` in `tenant`.
    Query {
        /// Target tenant id.
        tenant: u32,
        /// Flow key to estimate.
        key: u64,
    },
    /// Certified estimate: value, maximum possible error, and the
    /// tenant's documented contention slack.
    QueryCertified {
        /// Target tenant id.
        tenant: u32,
        /// Flow key to certify.
        key: u64,
    },
    /// Rotate `tenant`'s epoch window: the active generation freezes
    /// (serving wait-free reads) and a fresh one starts absorbing.
    Seal {
        /// Target tenant id.
        tenant: u32,
    },
    /// Fold tenant `src`'s window into tenant `dst`'s active generation.
    Merge {
        /// Receiving tenant id.
        dst: u32,
        /// Donor tenant id (left untouched).
        src: u32,
    },
    /// Capture a replication payload of `tenant`'s window: a full
    /// snapshot, a dirty-bucket delta since the last cut, or a slim
    /// query-only digest (see [`SnapshotKind`]).
    Snapshot {
        /// Tenant whose window to capture.
        tenant: u32,
        /// Payload family to produce.
        kind: SnapshotKind,
    },
    /// Apply a replication payload (full snapshot or delta — payloads
    /// are self-describing) to `tenant`'s window. This is how a replica
    /// server receives shipped state.
    PushDelta {
        /// Tenant window to apply the payload to (materialised on first
        /// touch).
        tenant: u32,
        /// A payload produced by [`Request::Snapshot`] with
        /// [`SnapshotKind::Full`] or [`SnapshotKind::Delta`].
        payload: Vec<u8>,
    },
    /// Certified estimate answered through a slim digest of `tenant`'s
    /// window — the same code path a collector holding only a shipped
    /// [`SnapshotKind::Slim`] payload runs, exposed server-side for
    /// verification.
    SlimQuery {
        /// Target tenant id.
        tenant: u32,
        /// Flow key to certify.
        key: u64,
    },
    /// The `k` heaviest keys of `tenant`'s visible window, each with its
    /// certified error, plus the floor every unreported key is
    /// guaranteed to sit under (see `docs/PROTOCOL.md` § Certification).
    TopK {
        /// Target tenant id.
        tenant: u32,
        /// How many entries to report (the server caps at the tenant's
        /// top-K capacity).
        k: u32,
    },
    /// Certified subpopulation weight: the total value carried by a
    /// [`KeySet`]-selected key subset of `tenant`'s visible window, with
    /// a sound `[lo, hi + slack]` interval (see `docs/PROTOCOL.md`
    /// § Certification). Explicit sets are capped at [`MAX_BATCH`] keys
    /// and must arrive sorted strictly increasing (canonical form).
    Subpop {
        /// Target tenant id.
        tenant: u32,
        /// Predicate selecting the key subset.
        set: KeySet,
    },
    /// Server-wide counters.
    Stats,
    /// Ask the server to stop accepting and drain.
    Shutdown,
}

/// Server → client frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// `Ingest` landed; `accepted` echoes the item count.
    IngestAck {
        /// Items folded in.
        accepted: u32,
    },
    /// Point estimate for a `Query`.
    Value {
        /// The estimate.
        value: u64,
    },
    /// Certified answer: truth ∈ `[value − max_possible_error − slack, value + slack]`
    /// where `slack` is the tenant's contention bound (see
    /// `docs/PROTOCOL.md` § Certification).
    Certified {
        /// Point estimate.
        value: u64,
        /// Maximum possible overcount baked into `value`.
        max_possible_error: u64,
        /// Documented contention slack over the window's generations.
        slack: u64,
        /// Epoch index the answer was computed at.
        epoch: u64,
    },
    /// `Seal` completed; `epoch` is the new active epoch index.
    Sealed {
        /// New active epoch index.
        epoch: u64,
    },
    /// `Merge` completed.
    Merged,
    /// A replication payload captured by [`Request::Snapshot`].
    Snapshot {
        /// Self-describing replication payload (sniff with
        /// `rsk_core::replicate::payload_kind`).
        payload: Vec<u8>,
    },
    /// A [`Request::PushDelta`] payload was applied to the tenant's
    /// window.
    Replicated,
    /// Certified heavy hitters for a [`Request::TopK`]: for each entry
    /// `(key, count, error)`, truth ∈ `[count − error − slack, count + slack]`;
    /// every key *not* listed has window truth at most `floor + slack`.
    TopK {
        /// Epoch index the answer was computed at.
        epoch: u64,
        /// Documented contention slack over the window's generations.
        slack: u64,
        /// Guaranteed ceiling on every unreported key's window count
        /// (before slack).
        floor: u64,
        /// `(key, count, error)` triples, heaviest first. Empty when the
        /// tenant's window cannot certify an answer (e.g. freshly
        /// restored from a replica payload) — `floor` is then `u64::MAX`.
        entries: Vec<(u64, u64, u64)>,
    },
    /// Certified subpopulation weight for a [`Request::Subpop`]: the
    /// subset's true total weight lies in `[lo, hi + slack]`, and
    /// `lo ≤ estimate ≤ hi`. `hi == u64::MAX` marks a vacuous upper
    /// bound (non-enumerable subset on an enumeration-only window).
    Subpop {
        /// Point estimate of the subset's total weight.
        estimate: u64,
        /// Certified lower bound on the true subset weight.
        lo: u64,
        /// Certified upper bound before contention slack.
        hi: u64,
        /// Documented contention slack over the window's generations.
        slack: u64,
        /// Epoch index the answer was computed at.
        epoch: u64,
    },
    /// Server-wide counters.
    Stats(StatsReply),
    /// Acknowledges `Shutdown`; the server stops accepting.
    ShuttingDown,
    /// Request-level failure. The connection stays open unless the code
    /// says otherwise.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail (truncated to 64 KiB on the wire).
        message: String,
    },
}

/// Body of [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Tenants materialised so far.
    pub tenants: u32,
    /// Live connections at the moment of the snapshot.
    pub connections: u32,
    /// Items folded in across all tenants.
    pub items_ingested: u64,
    /// `Query` + `QueryCertified` frames answered.
    pub queries: u64,
    /// `Seal` frames processed.
    pub seals: u64,
    /// `Merge` frames processed.
    pub merges: u64,
    /// Ingest batches refused for exceeding [`MAX_BATCH`].
    pub rejected_batches: u64,
    /// Connections refused at the connection ceiling.
    pub rejected_connections: u64,
    /// Successful `Snapshot` captures plus `PushDelta` applications.
    pub replications: u64,
}

mod opcode {
    pub const INGEST: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const QUERY_CERTIFIED: u8 = 0x03;
    pub const SEAL: u8 = 0x04;
    pub const MERGE: u8 = 0x05;
    pub const STATS: u8 = 0x06;
    pub const SHUTDOWN: u8 = 0x07;
    pub const SNAPSHOT: u8 = 0x08;
    pub const PUSH_DELTA: u8 = 0x09;
    pub const SLIM_QUERY: u8 = 0x0A;
    pub const TOP_K: u8 = 0x0B;
    pub const SUBPOP: u8 = 0x0C;

    pub const INGEST_ACK: u8 = 0x81;
    pub const VALUE: u8 = 0x82;
    pub const CERTIFIED: u8 = 0x83;
    pub const SEALED: u8 = 0x84;
    pub const MERGED: u8 = 0x85;
    pub const STATS_REPLY: u8 = 0x86;
    pub const SHUTTING_DOWN: u8 = 0x87;
    pub const SNAPSHOT_REPLY: u8 = 0x88;
    pub const REPLICATED: u8 = 0x89;
    pub const TOP_K_REPLY: u8 = 0x8A;
    pub const SUBPOP_REPLY: u8 = 0x8B;
    pub const ERROR: u8 = 0xFF;

    /// Key-set shape tags inside a `SUBPOP` body.
    pub const KEYSET_EXPLICIT: u8 = 0;
    pub const KEYSET_RANGE: u8 = 1;
    pub const KEYSET_MASK: u8 = 2;
}

/// Cursor over a payload with strict bounds checking.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        let b = *self.buf.get(self.pos).ok_or(ProtocolError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let end = self.pos.checked_add(4).ok_or(ProtocolError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let end = self.pos.checked_add(8).ok_or(ProtocolError::Truncated)?;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let end = self.pos.checked_add(n).ok_or(ProtocolError::Truncated)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(ProtocolError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// A `[len: u32][bytes]` field; the declared length is bounded by
    /// [`MAX_FRAME_LEN`] and checked against the bytes actually present
    /// before any allocation happens.
    fn blob(&mut self) -> Result<Vec<u8>, ProtocolError> {
        let len = self.u32()?;
        if len > MAX_FRAME_LEN {
            return Err(ProtocolError::CountTooLarge(len));
        }
        Ok(self.bytes(len as usize)?.to_vec())
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes)
        }
    }
}

fn decode_header(payload: &[u8]) -> Result<(u8, Reader<'_>), ProtocolError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != VERSION {
        return Err(ProtocolError::BadVersion(version));
    }
    let op = r.u8()?;
    Ok((op, r))
}

impl Request {
    /// Serialise to a payload (version byte onward, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(VERSION);
        match self {
            Self::Ingest { tenant, items } => {
                out.push(opcode::INGEST);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for (k, v) in items {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Self::Query { tenant, key } => {
                out.push(opcode::QUERY);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Self::QueryCertified { tenant, key } => {
                out.push(opcode::QUERY_CERTIFIED);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Self::Seal { tenant } => {
                out.push(opcode::SEAL);
                out.extend_from_slice(&tenant.to_le_bytes());
            }
            Self::Merge { dst, src } => {
                out.push(opcode::MERGE);
                out.extend_from_slice(&dst.to_le_bytes());
                out.extend_from_slice(&src.to_le_bytes());
            }
            Self::Snapshot { tenant, kind } => {
                out.push(opcode::SNAPSHOT);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.push(*kind as u8);
            }
            Self::PushDelta { tenant, payload } => {
                out.push(opcode::PUSH_DELTA);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Self::SlimQuery { tenant, key } => {
                out.push(opcode::SLIM_QUERY);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&key.to_le_bytes());
            }
            Self::TopK { tenant, k } => {
                out.push(opcode::TOP_K);
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&k.to_le_bytes());
            }
            Self::Subpop { tenant, set } => {
                out.push(opcode::SUBPOP);
                out.extend_from_slice(&tenant.to_le_bytes());
                match set {
                    KeySet::Explicit(keys) => {
                        out.push(opcode::KEYSET_EXPLICIT);
                        out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                        for k in keys {
                            out.extend_from_slice(&k.to_le_bytes());
                        }
                    }
                    KeySet::Range { start, end } => {
                        out.push(opcode::KEYSET_RANGE);
                        out.extend_from_slice(&start.to_le_bytes());
                        out.extend_from_slice(&end.to_le_bytes());
                    }
                    KeySet::Mask { pattern, mask } => {
                        out.push(opcode::KEYSET_MASK);
                        out.extend_from_slice(&pattern.to_le_bytes());
                        out.extend_from_slice(&mask.to_le_bytes());
                    }
                }
            }
            Self::Stats => out.push(opcode::STATS),
            Self::Shutdown => out.push(opcode::SHUTDOWN),
        }
        out
    }

    /// Parse a payload. Strict: rejects version/opcode/length anomalies.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (op, mut r) = decode_header(payload)?;
        let req = match op {
            opcode::INGEST => {
                let tenant = r.u32()?;
                let count = r.u32()?;
                if count as usize > MAX_BATCH {
                    return Err(ProtocolError::CountTooLarge(count));
                }
                // Cross-check the declared count against the bytes that
                // actually arrived before allocating for it.
                let declared = (count as usize)
                    .checked_mul(16)
                    .ok_or(ProtocolError::CountTooLarge(count))?;
                if r.buf.len() - r.pos != declared {
                    return if r.buf.len() - r.pos < declared {
                        Err(ProtocolError::Truncated)
                    } else {
                        Err(ProtocolError::TrailingBytes)
                    };
                }
                let mut items = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    items.push((r.u64()?, r.u64()?));
                }
                Self::Ingest { tenant, items }
            }
            opcode::QUERY => Self::Query {
                tenant: r.u32()?,
                key: r.u64()?,
            },
            opcode::QUERY_CERTIFIED => Self::QueryCertified {
                tenant: r.u32()?,
                key: r.u64()?,
            },
            opcode::SEAL => Self::Seal { tenant: r.u32()? },
            opcode::MERGE => Self::Merge {
                dst: r.u32()?,
                src: r.u32()?,
            },
            opcode::SNAPSHOT => {
                let tenant = r.u32()?;
                let raw = r.u8()?;
                let kind = SnapshotKind::from_u8(raw).ok_or(ProtocolError::UnknownOpcode(raw))?;
                Self::Snapshot { tenant, kind }
            }
            opcode::PUSH_DELTA => Self::PushDelta {
                tenant: r.u32()?,
                payload: r.blob()?,
            },
            opcode::SLIM_QUERY => Self::SlimQuery {
                tenant: r.u32()?,
                key: r.u64()?,
            },
            opcode::TOP_K => Self::TopK {
                tenant: r.u32()?,
                k: r.u32()?,
            },
            opcode::SUBPOP => {
                let tenant = r.u32()?;
                let tag = r.u8()?;
                let set = match tag {
                    opcode::KEYSET_EXPLICIT => {
                        let count = r.u32()?;
                        if count as usize > MAX_BATCH {
                            return Err(ProtocolError::CountTooLarge(count));
                        }
                        // Cross-check the declared count against the
                        // bytes that actually arrived before allocating
                        // for it (the key list ends the frame).
                        let declared = (count as usize)
                            .checked_mul(8)
                            .ok_or(ProtocolError::CountTooLarge(count))?;
                        if r.buf.len() - r.pos != declared {
                            return if r.buf.len() - r.pos < declared {
                                Err(ProtocolError::Truncated)
                            } else {
                                Err(ProtocolError::TrailingBytes)
                            };
                        }
                        let mut keys = Vec::with_capacity(count as usize);
                        for _ in 0..count {
                            keys.push(r.u64()?);
                        }
                        if !keys.windows(2).all(|w| w[0] < w[1]) {
                            return Err(ProtocolError::NonCanonical(
                                "explicit key set must be sorted strictly increasing",
                            ));
                        }
                        KeySet::Explicit(keys)
                    }
                    opcode::KEYSET_RANGE => {
                        let start = r.u64()?;
                        let end = r.u64()?;
                        if start > end {
                            return Err(ProtocolError::NonCanonical("range start exceeds end"));
                        }
                        KeySet::Range { start, end }
                    }
                    opcode::KEYSET_MASK => {
                        let pattern = r.u64()?;
                        let mask = r.u64()?;
                        if pattern & !mask != 0 {
                            return Err(ProtocolError::NonCanonical(
                                "mask pattern has bits outside the mask",
                            ));
                        }
                        KeySet::Mask { pattern, mask }
                    }
                    other => return Err(ProtocolError::UnknownOpcode(other)),
                };
                Self::Subpop { tenant, set }
            }
            opcode::STATS => Self::Stats,
            opcode::SHUTDOWN => Self::Shutdown,
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialise to a payload (version byte onward, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        out.push(VERSION);
        match self {
            Self::IngestAck { accepted } => {
                out.push(opcode::INGEST_ACK);
                out.extend_from_slice(&accepted.to_le_bytes());
            }
            Self::Value { value } => {
                out.push(opcode::VALUE);
                out.extend_from_slice(&value.to_le_bytes());
            }
            Self::Certified {
                value,
                max_possible_error,
                slack,
                epoch,
            } => {
                out.push(opcode::CERTIFIED);
                out.extend_from_slice(&value.to_le_bytes());
                out.extend_from_slice(&max_possible_error.to_le_bytes());
                out.extend_from_slice(&slack.to_le_bytes());
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Self::Sealed { epoch } => {
                out.push(opcode::SEALED);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            Self::Merged => out.push(opcode::MERGED),
            Self::Snapshot { payload } => {
                out.push(opcode::SNAPSHOT_REPLY);
                out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                out.extend_from_slice(payload);
            }
            Self::Replicated => out.push(opcode::REPLICATED),
            Self::TopK {
                epoch,
                slack,
                floor,
                entries,
            } => {
                out.push(opcode::TOP_K_REPLY);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&slack.to_le_bytes());
                out.extend_from_slice(&floor.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (key, count, error) in entries {
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(&count.to_le_bytes());
                    out.extend_from_slice(&error.to_le_bytes());
                }
            }
            Self::Subpop {
                estimate,
                lo,
                hi,
                slack,
                epoch,
            } => {
                out.push(opcode::SUBPOP_REPLY);
                for word in [estimate, lo, hi, slack, epoch] {
                    out.extend_from_slice(&word.to_le_bytes());
                }
            }
            Self::Stats(s) => {
                out.push(opcode::STATS_REPLY);
                out.extend_from_slice(&s.tenants.to_le_bytes());
                out.extend_from_slice(&s.connections.to_le_bytes());
                for ctr in [
                    s.items_ingested,
                    s.queries,
                    s.seals,
                    s.merges,
                    s.rejected_batches,
                    s.rejected_connections,
                    s.replications,
                ] {
                    out.extend_from_slice(&ctr.to_le_bytes());
                }
            }
            Self::ShuttingDown => out.push(opcode::SHUTTING_DOWN),
            Self::Error { code, message } => {
                out.push(opcode::ERROR);
                out.push(*code as u8);
                let msg = message.as_bytes();
                let len = msg.len().min(u16::MAX as usize);
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&msg[..len]);
            }
        }
        out
    }

    /// Parse a payload. Strict: rejects version/opcode/length anomalies.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtocolError> {
        let (op, mut r) = decode_header(payload)?;
        let resp = match op {
            opcode::INGEST_ACK => Self::IngestAck { accepted: r.u32()? },
            opcode::VALUE => Self::Value { value: r.u64()? },
            opcode::CERTIFIED => Self::Certified {
                value: r.u64()?,
                max_possible_error: r.u64()?,
                slack: r.u64()?,
                epoch: r.u64()?,
            },
            opcode::SEALED => Self::Sealed { epoch: r.u64()? },
            opcode::MERGED => Self::Merged,
            opcode::SNAPSHOT_REPLY => Self::Snapshot { payload: r.blob()? },
            opcode::REPLICATED => Self::Replicated,
            opcode::TOP_K_REPLY => {
                let epoch = r.u64()?;
                let slack = r.u64()?;
                let floor = r.u64()?;
                let count = r.u32()?;
                if count as usize > MAX_BATCH {
                    return Err(ProtocolError::CountTooLarge(count));
                }
                // Cross-check the declared count against the bytes that
                // actually arrived before allocating for it.
                let declared = (count as usize)
                    .checked_mul(24)
                    .ok_or(ProtocolError::CountTooLarge(count))?;
                if r.buf.len() - r.pos != declared {
                    return if r.buf.len() - r.pos < declared {
                        Err(ProtocolError::Truncated)
                    } else {
                        Err(ProtocolError::TrailingBytes)
                    };
                }
                let mut entries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    entries.push((r.u64()?, r.u64()?, r.u64()?));
                }
                Self::TopK {
                    epoch,
                    slack,
                    floor,
                    entries,
                }
            }
            opcode::SUBPOP_REPLY => Self::Subpop {
                estimate: r.u64()?,
                lo: r.u64()?,
                hi: r.u64()?,
                slack: r.u64()?,
                epoch: r.u64()?,
            },
            opcode::STATS_REPLY => Self::Stats(StatsReply {
                tenants: r.u32()?,
                connections: r.u32()?,
                items_ingested: r.u64()?,
                queries: r.u64()?,
                seals: r.u64()?,
                merges: r.u64()?,
                rejected_batches: r.u64()?,
                rejected_connections: r.u64()?,
                replications: r.u64()?,
            }),
            opcode::SHUTTING_DOWN => Self::ShuttingDown,
            opcode::ERROR => {
                let raw = r.u8()?;
                let code = ErrorCode::from_u8(raw).ok_or(ProtocolError::UnknownOpcode(raw))?;
                let len = u16::from_le_bytes(r.bytes(2)?.try_into().expect("2-byte slice"));
                let message = core::str::from_utf8(r.bytes(len as usize)?)
                    .map_err(|_| ProtocolError::BadUtf8)?
                    .to_owned();
                Self::Error { code, message }
            }
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(resp)
    }
}

/// Write one `[len][payload]` frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame. `Ok(None)` means the peer closed cleanly between
/// frames; a close mid-frame, or a declared length over
/// [`MAX_FRAME_LEN`], is an error.
///
/// Timeout-friendly: on a reader with a read timeout, `WouldBlock` /
/// `TimedOut` surface only while *no* frame has started (an idle
/// connection the caller may poll again). Once the first header byte
/// has arrived the frame is committed and timeouts are retried
/// internally, so a slow-but-live peer cannot desynchronise the stream.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled > 0
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::Oversized(len),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame body",
                ))
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::Interrupted
                        | io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(payload))
}

/// Convenience: frame and send a request.
pub fn send_request<W: Write>(w: &mut W, req: &Request) -> io::Result<()> {
    write_frame(w, &req.encode())
}

/// Convenience: frame and send a response.
pub fn send_response<W: Write>(w: &mut W, resp: &Response) -> io::Result<()> {
    write_frame(w, &resp.encode())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<Request> {
        vec![
            Request::Ingest {
                tenant: 3,
                items: vec![(1, 2), (u64::MAX, 1), (0xdead_beef, 77)],
            },
            Request::Ingest {
                tenant: 0,
                items: vec![],
            },
            Request::Query {
                tenant: 9,
                key: u64::MAX,
            },
            Request::QueryCertified { tenant: 0, key: 0 },
            Request::Seal { tenant: u32::MAX },
            Request::Merge { dst: 1, src: 2 },
            Request::Snapshot {
                tenant: 7,
                kind: SnapshotKind::Full,
            },
            Request::Snapshot {
                tenant: 7,
                kind: SnapshotKind::Delta,
            },
            Request::Snapshot {
                tenant: 0,
                kind: SnapshotKind::Slim,
            },
            Request::PushDelta {
                tenant: 7,
                payload: vec![0x52, 0x53, 0x4B, 0x42, 1, 3],
            },
            Request::PushDelta {
                tenant: 0,
                payload: vec![],
            },
            Request::SlimQuery {
                tenant: 5,
                key: u64::MAX,
            },
            Request::TopK { tenant: 4, k: 10 },
            Request::TopK {
                tenant: u32::MAX,
                k: 0,
            },
            Request::Subpop {
                tenant: 2,
                set: KeySet::explicit(vec![3, 1, 4, 1, 5, 9, 2, 6]),
            },
            Request::Subpop {
                tenant: 0,
                set: KeySet::explicit(vec![]),
            },
            Request::Subpop {
                tenant: 8,
                set: KeySet::range(100, 200),
            },
            Request::Subpop {
                tenant: 8,
                set: KeySet::range(7, 7),
            },
            Request::Subpop {
                tenant: 1,
                set: KeySet::mask(0x0a00_0000_0000_0000, 0xff00_0000_0000_0000),
            },
            Request::Subpop {
                tenant: 1,
                set: KeySet::mask(0, 0),
            },
            Request::Stats,
            Request::Shutdown,
        ]
    }

    fn responses() -> Vec<Response> {
        vec![
            Response::IngestAck { accepted: 2048 },
            Response::Value { value: 12 },
            Response::Certified {
                value: u64::MAX,
                max_possible_error: 25,
                slack: 45,
                epoch: 3,
            },
            Response::Sealed { epoch: 8 },
            Response::Merged,
            Response::Snapshot {
                payload: vec![0x52, 0x53, 0x4B, 0x42, 1, 2, 0, 0],
            },
            Response::Snapshot { payload: vec![] },
            Response::Replicated,
            Response::TopK {
                epoch: 3,
                slack: 45,
                floor: 1200,
                entries: vec![
                    (0xdead_beef, 9000, 25),
                    (7, 8000, 0),
                    (u64::MAX, 1201, 1201),
                ],
            },
            Response::TopK {
                epoch: 0,
                slack: 0,
                floor: u64::MAX,
                entries: vec![],
            },
            Response::Subpop {
                estimate: 4096,
                lo: 4000,
                hi: 4200,
                slack: 45,
                epoch: 3,
            },
            Response::Subpop {
                estimate: 0,
                lo: 0,
                hi: u64::MAX,
                slack: 0,
                epoch: 0,
            },
            Response::Stats(StatsReply {
                tenants: 4,
                connections: 16,
                items_ingested: 1 << 40,
                queries: 123,
                seals: 4,
                merges: 1,
                rejected_batches: 9,
                rejected_connections: 2,
                replications: 3,
            }),
            Response::ShuttingDown,
            Response::Error {
                code: ErrorCode::BatchTooLarge,
                message: "batch of 99999 exceeds 16384".into(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in requests() {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in responses() {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        for req in requests() {
            let full = req.encode();
            for cut in 0..full.len() {
                let err = Request::decode(&full[..cut]).unwrap_err();
                assert!(
                    matches!(err, ProtocolError::Truncated | ProtocolError::TrailingBytes),
                    "{req:?} cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        for req in requests() {
            let mut bytes = req.encode();
            bytes.push(0);
            assert_eq!(
                Request::decode(&bytes).unwrap_err(),
                ProtocolError::TrailingBytes,
                "{req:?}"
            );
        }
    }

    #[test]
    fn version_and_opcode_anomalies() {
        assert_eq!(
            Request::decode(&[9, opcode::STATS]).unwrap_err(),
            ProtocolError::BadVersion(9)
        );
        assert_eq!(
            Request::decode(&[VERSION, 0x42]).unwrap_err(),
            ProtocolError::UnknownOpcode(0x42)
        );
        // Response opcodes are not valid requests and vice versa.
        assert!(Request::decode(&Response::Merged.encode()).is_err());
        assert!(Response::decode(&Request::Stats.encode()).is_err());
    }

    #[test]
    fn ingest_count_lies_are_rejected() {
        // Declared count larger than the bytes present.
        let mut bytes = vec![VERSION, opcode::INGEST];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // tenant
        bytes.extend_from_slice(&5u32.to_le_bytes()); // claims 5 items
        bytes.extend_from_slice(&[0u8; 16]); // carries 1
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::Truncated
        );

        // Declared count over MAX_BATCH is refused before allocation.
        let mut bytes = vec![VERSION, opcode::INGEST];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::CountTooLarge(u32::MAX)
        );
    }

    #[test]
    fn top_k_count_lies_are_rejected() {
        // Declared entry count larger than the bytes present.
        let mut bytes = vec![VERSION, opcode::TOP_K_REPLY];
        bytes.extend_from_slice(&[0u8; 24]); // epoch, slack, floor
        bytes.extend_from_slice(&5u32.to_le_bytes()); // claims 5 entries
        bytes.extend_from_slice(&[0u8; 24]); // carries 1
        assert_eq!(
            Response::decode(&bytes).unwrap_err(),
            ProtocolError::Truncated
        );

        // Declared count over MAX_BATCH is refused before allocation.
        let mut bytes = vec![VERSION, opcode::TOP_K_REPLY];
        bytes.extend_from_slice(&[0u8; 24]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Response::decode(&bytes).unwrap_err(),
            ProtocolError::CountTooLarge(u32::MAX)
        );
    }

    #[test]
    fn subpop_count_lies_are_rejected() {
        // Declared key count larger than the bytes present.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // tenant
        bytes.push(opcode::KEYSET_EXPLICIT);
        bytes.extend_from_slice(&5u32.to_le_bytes()); // claims 5 keys
        bytes.extend_from_slice(&[0u8; 8]); // carries 1
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::Truncated
        );

        // Declared count over MAX_BATCH is refused before allocation.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(opcode::KEYSET_EXPLICIT);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::CountTooLarge(u32::MAX)
        );
    }

    #[test]
    fn subpop_non_canonical_forms_are_rejected() {
        // Unsorted explicit keys: would not re-encode to the same bytes.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(opcode::KEYSET_EXPLICIT);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&9u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::NonCanonical(_)
        ));

        // Duplicate keys are equally non-canonical (strictly increasing).
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(opcode::KEYSET_EXPLICIT);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::NonCanonical(_)
        ));

        // An inverted range selects nothing representable.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(opcode::KEYSET_RANGE);
        bytes.extend_from_slice(&10u64.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::NonCanonical(_)
        ));

        // Pattern bits outside the mask can never match any key.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(opcode::KEYSET_MASK);
        bytes.extend_from_slice(&0xffu64.to_le_bytes());
        bytes.extend_from_slice(&0x0fu64.to_le_bytes());
        assert!(matches!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::NonCanonical(_)
        ));

        // An unknown key-set tag names no predicate shape.
        let mut bytes = vec![VERSION, opcode::SUBPOP];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(9);
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::UnknownOpcode(9)
        );
    }

    #[test]
    fn replication_field_lies_are_rejected() {
        // Declared payload length larger than the bytes present.
        let mut bytes = vec![VERSION, opcode::PUSH_DELTA];
        bytes.extend_from_slice(&1u32.to_le_bytes()); // tenant
        bytes.extend_from_slice(&5u32.to_le_bytes()); // claims 5 bytes
        bytes.push(0); // carries 1
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::Truncated
        );

        // Declared length over MAX_FRAME_LEN is refused before allocation.
        let mut bytes = vec![VERSION, opcode::PUSH_DELTA];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::CountTooLarge(u32::MAX)
        );

        // An unknown snapshot-kind byte names no payload family.
        let mut bytes = vec![VERSION, opcode::SNAPSHOT];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(9);
        assert_eq!(
            Request::decode(&bytes).unwrap_err(),
            ProtocolError::UnknownOpcode(9)
        );
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let req = Request::Seal { tenant: 5 };
        let mut wire = Vec::new();
        send_request(&mut wire, &req).unwrap();
        let mut cursor = io::Cursor::new(wire);
        let payload = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
        // Clean EOF between frames → None.
        assert!(read_frame(&mut cursor).unwrap().is_none());

        // A length prefix over MAX_FRAME_LEN is an immediate error.
        let huge = (MAX_FRAME_LEN + 1).to_le_bytes();
        let mut cursor = io::Cursor::new(huge.to_vec());
        assert!(read_frame(&mut cursor).is_err());

        // EOF inside a header is an error, not a clean close.
        let mut cursor = io::Cursor::new(vec![1u8, 0]);
        assert!(read_frame(&mut cursor).is_err());
    }
}
