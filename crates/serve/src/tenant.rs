//! The sharded multi-tenant sketch map.
//!
//! Each tenant owns one [`EpochedConcurrent`] window, constructed
//! through the umbrella crate's unified [`reliablesketch::builder()`]
//! facade — the exact construction path applications and the quickstart
//! use, so a tenant's sketch is configured like any other.
//!
//! The map is striped: tenant ids hash across `stripes` independent
//! `RwLock<HashMap<…>>` buckets so tenant *lookup* never serialises the
//! data plane. Within a tenant, a second `RwLock` arbitrates the only
//! two access modes the window has:
//!
//! - **shared** (`read()`): batched ingest via `insert_shared` and
//!   certified queries via `query_with_error_concurrent` — both take
//!   `&self` and run lock-free inside the sketch, so any number of
//!   connections proceed in parallel;
//! - **exclusive** (`write()`): `Seal` (epoch rotation) and `Merge`,
//!   the two genuinely exclusive operations.
//!
//! Merges lock the two tenants in ascending-id order, so concurrent
//! `Merge {a→b}` / `Merge {b→a}` requests cannot deadlock.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use rsk_api::{
    CertifiedTopK, CertifiedWeight, ConcurrentErrorSensing, Estimate, KeySet, MergeError,
    Replicate, ReplicateError, SubpopulationWeight, TopK,
};
use rsk_core::{EpochedConcurrent, SlimSummary};

use crate::protocol::SnapshotKind;

/// Top-K slots every tenant window tracks. The layer is always on —
/// its memory cost is `capacity × 24` bytes plus the index, two orders
/// of magnitude under the default per-tenant budget — so the `TopK`
/// frame needs no per-tenant configuration.
pub const DEFAULT_TOPK_CAPACITY: usize = 128;

/// Sketch parameters every tenant is built with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SketchSpec {
    /// Memory budget per tenant window generation, in bytes.
    pub memory_bytes: usize,
    /// Error tolerance Λ.
    pub error_tolerance: u64,
    /// Master hash seed (shared by all tenants so windows stay
    /// merge-compatible).
    pub seed: u64,
}

impl Default for SketchSpec {
    fn default() -> Self {
        Self {
            memory_bytes: 256 * 1024,
            error_tolerance: 25,
            seed: 0x5eed_5eed,
        }
    }
}

impl SketchSpec {
    fn build(&self) -> EpochedConcurrent<u64> {
        reliablesketch::builder()
            .memory_bytes(self.memory_bytes)
            .error_tolerance(self.error_tolerance)
            .seed(self.seed)
            .top_k(DEFAULT_TOPK_CAPACITY)
            .build_epoched_concurrent::<u64>()
    }
}

/// A certified answer plus the window metadata a client needs to
/// interpret it (see `docs/PROTOCOL.md` § Certification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedAnswer {
    /// Point estimate (never an undercount beyond `slack`).
    pub value: u64,
    /// Maximum possible overcount baked into `value`.
    pub max_possible_error: u64,
    /// Contention slack: with racing same-key writers the estimate may
    /// additionally undershoot by up to this much, per the concurrent
    /// sketch's documented `(arrays − 1) · threshold` bound, summed over
    /// the window's live generations.
    pub slack: u64,
    /// Epoch index the answer was computed at.
    pub epoch: u64,
}

impl CertifiedAnswer {
    /// Does the certified interval (widened by `slack`) contain `truth`?
    pub fn contains(&self, truth: u64) -> bool {
        let lower = self
            .value
            .saturating_sub(self.max_possible_error + self.slack);
        lower <= truth && truth <= self.value.saturating_add(self.slack)
    }
}

/// One tenant: an id and its epoch window.
pub struct Tenant {
    id: u32,
    window: RwLock<EpochedConcurrent<u64>>,
}

impl Tenant {
    /// The tenant id this window serves.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Fold a batch of updates into the active generation (shared lock;
    /// the inserts themselves are lock-free).
    pub fn ingest(&self, items: &[(u64, u64)]) {
        let window = self.window.read();
        for (key, value) in items {
            window.insert_shared(key, *value);
        }
    }

    /// Point estimate for `key` across the window.
    pub fn query(&self, key: u64) -> u64 {
        self.certified(key).value
    }

    /// Certified estimate for `key`, with the window's current
    /// contention slack and epoch attached.
    pub fn certified(&self, key: u64) -> CertifiedAnswer {
        let window = self.window.read();
        let est: Estimate = window.query_with_error_concurrent(&key);
        let generations = 1 + u64::from(window.frozen().is_some());
        CertifiedAnswer {
            value: est.value,
            max_possible_error: est.max_possible_error,
            slack: window.contention_undershoot_bound() * generations,
            epoch: window.epoch(),
        }
    }

    /// The `k` heaviest keys of the visible window with their certified
    /// errors, plus the window's contention slack and epoch. The answer
    /// is computed under the shared lock: candidate collection touches
    /// only the promotion-path mutex (active) and the rotation-time
    /// snapshot (frozen), never the data plane.
    pub fn top_k(&self, k: usize) -> (CertifiedTopK<u64>, u64, u64) {
        let window = self.window.read();
        let top = window.certified_top_k(k);
        let generations = 1 + u64::from(window.frozen().is_some());
        let slack = window.contention_undershoot_bound() * generations;
        (top, slack, window.epoch())
    }

    /// Certified subpopulation weight of `set` across the visible
    /// window, with the window's epoch attached. Answered under the
    /// shared lock — the aggregate walks the same lock-free read paths
    /// as certified point queries, and its `slack` field already carries
    /// the per-key contention bound summed over the window's live
    /// generations (the same convention as [`Tenant::certified`]).
    pub fn subpop(&self, set: &KeySet) -> (CertifiedWeight, u64) {
        let window = self.window.read();
        (window.subpopulation_weight(set), window.epoch())
    }

    /// Rotate the epoch window; returns the new active epoch index.
    pub fn seal(&self) -> u64 {
        let mut window = self.window.write();
        window.rotate();
        window.epoch()
    }

    /// Capture a replication payload of this tenant's window.
    ///
    /// `Full` and `Slim` read the window under the shared lock (captures
    /// are lock-free inside the sketch); `Delta` takes the exclusive
    /// lock because cutting updates the dirty-bitmap baseline.
    ///
    /// # Errors
    /// Propagates the sketch layer's [`ReplicateError`].
    pub fn replicate_payload(&self, kind: SnapshotKind) -> Result<Vec<u8>, ReplicateError> {
        match kind {
            SnapshotKind::Full => self.window.read().snapshot_bytes(),
            SnapshotKind::Delta => self.window.write().delta_bytes(),
            SnapshotKind::Slim => self.window.read().slim_bytes(),
        }
    }

    /// Apply a shipped replication payload (full snapshot or delta —
    /// payloads are self-describing) to this tenant's window.
    ///
    /// # Errors
    /// Propagates the sketch layer's [`ReplicateError`]; on error the
    /// window is untouched.
    pub fn apply_replica(&self, payload: &[u8]) -> Result<(), ReplicateError> {
        self.window.write().apply_bytes(payload)
    }

    /// Certified estimate answered through a freshly distilled
    /// [`SlimSummary`] of the window — the code path a collector holding
    /// only a shipped slim payload runs, exposed for verification.
    pub fn slim_certified(&self, key: u64) -> CertifiedAnswer {
        let window = self.window.read();
        let slim = SlimSummary::from_epoched(&window);
        let est = slim.query_with_error(&key);
        let generations = 1 + u64::from(window.frozen().is_some());
        CertifiedAnswer {
            value: est.value,
            max_possible_error: est.max_possible_error,
            slack: window.contention_undershoot_bound() * generations,
            epoch: window.epoch(),
        }
    }

    /// Insertion failures accumulated across the window's generations.
    pub fn insertion_failures(&self) -> u64 {
        self.window.read().insertion_failures()
    }
}

/// Striped tenant id → [`Tenant`] map.
pub struct TenantMap {
    stripes: Vec<RwLock<HashMap<u32, Arc<Tenant>>>>,
    spec: SketchSpec,
}

impl TenantMap {
    /// Create a map with `stripes` lock stripes (rounded up to 1).
    pub fn new(stripes: usize, spec: SketchSpec) -> Self {
        let stripes = stripes.max(1);
        Self {
            stripes: (0..stripes).map(|_| RwLock::new(HashMap::new())).collect(),
            spec,
        }
    }

    fn stripe(&self, tenant: u32) -> &RwLock<HashMap<u32, Arc<Tenant>>> {
        // Tenant ids are small and often sequential; spread them with a
        // multiplicative mix so neighbouring ids land on distinct stripes.
        let mixed = (u64::from(tenant)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(mixed >> 32) as usize % self.stripes.len()]
    }

    /// Fetch `tenant`'s window, materialising it on first touch.
    pub fn get_or_create(&self, tenant: u32) -> Arc<Tenant> {
        let stripe = self.stripe(tenant);
        if let Some(t) = stripe.read().get(&tenant) {
            return Arc::clone(t);
        }
        let mut map = stripe.write();
        Arc::clone(map.entry(tenant).or_insert_with(|| {
            Arc::new(Tenant {
                id: tenant,
                window: RwLock::new(self.spec.build()),
            })
        }))
    }

    /// Fetch `tenant`'s window only if it already exists.
    pub fn get(&self, tenant: u32) -> Option<Arc<Tenant>> {
        self.stripe(tenant).read().get(&tenant).cloned()
    }

    /// Tenants materialised so far.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.read().len()).sum()
    }

    /// True when no tenant has been materialised.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The spec every tenant window is built from.
    pub fn spec(&self) -> &SketchSpec {
        &self.spec
    }

    /// Fold tenant `src`'s whole window (both generations) into tenant
    /// `dst`'s active generation. Locks are taken in ascending tenant-id
    /// order so opposing merges cannot deadlock.
    pub fn merge(&self, dst: u32, src: u32) -> Result<(), MergeError> {
        if dst == src {
            return Err(MergeError::Incompatible(
                "cannot merge a tenant into itself".into(),
            ));
        }
        let dst_t = self.get_or_create(dst);
        let src_t = self.get_or_create(src);
        if dst < src {
            let mut d = dst_t.window.write();
            let s = src_t.window.read();
            d.merge_window_from(&s)
        } else {
            let s = src_t.window.read();
            let mut d = dst_t.window.write();
            d.merge_window_from(&s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> TenantMap {
        TenantMap::new(
            8,
            SketchSpec {
                memory_bytes: 64 * 1024,
                error_tolerance: 25,
                seed: 99,
            },
        )
    }

    #[test]
    fn tenants_materialise_once_and_stay_isolated() {
        let map = map();
        assert!(map.is_empty());
        let a = map.get_or_create(1);
        let b = map.get_or_create(2);
        assert!(Arc::ptr_eq(&a, &map.get_or_create(1)));
        assert_eq!(map.len(), 2);

        a.ingest(&[(7, 100)]);
        assert!(a.certified(7).contains(100));
        // Tenant 2 never saw key 7.
        assert!(b.certified(7).contains(0));
        assert_eq!(b.certified(7).value, 0);
    }

    #[test]
    fn seal_freezes_and_queries_span_the_window() {
        let map = map();
        let t = map.get_or_create(9);
        t.ingest(&[(1, 50)]);
        let e0 = t.certified(1).epoch;
        assert_eq!(t.seal(), e0 + 1);
        t.ingest(&[(1, 25)]);
        let ans = t.certified(1);
        assert!(ans.contains(75), "window spans both generations: {ans:?}");
        // A frozen generation doubles the advertised slack.
        let single = map.get_or_create(10).certified(1).slack;
        assert_eq!(ans.slack, single * 2);
    }

    #[test]
    fn merge_folds_both_generations_and_rejects_self() {
        let map = map();
        let a = map.get_or_create(1);
        let b = map.get_or_create(2);
        a.ingest(&[(5, 10)]);
        a.seal();
        a.ingest(&[(5, 20)]);
        b.ingest(&[(5, 7)]);
        map.merge(2, 1).unwrap();
        assert!(b.certified(5).contains(37));
        // Donor unchanged.
        assert!(a.certified(5).contains(30));
        assert!(matches!(map.merge(3, 3), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn top_k_spans_the_window_and_certifies() {
        let map = map();
        let t = map.get_or_create(4);
        // elephant split across a seal, plus mice noise
        t.ingest(&[(0xbeef, 4_000)]);
        for m in 0..200u64 {
            t.ingest(&[(m, 1)]);
        }
        t.seal();
        t.ingest(&[(0xbeef, 2_000), (0xcafe, 3_000)]);
        let (top, slack, epoch) = t.top_k(2);
        assert_eq!(epoch, 1);
        let keys: Vec<u64> = top.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![0xbeef, 0xcafe]);
        assert!(top.entries[0].contains(6_000));
        assert!(top.entries[1].contains(3_000));
        assert!(top.recall_certified());
        // same slack contract as certified point queries
        assert_eq!(slack, t.certified(0xbeef).slack);
    }

    #[test]
    fn subpop_spans_the_window_and_certifies() {
        let map = map();
        let t = map.get_or_create(6);
        // Subset weight split across a seal.
        t.ingest(&[(10, 100), (11, 200), (500, 9)]);
        t.seal();
        t.ingest(&[(10, 50), (12, 300)]);

        let (w, epoch) = t.subpop(&KeySet::range(10, 12));
        assert_eq!(epoch, 1);
        assert!(w.contains(650), "{w:?}");

        // Empty subsets are exactly zero.
        let (empty, _) = t.subpop(&KeySet::explicit(vec![]));
        assert_eq!(empty, CertifiedWeight::zero());

        // Same slack contract as certified point queries: per-key
        // undershoot × live generations, summed over the subset.
        let per_key = t.certified(10).slack;
        let (three, _) = t.subpop(&KeySet::explicit(vec![10, 11, 12]));
        assert_eq!(three.slack, per_key * 3);
    }

    #[test]
    fn opposing_merges_do_not_deadlock() {
        let map = Arc::new(map());
        for t in [1u32, 2] {
            map.get_or_create(t).ingest(&[(1, 1)]);
        }
        let m1 = Arc::clone(&map);
        let m2 = Arc::clone(&map);
        let h1 = std::thread::spawn(move || {
            for _ in 0..200 {
                m1.merge(1, 2).unwrap();
            }
        });
        let h2 = std::thread::spawn(move || {
            for _ in 0..200 {
                m2.merge(2, 1).unwrap();
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
    }
}
