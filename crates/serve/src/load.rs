//! The load generator behind the `rsk-load` binary and the `fig_serve`
//! repro target.
//!
//! Drives a running server with `tenants × connections` concurrent
//! pipelined ingest streams (Zipf-skewed keys, deterministic per-worker
//! seeds), then probes each tenant's hottest keys with certified
//! queries and checks every answer against the exact ground truth the
//! generator tracked while ingesting. A top-K probe phase then fetches
//! each tenant's certified heavy hitters and holds them to both halves
//! of the top-K contract: every reported entry's interval must contain
//! the exact truth, and every true heavy key above the advertised
//! `floor + slack` must appear in the reply. A subpopulation probe
//! phase follows: per tenant, one certified aggregate query for each
//! predicate shape (explicit hot set, range, mask, empty), each checked
//! against the exact subset weight summed from the tracked truth.
//!
//! ## Backpressure: the client half
//!
//! Each connection pipelines `Ingest` frames under a bounded **credit
//! window**: at most `window` batches may be in flight unacknowledged.
//! A dedicated ack-reader thread retires credits as `IngestAck` frames
//! arrive; when the writer finds the window exhausted it records one
//! **stall event** and yields until credit frees up. Stall counts are
//! the honest client-side backpressure signal reported by
//! [`LoadReport::stalls`] — TCP flow control and the server's batch
//! ceiling are the other two layers (see [`crate::server`]).
//!
//! ## Replication probes
//!
//! With [`LoadConfig::replicate`] set, a final phase ships every tenant
//! to a second server — one full snapshot, then two delta cuts
//! straddling a `Seal` — and probes the **replica** with certified and
//! slim queries against the same tracked truth. The byte counts of the
//! full versus delta ships land in the report, so the delta path's
//! advantage is measured, not assumed.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rsk_api::{KeySet, StreamSummary};
use rsk_stream::zipf::ZipfSampler;
use rsk_stream::GroundTruth;

use crate::client::{Client, ClientError};
use crate::protocol::{read_frame, send_request, Request, Response, SnapshotKind};

/// Load shape. `Default` is the full run; [`LoadConfig::quick`] is the
/// CI-sized configuration (still ≥ 10⁶ updates end-to-end).
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `"127.0.0.1:4901"`.
    pub addr: String,
    /// Distinct tenants to drive.
    pub tenants: u32,
    /// Concurrent connections per tenant.
    pub connections: u32,
    /// Updates each connection sends.
    pub items_per_connection: usize,
    /// Items per `Ingest` frame.
    pub batch: usize,
    /// Credit window: max unacknowledged batches in flight.
    pub window: usize,
    /// Zipf skew of the simulated flow keys.
    pub skew: f64,
    /// Key universe per tenant.
    pub universe: u64,
    /// Master seed; per-worker seeds derive from it.
    pub seed: u64,
    /// Certified probes per tenant (hottest keys first).
    pub probes: usize,
    /// Second server to replicate every tenant to (full snapshot, then
    /// delta ships across a seal), probing the replica for certified
    /// answers. `None` skips the replication phase.
    pub replicate: Option<String>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4901".into(),
            tenants: 8,
            connections: 8,
            items_per_connection: 262_144,
            batch: 2048,
            window: 8,
            skew: 1.1,
            universe: 100_000,
            seed: 42,
            probes: 128,
            replicate: None,
        }
    }
}

impl LoadConfig {
    /// CI-sized run: 4 tenants × 4 connections × 65 536 updates
    /// = 1 048 576 end-to-end updates.
    pub fn quick(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            tenants: 4,
            connections: 4,
            items_per_connection: 65_536,
            batch: 2048,
            window: 8,
            universe: 20_000,
            probes: 64,
            ..Self::default()
        }
    }

    /// Total updates this configuration pushes.
    pub fn total_updates(&self) -> u64 {
        u64::from(self.tenants) * u64::from(self.connections) * self.items_per_connection as u64
    }
}

/// What a load run measured. Count fields are deterministic for a fixed
/// [`LoadConfig`]; timing fields are wall-clock and volatile.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Updates acknowledged end-to-end.
    pub total_updates: u64,
    /// `Ingest` frames sent.
    pub batches: u64,
    /// Credit-window stall events across all connections.
    pub stalls: u64,
    /// Certified probes issued.
    pub probes: u64,
    /// Probes whose certified interval (widened by the advertised
    /// slack) contained the exact ground truth.
    pub probes_contained: u64,
    /// Tenants driven.
    pub tenants: u32,
    /// Connections per tenant.
    pub connections: u32,
    /// Ingest wall-clock.
    pub elapsed: Duration,
    /// Millions of updates per second over the ingest phase.
    pub mupdates_per_sec: f64,
    /// Median certified-query round-trip, microseconds.
    pub p50_us: u64,
    /// 99th-percentile certified-query round-trip, microseconds.
    pub p99_us: u64,
    /// Server-side items counter after the run (should equal
    /// `total_updates` plus whatever earlier runs folded in).
    pub server_items: u64,
    /// Server-side refused batches (batch-ceiling backpressure).
    pub server_rejected_batches: u64,
    /// Top-K entries returned across all tenants and verified against
    /// exact ground truth.
    pub topk_probes: u64,
    /// Top-K entries whose certified interval (widened by the advertised
    /// slack) contained the exact truth.
    pub topk_contained: u64,
    /// True heavy keys whose exact count cleared the advertised
    /// `floor + slack` yet were missing from the top-K reply — the
    /// certified-recall contract says this is always 0.
    pub topk_recall_misses: u64,
    /// Subpopulation-weight probes issued (explicit / range / mask /
    /// empty predicate shapes per tenant).
    pub subpop_probes: u64,
    /// Subpopulation probes whose certified interval contained the
    /// exact subset truth.
    pub subpop_contained: u64,
    /// Certified + slim probes issued against the replica (0 when no
    /// replica was configured).
    pub replica_probes: u64,
    /// Replica probes whose certified interval contained the truth.
    pub replica_contained: u64,
    /// Bytes shipped in the initial full snapshots, summed over tenants.
    pub replicate_full_bytes: u64,
    /// Bytes shipped in the delta cuts, summed over tenants.
    pub replicate_delta_bytes: u64,
}

/// Ingest result of one pipelined connection.
struct ConnResult {
    truth: GroundTruth<u64>,
    batches: u64,
    stalls: u64,
    sent: u64,
}

/// Drive one pipelined connection: writer on this thread, ack reader on
/// a helper thread, bounded by the credit window.
fn drive_connection(
    cfg: &LoadConfig,
    tenant: u32,
    conn_index: u32,
) -> Result<ConnResult, ClientError> {
    let stream = TcpStream::connect(&cfg.addr as &str)?;
    stream.set_nodelay(true).ok();
    let mut writer = BufWriter::new(stream.try_clone()?);

    let n_batches = cfg.items_per_connection.div_ceil(cfg.batch.max(1));
    let outstanding = Arc::new(AtomicUsize::new(0));
    let acked_items = Arc::new(AtomicU64::new(0));

    let reader_outstanding = Arc::clone(&outstanding);
    let reader_acked = Arc::clone(&acked_items);
    let reader_stream = stream.try_clone()?;
    let reader = std::thread::Builder::new()
        .name(format!("rsk-load-ack-{tenant}-{conn_index}"))
        .spawn(move || -> Result<(), ClientError> {
            let mut r = BufReader::new(reader_stream);
            let mut remaining = n_batches;
            while remaining > 0 {
                let payload = read_frame(&mut r)?.ok_or(ClientError::Disconnected)?;
                match Response::decode(&payload)? {
                    Response::IngestAck { accepted } => {
                        reader_acked.fetch_add(u64::from(accepted), Ordering::Relaxed);
                        reader_outstanding.fetch_sub(1, Ordering::Release);
                        remaining -= 1;
                    }
                    Response::Error { code, message } => {
                        return Err(ClientError::Server { code, message })
                    }
                    other => return Err(ClientError::Unexpected(other)),
                }
            }
            Ok(())
        })
        .expect("spawn ack reader");

    // Deterministic per-worker key stream.
    let worker_seed = cfg
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(tenant) << 32 | u64::from(conn_index));
    let mut sampler = ZipfSampler::new(cfg.universe.max(1), cfg.skew, worker_seed);

    let mut truth: GroundTruth<u64> = GroundTruth::new();
    let mut stalls = 0u64;
    let mut sent = 0u64;
    let mut batch = Vec::with_capacity(cfg.batch);
    for _ in 0..n_batches {
        batch.clear();
        while batch.len() < cfg.batch
            && sent + (batch.len() as u64) < cfg.items_per_connection as u64
        {
            let key = sampler.sample();
            batch.push((key, 1u64));
            truth.insert(&key, 1);
        }
        sent += batch.len() as u64;

        // Credit window: one stall event per exhausted-window episode.
        if outstanding.load(Ordering::Acquire) >= cfg.window.max(1) {
            stalls += 1;
            while outstanding.load(Ordering::Acquire) >= cfg.window.max(1) {
                std::thread::yield_now();
            }
        }
        outstanding.fetch_add(1, Ordering::AcqRel);
        send_request(
            &mut writer,
            &Request::Ingest {
                tenant,
                items: batch.clone(),
            },
        )?;
        writer.flush()?;
    }

    // Drain: wait for the ack reader to retire every credit, then close
    // our write half so the server sees a clean EOF.
    reader.join().expect("ack reader panicked")?;
    debug_assert_eq!(outstanding.load(Ordering::Acquire), 0);
    stream.shutdown(Shutdown::Both).ok();
    Ok(ConnResult {
        truth,
        batches: n_batches as u64,
        stalls,
        sent,
    })
}

/// Run the full load: parallel pipelined ingest, then certified probes
/// validated against exact ground truth.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, ClientError> {
    let started = Instant::now();
    let mut workers = Vec::new();
    for tenant in 0..cfg.tenants {
        for conn in 0..cfg.connections {
            let cfg = cfg.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("rsk-load-{tenant}-{conn}"))
                    .spawn(move || drive_connection(&cfg, tenant, conn))
                    .expect("spawn load worker"),
            );
        }
    }
    let mut tenant_truth: HashMap<u32, GroundTruth<u64>> = HashMap::new();
    let mut batches = 0u64;
    let mut stalls = 0u64;
    let mut total = 0u64;
    for (i, w) in workers.into_iter().enumerate() {
        let result = w.join().expect("load worker panicked")?;
        let tenant = (i as u32) / cfg.connections;
        let truth = tenant_truth.entry(tenant).or_default();
        for (k, v) in result.truth.iter() {
            truth.insert(k, v);
        }
        batches += result.batches;
        stalls += result.stalls;
        total += result.sent;
    }
    let elapsed = started.elapsed();

    // Probe phase: certified queries over each tenant's hottest keys,
    // checked against the exact truth (deterministic per config).
    let mut latencies: Vec<u64> = Vec::new();
    let mut probes = 0u64;
    let mut contained = 0u64;
    for tenant in 0..cfg.tenants {
        // `to_pairs` enumerates in deterministic first-occurrence order,
        // so a stable sort by count needs no defensive key tiebreak.
        let mut hottest = tenant_truth[&tenant].to_pairs();
        hottest.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
        let mut client = Client::connect(&cfg.addr as &str)?;
        for (key, count) in hottest.into_iter().take(cfg.probes) {
            let probe_started = Instant::now();
            let answer = client.query_certified(tenant, key)?;
            latencies.push(
                probe_started
                    .elapsed()
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
            );
            probes += 1;
            if answer.contains(count) {
                contained += 1;
            }
        }
    }
    latencies.sort_unstable();
    let percentile = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };

    // Top-K probe phase: fetch each tenant's certified heavy hitters
    // and hold them to both halves of the contract — containment of the
    // exact truth per entry, and recall of every true heavy key above
    // the advertised floor.
    let mut topk_probes = 0u64;
    let mut topk_contained = 0u64;
    let mut topk_recall_misses = 0u64;
    {
        let k = cfg.probes.clamp(1, crate::tenant::DEFAULT_TOPK_CAPACITY);
        let mut client = Client::connect(&cfg.addr as &str)?;
        for tenant in 0..cfg.tenants {
            let truth = &tenant_truth[&tenant];
            let answer = client.top_k(tenant, k as u32)?;
            for (i, &(key, _, _)) in answer.entries.iter().enumerate() {
                topk_probes += 1;
                if answer.entry_contains(i, truth.freq(&key)) {
                    topk_contained += 1;
                }
            }
            let cutoff = answer.floor.saturating_add(answer.slack);
            let reported: Vec<u64> = answer.entries.iter().map(|e| e.0).collect();
            for (key, count) in truth.iter() {
                if count > cutoff && !reported.contains(key) {
                    topk_recall_misses += 1;
                }
            }
        }
    }

    // Subpopulation probe phase: per tenant, one aggregate query for
    // each predicate shape — an explicit set of the hottest keys, a
    // range over the low half of the universe, a mask (subnet-style)
    // predicate, and the empty set — each checked against the exact
    // subset weight the generator tracked.
    let mut subpop_probes = 0u64;
    let mut subpop_contained = 0u64;
    {
        let mut client = Client::connect(&cfg.addr as &str)?;
        for tenant in 0..cfg.tenants {
            let truth = &tenant_truth[&tenant];
            let mut hottest = truth.to_pairs();
            hottest.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
            let hot: Vec<u64> = hottest
                .iter()
                .take(cfg.probes.clamp(1, crate::protocol::MAX_BATCH))
                .map(|&(k, _)| k)
                .collect();
            let sets = [
                KeySet::explicit(hot),
                KeySet::range(0, cfg.universe / 2),
                KeySet::mask(0b11, 0b111),
                KeySet::explicit(vec![]),
            ];
            for set in sets {
                let want: u64 = truth
                    .iter()
                    .filter(|(k, _)| set.contains(**k))
                    .map(|(_, v)| v)
                    .sum();
                let answer = client.subpop(tenant, &set)?;
                subpop_probes += 1;
                if answer.contains(want) {
                    subpop_contained += 1;
                }
            }
        }
    }

    // Replication phase: ship each tenant to the replica — one full
    // snapshot, then two delta cuts straddling a seal — and hold the
    // replica to the same certified contract as the primary.
    let mut replica_probes = 0u64;
    let mut replica_contained = 0u64;
    let mut replicate_full_bytes = 0u64;
    let mut replicate_delta_bytes = 0u64;
    if let Some(replica_addr) = &cfg.replicate {
        let mut src = Client::connect(&cfg.addr as &str)?;
        let mut dst = Client::connect(replica_addr as &str)?;
        for tenant in 0..cfg.tenants {
            let truth = tenant_truth.get_mut(&tenant).expect("tenant was driven");
            let mut hottest = truth.to_pairs();
            hottest.sort_by_key(|&(_, v)| core::cmp::Reverse(v));
            let hot: Vec<u64> = hottest
                .into_iter()
                .take(cfg.probes.max(1))
                .map(|(k, _)| k)
                .collect();
            let extra: Vec<(u64, u64)> = hot.iter().map(|&k| (k, 1u64)).collect();

            // Ship 1: the first delta cut carries a full snapshot (it
            // establishes the dirty-bitmap baseline on the primary).
            let full = src.snapshot(tenant, SnapshotKind::Delta)?;
            replicate_full_bytes += full.len() as u64;
            dst.push_delta(tenant, &full)?;

            // Ship 2: dirty the hot keys, cut a (small) delta.
            src.ingest(tenant, &extra)?;
            for &k in &hot {
                truth.insert(&k, 1);
            }
            let d1 = src.snapshot(tenant, SnapshotKind::Delta)?;
            replicate_delta_bytes += d1.len() as u64;
            dst.push_delta(tenant, &d1)?;

            // Ship 3: seal (one rotation — the delta carries the frozen
            // generation's changes plus the fresh active), dirty again.
            src.seal(tenant)?;
            src.ingest(tenant, &extra)?;
            for &k in &hot {
                truth.insert(&k, 1);
            }
            let d2 = src.snapshot(tenant, SnapshotKind::Delta)?;
            replicate_delta_bytes += d2.len() as u64;
            dst.push_delta(tenant, &d2)?;

            // The replica must now certify the same truth, over both
            // the full window and the slim-digest query path.
            for &k in &hot {
                let want = truth.freq(&k);
                replica_probes += 2;
                if dst.query_certified(tenant, k)?.contains(want) {
                    replica_contained += 1;
                }
                if dst.query_slim(tenant, k)?.contains(want) {
                    replica_contained += 1;
                }
            }
        }
    }

    let mut control = Client::connect(&cfg.addr as &str)?;
    let stats = control.stats()?;

    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    Ok(LoadReport {
        total_updates: total,
        batches,
        stalls,
        probes,
        probes_contained: contained,
        tenants: cfg.tenants,
        connections: cfg.connections,
        elapsed,
        mupdates_per_sec: total as f64 / secs / 1e6,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
        server_items: stats.items_ingested,
        server_rejected_batches: stats.rejected_batches,
        topk_probes,
        topk_contained,
        topk_recall_misses,
        subpop_probes,
        subpop_contained,
        replica_probes,
        replica_contained,
        replicate_full_bytes,
        replicate_delta_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, ServerHandle};
    use crate::tenant::SketchSpec;

    #[test]
    fn tiny_load_round_trips_and_certifies() {
        let server = ServerHandle::start(ServeConfig {
            accept_threads: 2,
            spec: SketchSpec {
                memory_bytes: 128 * 1024,
                error_tolerance: 25,
                seed: 3,
            },
            ..ServeConfig::default()
        })
        .unwrap();
        let cfg = LoadConfig {
            addr: server.local_addr().to_string(),
            tenants: 2,
            connections: 2,
            items_per_connection: 4096,
            batch: 512,
            window: 4,
            universe: 2_000,
            probes: 16,
            ..LoadConfig::default()
        };
        let report = run(&cfg).unwrap();
        assert_eq!(report.total_updates, cfg.total_updates());
        assert_eq!(report.server_items, cfg.total_updates());
        assert_eq!(report.probes, 32);
        assert_eq!(
            report.probes_contained, report.probes,
            "every certified interval must contain the exact truth"
        );
        assert_eq!(report.batches, 2 * 2 * 8);
        // Two tenants × k = 16 heavy hitters (the summaries hold far
        // more than 16 promoted elephants at this load).
        assert_eq!(report.topk_probes, 2 * 16);
        assert_eq!(
            report.topk_contained, report.topk_probes,
            "every top-K interval must contain the exact truth"
        );
        assert_eq!(
            report.topk_recall_misses, 0,
            "no true heavy key above floor + slack may go unreported"
        );
        // Two tenants × four predicate shapes.
        assert_eq!(report.subpop_probes, 2 * 4);
        assert_eq!(
            report.subpop_contained, report.subpop_probes,
            "every subpopulation interval must contain the exact subset truth"
        );
        assert_eq!(report.replica_probes, 0, "no replica was configured");
        server.shutdown();
    }

    #[test]
    fn load_replicates_every_tenant_to_a_second_server() {
        let spec = SketchSpec {
            memory_bytes: 128 * 1024,
            error_tolerance: 25,
            seed: 3,
        };
        let primary = ServerHandle::start(ServeConfig {
            accept_threads: 2,
            spec,
            ..ServeConfig::default()
        })
        .unwrap();
        let replica = ServerHandle::start(ServeConfig {
            accept_threads: 2,
            spec,
            ..ServeConfig::default()
        })
        .unwrap();
        let cfg = LoadConfig {
            addr: primary.local_addr().to_string(),
            replicate: Some(replica.local_addr().to_string()),
            tenants: 2,
            connections: 2,
            items_per_connection: 4096,
            batch: 512,
            window: 4,
            universe: 2_000,
            probes: 16,
            ..LoadConfig::default()
        };
        let report = run(&cfg).unwrap();
        // tenants × hot keys × two query paths (certified + slim).
        assert_eq!(report.replica_probes, 2 * 16 * 2);
        assert_eq!(
            report.replica_contained, report.replica_probes,
            "every replica answer must contain the exact truth"
        );
        assert!(
            report.replicate_delta_bytes < report.replicate_full_bytes,
            "two delta cuts ({} B) must undercut the full snapshots ({} B)",
            report.replicate_delta_bytes,
            report.replicate_full_bytes
        );
        // The replica counted its applied payloads: 3 ships per tenant.
        assert_eq!(replica.stats().replications(), 2 * 3);
        primary.shutdown();
        replica.shutdown();
    }
}
