//! The thread-per-core TCP server.
//!
//! No async runtime: a fixed pool of accept threads (one per core by
//! default) blocks on a shared `std::net::TcpListener`, and each
//! accepted connection gets a plain blocking handler thread. The data
//! plane scales because the per-tenant sketches absorb concurrent
//! ingest lock-free — threads are an OS-level concern here, not a
//! throughput mechanism, so the simplest possible threading model wins.
//!
//! Backpressure is layered:
//!
//! - **connection ceiling** — accepts beyond `max_connections` are
//!   answered with a [`Response::Error`] carrying
//!   [`ErrorCode::TooManyConnections`] and closed immediately;
//! - **batch ceiling** — `Ingest` frames carrying more than `max_batch`
//!   items are refused with [`ErrorCode::BatchTooLarge`] (the frame is
//!   consumed; the connection lives on);
//! - **TCP flow control** — each connection's acks are written to the
//!   same socket the requests arrive on, so a client that stops reading
//!   acks eventually stops being able to write. `rsk-load`'s bounded
//!   credit window (see [`crate::load`]) is the cooperating client half.
//!
//! Shutdown: a `Shutdown` frame (or [`ServerHandle::shutdown`]) flips a
//! flag, wakes every accept thread with a loopback dial, and joins all
//! threads. Connection handlers poll the flag via a read timeout, so
//! idle connections notice within [`POLL_INTERVAL`].

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::protocol::{
    read_frame, send_response, ErrorCode, ProtocolError, Request, Response, StatsReply, MAX_BATCH,
    MAX_FRAME_LEN,
};
use crate::tenant::{SketchSpec, TenantMap};

/// How often a blocked connection handler re-checks the stop flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration; `Default` is a loopback ephemeral-port setup
/// sized for tests.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Accept threads sharing the listener. `0` means one per
    /// available core.
    pub accept_threads: usize,
    /// Live-connection ceiling; accepts beyond it are refused.
    pub max_connections: usize,
    /// Per-frame ingest batch ceiling (≤ [`MAX_BATCH`]).
    pub max_batch: usize,
    /// Tenant-map lock stripes.
    pub stripes: usize,
    /// Sketch parameters for every tenant window.
    pub spec: SketchSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            accept_threads: 0,
            max_connections: 256,
            max_batch: MAX_BATCH,
            stripes: 16,
            spec: SketchSpec::default(),
        }
    }
}

/// Monotonic server-wide counters (all relaxed: they are observability,
/// not synchronisation).
#[derive(Default)]
pub struct ServerStats {
    items_ingested: AtomicU64,
    queries: AtomicU64,
    seals: AtomicU64,
    merges: AtomicU64,
    rejected_batches: AtomicU64,
    rejected_connections: AtomicU64,
    malformed_frames: AtomicU64,
    replications: AtomicU64,
}

impl ServerStats {
    /// Items folded in across all tenants.
    pub fn items_ingested(&self) -> u64 {
        self.items_ingested.load(Ordering::Relaxed)
    }

    /// `Query` + `QueryCertified` frames answered.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Ingest batches refused for exceeding the batch ceiling.
    pub fn rejected_batches(&self) -> u64 {
        self.rejected_batches.load(Ordering::Relaxed)
    }

    /// Connections refused at the connection ceiling.
    pub fn rejected_connections(&self) -> u64 {
        self.rejected_connections.load(Ordering::Relaxed)
    }

    /// Malformed payloads answered with an error frame.
    pub fn malformed_frames(&self) -> u64 {
        self.malformed_frames.load(Ordering::Relaxed)
    }

    /// Replication frames served: snapshots captured plus payloads
    /// applied (`Snapshot` + `PushDelta`, successes only).
    pub fn replications(&self) -> u64 {
        self.replications.load(Ordering::Relaxed)
    }
}

struct Shared {
    tenants: TenantMap,
    stats: ServerStats,
    stop: AtomicBool,
    live_connections: AtomicUsize,
    max_connections: usize,
    max_batch: usize,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running server: its bound address, its threads, and its state.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handles: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// Bind `config.addr` and start accepting.
    pub fn start(config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr as &str)?;
        let addr = listener.local_addr()?;
        let threads = if config.accept_threads == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            config.accept_threads
        };
        let shared = Arc::new(Shared {
            tenants: TenantMap::new(config.stripes, config.spec),
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
            live_connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            max_batch: config.max_batch.clamp(1, MAX_BATCH),
            conn_handles: Mutex::new(Vec::new()),
        });
        let listener = Arc::new(listener);
        let accept_handles = (0..threads.max(1))
            .map(|i| {
                let listener = Arc::clone(&listener);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rsk-serve-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &shared, addr))
                    .expect("spawn accept thread")
            })
            .collect();
        Ok(Self {
            addr,
            shared,
            accept_handles,
        })
    }

    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// Tenants materialised so far.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.len()
    }

    /// The sketch spec every tenant window is built from.
    pub fn spec(&self) -> &SketchSpec {
        self.shared.tenants.spec()
    }

    /// Stop accepting, wake blocked threads, and join everything.
    /// Idempotent; also invoked by a wire-level `Shutdown` frame.
    pub fn shutdown(mut self) {
        request_stop(&self.shared, self.addr);
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Block until every accept thread exits (i.e. until a wire-level
    /// `Shutdown` arrives). Used by the `rsk-serve` binary.
    pub fn join(mut self) {
        for h in self.accept_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self.shared.conn_handles.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn request_stop(shared: &Shared, addr: SocketAddr) {
    if shared.stop.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake every accept thread: each dial unblocks one accept() call.
    for _ in 0..64 {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err() {
            break;
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, addr: SocketAddr) {
    while !shared.stop.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if shared.live_connections.load(Ordering::SeqCst) >= shared.max_connections {
            shared
                .stats
                .rejected_connections
                .fetch_add(1, Ordering::Relaxed);
            let mut w = BufWriter::new(&stream);
            let _ = send_response(
                &mut w,
                &Response::Error {
                    code: ErrorCode::TooManyConnections,
                    message: format!(
                        "server is at its {} connection ceiling",
                        shared.max_connections
                    ),
                },
            );
            let _ = w.flush();
            continue;
        }
        shared.live_connections.fetch_add(1, Ordering::SeqCst);
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("rsk-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared2, addr);
                shared2.live_connections.fetch_sub(1, Ordering::SeqCst);
            })
            .expect("spawn connection thread");
        shared.conn_handles.lock().push(handle);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, addr: SocketAddr) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return Ok(()),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        };
        let response = match Request::decode(&payload) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let resp = dispatch(request, shared);
                if is_shutdown {
                    send_response(&mut writer, &resp)?;
                    writer.flush()?;
                    request_stop(shared, addr);
                    return Ok(());
                }
                resp
            }
            Err(e) => {
                shared
                    .stats
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    code: ErrorCode::Malformed,
                    message: malformed_message(&e),
                }
            }
        };
        send_response(&mut writer, &response)?;
        writer.flush()?;
    }
}

fn malformed_message(e: &ProtocolError) -> String {
    format!("malformed payload: {e}")
}

fn dispatch(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ingest { tenant, items } => {
            if items.len() > shared.max_batch {
                shared
                    .stats
                    .rejected_batches
                    .fetch_add(1, Ordering::Relaxed);
                return Response::Error {
                    code: ErrorCode::BatchTooLarge,
                    message: format!(
                        "batch of {} exceeds the {}-item ceiling",
                        items.len(),
                        shared.max_batch
                    ),
                };
            }
            shared.tenants.get_or_create(tenant).ingest(&items);
            shared
                .stats
                .items_ingested
                .fetch_add(items.len() as u64, Ordering::Relaxed);
            Response::IngestAck {
                accepted: items.len() as u32,
            }
        }
        Request::Query { tenant, key } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            Response::Value {
                value: shared.tenants.get_or_create(tenant).query(key),
            }
        }
        Request::QueryCertified { tenant, key } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let ans = shared.tenants.get_or_create(tenant).certified(key);
            Response::Certified {
                value: ans.value,
                max_possible_error: ans.max_possible_error,
                slack: ans.slack,
                epoch: ans.epoch,
            }
        }
        Request::Seal { tenant } => {
            shared.stats.seals.fetch_add(1, Ordering::Relaxed);
            Response::Sealed {
                epoch: shared.tenants.get_or_create(tenant).seal(),
            }
        }
        Request::Merge { dst, src } => match shared.tenants.merge(dst, src) {
            Ok(()) => {
                shared.stats.merges.fetch_add(1, Ordering::Relaxed);
                Response::Merged
            }
            Err(e) => Response::Error {
                code: ErrorCode::MergeRefused,
                message: e.to_string(),
            },
        },
        Request::Snapshot { tenant, kind } => {
            match shared.tenants.get_or_create(tenant).replicate_payload(kind) {
                Ok(payload) => {
                    // +2 for the version and opcode bytes, +4 for the
                    // blob length field.
                    if payload.len() + 6 > MAX_FRAME_LEN as usize {
                        Response::Error {
                            code: ErrorCode::ReplicateRefused,
                            message: format!(
                                "snapshot of {} bytes exceeds the {MAX_FRAME_LEN}-byte frame ceiling",
                                payload.len()
                            ),
                        }
                    } else {
                        shared.stats.replications.fetch_add(1, Ordering::Relaxed);
                        Response::Snapshot { payload }
                    }
                }
                Err(e) => Response::Error {
                    code: ErrorCode::ReplicateRefused,
                    message: e.to_string(),
                },
            }
        }
        Request::PushDelta { tenant, payload } => {
            match shared.tenants.get_or_create(tenant).apply_replica(&payload) {
                Ok(()) => {
                    shared.stats.replications.fetch_add(1, Ordering::Relaxed);
                    Response::Replicated
                }
                Err(e) => Response::Error {
                    code: ErrorCode::ReplicateRefused,
                    message: e.to_string(),
                },
            }
        }
        Request::SlimQuery { tenant, key } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let ans = shared.tenants.get_or_create(tenant).slim_certified(key);
            Response::Certified {
                value: ans.value,
                max_possible_error: ans.max_possible_error,
                slack: ans.slack,
                epoch: ans.epoch,
            }
        }
        Request::TopK { tenant, k } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let (top, slack, epoch) = shared.tenants.get_or_create(tenant).top_k(k as usize);
            Response::TopK {
                epoch,
                slack,
                floor: top.guaranteed_floor(),
                entries: top
                    .entries
                    .iter()
                    .map(|e| (e.key, e.count, e.error))
                    .collect(),
            }
        }
        Request::Subpop { tenant, set } => {
            shared.stats.queries.fetch_add(1, Ordering::Relaxed);
            let (w, epoch) = shared.tenants.get_or_create(tenant).subpop(&set);
            Response::Subpop {
                estimate: w.estimate,
                lo: w.lo,
                hi: w.hi,
                slack: w.slack,
                epoch,
            }
        }
        Request::Stats => Response::Stats(StatsReply {
            tenants: shared.tenants.len() as u32,
            connections: shared.live_connections.load(Ordering::SeqCst) as u32,
            items_ingested: shared.stats.items_ingested(),
            queries: shared.stats.queries(),
            seals: shared.stats.seals.load(Ordering::Relaxed),
            merges: shared.stats.merges.load(Ordering::Relaxed),
            rejected_batches: shared.stats.rejected_batches(),
            rejected_connections: shared.stats.rejected_connections(),
            replications: shared.stats.replications(),
        }),
        Request::Shutdown => Response::ShuttingDown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn tiny() -> ServeConfig {
        ServeConfig {
            accept_threads: 2,
            stripes: 4,
            spec: SketchSpec {
                memory_bytes: 64 * 1024,
                error_tolerance: 25,
                seed: 7,
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serve_ingest_query_seal_merge_stats() {
        let server = ServerHandle::start(tiny()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        assert_eq!(client.ingest(1, &[(42, 10), (42, 5), (7, 3)]).unwrap(), 3);
        let ans = client.query_certified(1, 42).unwrap();
        assert!(ans.contains(15), "{ans:?}");
        assert_eq!(client.query(1, 99).unwrap(), 0);

        let sealed = client.seal(1).unwrap();
        assert_eq!(sealed, 1);
        client.ingest(1, &[(42, 1)]).unwrap();
        assert!(client.query_certified(1, 42).unwrap().contains(16));

        client.ingest(2, &[(42, 100)]).unwrap();
        client.merge(2, 1).unwrap();
        assert!(client.query_certified(2, 42).unwrap().contains(116));
        // Tenant 1 unchanged by the merge.
        assert!(client.query_certified(1, 42).unwrap().contains(16));

        let stats = client.stats().unwrap();
        assert_eq!(stats.items_ingested, 5);
        assert_eq!(stats.seals, 1);
        assert_eq!(stats.merges, 1);
        assert!(stats.tenants >= 2);

        drop(client);
        server.shutdown();
    }

    #[test]
    fn serve_subpop_answers_certified_aggregates() {
        use rsk_api::KeySet;

        let server = ServerHandle::start(tiny()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        client
            .ingest(1, &[(10, 100), (11, 200), (12, 300), (500, 9)])
            .unwrap();
        client.seal(1).unwrap();
        client.ingest(1, &[(10, 50)]).unwrap();

        // Explicit, range, and mask predicates all certify the truth.
        let ans = client
            .subpop(1, &KeySet::explicit(vec![10, 11, 12]))
            .unwrap();
        assert!(ans.contains(650), "{ans:?}");
        assert_eq!(ans.epoch, 1);
        let ans = client.subpop(1, &KeySet::range(10, 12)).unwrap();
        assert!(ans.contains(650), "{ans:?}");
        // mask = !0b111 constrains all but the low 3 bits: {8..=15} ∩ keys.
        let ans = client.subpop(1, &KeySet::mask(8, !0b111u64)).unwrap();
        assert!(ans.contains(650), "{ans:?}");

        // The empty subset is exactly zero; the full universe covers the
        // total stream weight.
        let ans = client.subpop(1, &KeySet::explicit(vec![])).unwrap();
        assert_eq!(ans.weight.estimate, 0);
        assert_eq!(ans.weight.hi, 0);
        let ans = client.subpop(1, &KeySet::mask(0, 0)).unwrap();
        assert!(ans.contains(659), "{ans:?}");

        drop(client);
        server.shutdown();
    }

    #[test]
    fn oversized_batch_is_refused_but_connection_survives() {
        let mut config = tiny();
        config.max_batch = 4;
        let server = ServerHandle::start(config).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let big: Vec<(u64, u64)> = (0..8).map(|i| (i, 1)).collect();
        let err = client.ingest(3, &big).unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server {
                code: ErrorCode::BatchTooLarge,
                ..
            }
        ));
        // Same connection keeps working.
        assert_eq!(client.ingest(3, &[(1, 1)]).unwrap(), 1);
        assert_eq!(server.stats().rejected_batches(), 1);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn replication_ships_a_tenant_across_servers() {
        use crate::protocol::SnapshotKind;

        let primary = ServerHandle::start(tiny()).unwrap();
        let replica = ServerHandle::start(tiny()).unwrap();
        let mut src = Client::connect(primary.local_addr()).unwrap();
        let mut dst = Client::connect(replica.local_addr()).unwrap();

        // Full snapshot ships the whole window.
        src.ingest(1, &[(42, 10), (7, 3)]).unwrap();
        let full = src.snapshot(1, SnapshotKind::Full).unwrap();
        dst.push_delta(1, &full).unwrap();
        assert!(dst.query_certified(1, 42).unwrap().contains(10));

        // A delta cut establishes the baseline; subsequent cuts ship
        // only dirtied buckets, which the replica folds on top.
        let baseline = src.snapshot(1, SnapshotKind::Delta).unwrap();
        dst.push_delta(1, &baseline).unwrap();
        src.ingest(1, &[(42, 5)]).unwrap();
        let delta = src.snapshot(1, SnapshotKind::Delta).unwrap();
        assert!(delta.len() < baseline.len(), "delta should undercut full");
        dst.push_delta(1, &delta).unwrap();
        assert!(dst.query_certified(1, 42).unwrap().contains(15));

        // Slim payloads answer standalone, and the slim query path on
        // the replica certifies the same truth.
        let slim = src.snapshot(1, SnapshotKind::Slim).unwrap();
        assert!(slim.len() < full.len());
        assert!(dst.query_slim(1, 42).unwrap().contains(15));

        // Garbage is refused without poisoning the connection.
        let err = dst.push_delta(1, b"not a payload").unwrap_err();
        assert!(matches!(
            err,
            crate::client::ClientError::Server {
                code: ErrorCode::ReplicateRefused,
                ..
            }
        ));
        assert!(dst.query_certified(1, 42).unwrap().contains(15));

        // Both sides counted their replication frames.
        assert!(src.stats().unwrap().replications >= 3);
        assert!(dst.stats().unwrap().replications >= 3);

        drop((src, dst));
        primary.shutdown();
        replica.shutdown();
    }

    #[test]
    fn wire_shutdown_stops_the_server() {
        let server = ServerHandle::start(tiny()).unwrap();
        let addr = server.local_addr();
        let mut client = Client::connect(addr).unwrap();
        client.shutdown().unwrap();
        drop(client);
        server.join();
        // The listener is gone (give the OS a beat to reap it).
        std::thread::sleep(Duration::from_millis(50));
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }
}
