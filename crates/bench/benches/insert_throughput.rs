//! Figure 10 (insertion half): insertion throughput of every algorithm
//! at the same memory budget on the same IP-trace-like stream.
//!
//! Criterion reports time per batch of `BENCH_ITEMS` items; Mpps =
//! items / time. The paper's ordering to expect: Ours(Raw) ≈ CM_fast ≈
//! Coco ≈ HashPipe > CU_fast ≈ Elastic ≈ PRECISION > Ours(filtered) >
//! CM_acc / CU_acc / SS.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rsk_bench::{figure10_lineup, rebuild, BENCH_ITEMS};
use rsk_stream::Dataset;

fn bench_insert(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(BENCH_ITEMS, 11);
    let mut g = c.benchmark_group("insert_throughput");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    for (label, _probe) in figure10_lineup(11) {
        g.bench_function(&label, |b| {
            b.iter_batched(
                || rebuild(&label, 11),
                |mut sk| {
                    for it in &stream {
                        sk.insert(&it.key, it.value);
                    }
                    sk
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
