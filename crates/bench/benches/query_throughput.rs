//! Figure 10 (query half): point-query throughput of every algorithm on
//! a pre-populated sketch.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rsk_bench::{figure10_lineup, BENCH_ITEMS};
use rsk_stream::Dataset;

fn bench_query(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(BENCH_ITEMS, 13);
    let keys: Vec<u64> = stream.iter().map(|it| it.key).collect();

    let mut g = c.benchmark_group("query_throughput");
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.sample_size(10);

    for (label, mut sk) in figure10_lineup(13) {
        for it in &stream {
            sk.insert(&it.key, it.value);
        }
        g.bench_function(&label, |b| {
            b.iter(|| {
                let mut sink = 0u64;
                for k in &keys {
                    sink = sink.wrapping_add(sk.query(black_box(k)));
                }
                sink
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
