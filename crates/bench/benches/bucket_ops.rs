//! Error-Sensible Bucket micro-benchmarks: the inner loop of every
//! ReliableSketch operation (paper §3.1), in its three regimes —
//! candidate hit, negative vote, and replacement churn.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rsk_core::EsBucket;

fn bench_bucket(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_ops");
    g.throughput(Throughput::Elements(1));

    g.bench_function("insert/candidate_hit", |b| {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 1_000_000); // entrenched candidate
        b.iter(|| bk.insert(black_box(&1u64), black_box(1)))
    });

    g.bench_function("insert/negative_vote", |b| {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, u64::MAX / 2); // candidate never displaced
        b.iter(|| bk.insert(black_box(&2u64), black_box(1)))
    });

    g.bench_function("insert/replacement_churn", |b| {
        // alternating keys force a replacement on every second insert
        let mut bk = EsBucket::new();
        let mut flip = 0u64;
        b.iter(|| {
            flip ^= 1;
            bk.insert(black_box(&flip), black_box(1));
        })
    });

    g.bench_function("query/hit", |b| {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 500);
        b.iter(|| bk.query(black_box(&1u64)))
    });

    g.bench_function("query/miss", |b| {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 500);
        b.iter(|| bk.query(black_box(&9u64)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_bucket
}
criterion_main!(benches);
