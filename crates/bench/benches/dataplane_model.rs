//! Dataplane model benchmarks: the Tofino-constrained variant vs the CPU
//! version on identical streams (behavioural cost of §5.2's encoding),
//! plus byte-valued insertion for the Figure 20 workload.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rsk_bench::{BENCH_ITEMS, BENCH_MEMORY};
use rsk_core::ReliableSketch;
use rsk_dataplane::TofinoReliable;
use rsk_stream::packets::PacketSizeModel;
use rsk_stream::Dataset;

fn bench_dataplane(c: &mut Criterion) {
    let unit = Dataset::IpTrace.generate(BENCH_ITEMS, 23);
    let bytes = PacketSizeModel::internet_mix().apply(&unit, 23);

    let mut g = c.benchmark_group("dataplane_model");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    g.bench_function("cpu_raw/unit_values", |b| {
        b.iter_batched(
            || {
                ReliableSketch::<u64>::builder()
                    .memory_bytes(BENCH_MEMORY)
                    .error_tolerance(25)
                    .raw()
                    .seed(23)
                    .build::<u64>()
            },
            |mut sk| {
                for it in &unit {
                    rsk_api::StreamSummary::insert(&mut sk, &it.key, it.value);
                }
                sk
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("tofino_model/unit_values", |b| {
        b.iter_batched(
            || TofinoReliable::<u64>::new(BENCH_MEMORY, 25, 23),
            |mut sw| {
                for it in &unit {
                    rsk_api::StreamSummary::insert(&mut sw, &it.key, it.value);
                }
                sw
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("tofino_model/byte_values", |b| {
        b.iter_batched(
            || TofinoReliable::<u64>::new(BENCH_MEMORY, 17_000, 23),
            |mut sw| {
                for it in &bytes {
                    rsk_api::StreamSummary::insert(&mut sw, &it.key, it.value);
                }
                sw
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_dataplane);
criterion_main!(benches);
