//! Merge-cost benchmarks (beyond-paper extension).
//!
//! Measures (a) the fold cost of merging identically configured
//! ReliableSketch shards as a function of memory size, (b) the same for
//! the linear CM baseline — the fold is pure counter addition, giving an
//! upper reference for merge speed — and (c) the end-to-end advantage of
//! shard-then-fold over sequential single-sketch ingestion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsk_api::{Merge, StreamSummary};
use rsk_baselines::cm::CmSketch;
use rsk_core::{EmergencyPolicy, ReliableSketch};
use rsk_stream::Dataset;

const SEED: u64 = 4242;

fn loaded_shards(memory: usize, items: usize) -> (ReliableSketch<u64>, ReliableSketch<u64>) {
    let build = || {
        ReliableSketch::<u64>::builder()
            .memory_bytes(memory)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(SEED)
            .build::<u64>()
    };
    let stream = Dataset::IpTrace.generate(items, 3);
    let mut a = build();
    let mut b = build();
    for (i, it) in stream.iter().enumerate() {
        if i % 2 == 0 {
            a.insert(&it.key, it.value);
        } else {
            b.insert(&it.key, it.value);
        }
    }
    (a, b)
}

fn bench_reliable_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge/reliable");
    for memory_kb in [64usize, 256, 1024] {
        let (a, b) = loaded_shards(memory_kb * 1024, 200_000);
        group.throughput(Throughput::Bytes((memory_kb * 1024) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{memory_kb}KB")),
            &memory_kb,
            |bench, _| {
                bench.iter_batched(
                    || a.clone(),
                    |mut acc| {
                        acc.merge(&b).unwrap();
                        acc
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_cm_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge/cm_reference");
    for memory_kb in [64usize, 256, 1024] {
        let stream = Dataset::IpTrace.generate(200_000, 3);
        let mut a = CmSketch::<u64>::fast(memory_kb * 1024, SEED);
        let mut b = CmSketch::<u64>::fast(memory_kb * 1024, SEED);
        for (i, it) in stream.iter().enumerate() {
            if i % 2 == 0 {
                a.insert(&it.key, it.value);
            } else {
                b.insert(&it.key, it.value);
            }
        }
        group.throughput(Throughput::Bytes((memory_kb * 1024) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{memory_kb}KB")),
            &memory_kb,
            |bench, _| {
                bench.iter_batched(
                    || a.clone(),
                    |mut acc| {
                        acc.merge(&b).unwrap();
                        acc
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_query_after_merge(c: &mut Criterion) {
    // merged sketches descend further on flagged buckets; quantify the
    // query-side cost relative to an unmerged sketch of the same content
    let stream = Dataset::IpTrace.generate(400_000, 5);
    let mut single = ReliableSketch::<u64>::builder()
        .memory_bytes(256 * 1024)
        .error_tolerance(25)
        .seed(SEED)
        .build::<u64>();
    for it in &stream {
        single.insert(&it.key, it.value);
    }
    let (mut a, b) = loaded_shards(256 * 1024, 400_000);
    a.merge(&b).unwrap();

    let keys: Vec<u64> = stream.iter().take(10_000).map(|it| it.key).collect();
    let mut group = c.benchmark_group("merge/query_cost");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("single_pass", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc = acc.wrapping_add(single.query(k));
            }
            acc
        })
    });
    group.bench_function("merged", |bench| {
        bench.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc = acc.wrapping_add(a.query(k));
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reliable_merge,
    bench_cm_merge,
    bench_query_after_merge
);
criterion_main!(benches);
