//! Ablation of the Double Exponential Control (paper §3.2, Figures
//! 11–13): how `(R_w, R_λ)` affect insertion cost, and what happens when
//! the geometric width schedule is replaced by the arithmetic one the
//! paper warns against ("would thoroughly undermine the complexity").
//!
//! The arithmetic variant is emulated by a near-flat decay rate
//! (`R_w → 1⁺`), which levels the layer widths the way a linear schedule
//! does — deep layers stay large, keys travel further, and the accuracy
//! per byte collapses. The companion accuracy numbers are printed by
//! `repro fig11`/`fig13`; here we measure the speed side.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rsk_bench::{BENCH_ITEMS, BENCH_MEMORY};
use rsk_core::{MiceFilterConfig, ReliableConfig, ReliableSketch};
use rsk_stream::Dataset;

fn build(r_w: f64, r_lambda: f64) -> ReliableSketch<u64> {
    ReliableSketch::new(ReliableConfig {
        memory_bytes: BENCH_MEMORY,
        lambda: 25,
        r_w,
        r_lambda,
        mice_filter: Some(MiceFilterConfig::default()),
        seed: 17,
        ..Default::default()
    })
}

fn bench_params(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(BENCH_ITEMS, 17);
    let mut g = c.benchmark_group("parameter_ablation");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    // the paper's recommended range and the degenerate near-arithmetic end
    let cases = [
        ("Rw1.05_arithmetic-like", 1.05, 2.5),
        ("Rw1.4", 1.4, 2.5),
        ("Rw2_paper_default", 2.0, 2.5),
        ("Rw4", 4.0, 2.5),
        ("Rw9", 9.0, 2.5),
        ("Rl1.2", 2.0, 1.2),
        ("Rl2.5_paper_default", 2.0, 2.5),
        ("Rl9", 2.0, 9.0),
    ];

    for (name, r_w, r_l) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || build(r_w, r_l),
                |mut sk| {
                    for it in &stream {
                        rsk_api::StreamSummary::insert(&mut sk, &it.key, it.value);
                    }
                    sk
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_params);
criterion_main!(benches);
