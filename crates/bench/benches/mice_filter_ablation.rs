//! Mice-filter ablation (paper §3.3 and Figure 16): the filter trades
//! two extra hash calls per operation for a ~10× cheaper first layer.
//!
//! Variants: no filter (Raw), the paper's 2-bit/2-array default, an
//! 8-bit/2-array variant (the §3.3 "8-bit counters are adequate"
//! setting), and heavier fractions of the memory budget.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rsk_bench::{BENCH_ITEMS, BENCH_MEMORY};
use rsk_core::{MiceFilterConfig, ReliableConfig, ReliableSketch};
use rsk_stream::Dataset;

fn build(filter: Option<MiceFilterConfig>) -> ReliableSketch<u64> {
    ReliableSketch::new(ReliableConfig {
        memory_bytes: BENCH_MEMORY,
        lambda: 25,
        mice_filter: filter,
        seed: 19,
        ..Default::default()
    })
}

fn bench_filter(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(BENCH_ITEMS, 19);
    let mut g = c.benchmark_group("mice_filter_ablation");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    let cases: Vec<(&str, Option<MiceFilterConfig>)> = vec![
        ("raw_no_filter", None),
        (
            "2bit_20pct_paper_default",
            Some(MiceFilterConfig::default()),
        ),
        (
            "8bit_20pct",
            Some(MiceFilterConfig {
                counter_bits: 8,
                ..Default::default()
            }),
        ),
        (
            "2bit_40pct",
            Some(MiceFilterConfig {
                memory_fraction: 0.4,
                ..Default::default()
            }),
        ),
        (
            "4bit_20pct_4arrays",
            Some(MiceFilterConfig {
                counter_bits: 4,
                arrays: 4,
                ..Default::default()
            }),
        ),
    ];

    for (name, filter) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || build(filter),
                |mut sk| {
                    for it in &stream {
                        rsk_api::StreamSummary::insert(&mut sk, &it.key, it.value);
                    }
                    sk
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
