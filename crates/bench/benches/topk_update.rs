//! The certified top-K layer's cost model: per-insert maintenance and
//! answer extraction.
//!
//! The layer is a count-bucket doubly-linked list (Stream-Summary
//! shape), so increment, promote, and evict are all O(1) — per-insert
//! cost must stay **flat as capacity grows** (64 → 1024 entries), unlike
//! a heap's O(log k). The `disabled` row is the same sketch without the
//! layer: the gap between it and any capacity row is the layer's whole
//! per-insert overhead.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rsk_api::{StreamSummary, TopK};
use rsk_core::ReliableSketch;
use rsk_stream::{Dataset, Item};

const SEED: u64 = 9090;
const ITEMS: usize = 100_000;

fn fresh(top_k: Option<usize>) -> ReliableSketch<u64> {
    let sk = ReliableSketch::<u64>::builder()
        .memory_bytes(512 * 1024)
        .error_tolerance(25)
        .seed(SEED)
        .build::<u64>();
    match top_k {
        Some(capacity) => sk.with_top_k(capacity),
        None => sk,
    }
}

fn ingest(mut sk: ReliableSketch<u64>, stream: &[Item<u64>]) -> ReliableSketch<u64> {
    for it in stream {
        sk.insert(&it.key, it.value);
    }
    sk
}

/// Per-insert maintenance: flat across capacities is the O(1) claim.
fn bench_topk_update(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(ITEMS, 3);
    let mut group = c.benchmark_group("topk/update");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("disabled", |bench| {
        bench.iter_batched(
            || fresh(None),
            |sk| ingest(sk, &stream),
            BatchSize::LargeInput,
        )
    });
    for capacity in [64usize, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |bench, &cap| {
                bench.iter_batched(
                    || fresh(Some(cap)),
                    |sk| ingest(sk, &stream),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

/// Answer extraction: sorting the monitored entries is O(capacity log
/// capacity), paid per query, not per insert.
fn bench_topk_answer(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(ITEMS, 3);
    let mut group = c.benchmark_group("topk/answer");
    for capacity in [64usize, 256, 1024] {
        let sk = ingest(fresh(Some(capacity)), &stream);
        group.bench_with_input(
            BenchmarkId::from_parameter(capacity),
            &capacity,
            |bench, _| bench.iter(|| sk.certified_top_k(16).entries.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topk_update, bench_topk_answer);
criterion_main!(benches);
