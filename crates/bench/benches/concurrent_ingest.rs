//! Multi-core ingestion throughput: the lock-free sharded data path
//! against the single-thread baseline on a Zipf stream.
//!
//! Mirrors the paper's pipelined-hardware speed story on CPUs: one
//! `ReliableSketch` ingesting sequentially, the batch-amortized
//! sequential path, and `ShardedReliable::ingest_parallel` at 1/2/4/8
//! workers over 8 lock-free shards — in both the filtered (atomic CU
//! mice filter) and "Raw" variants, so the filter's cost/benefit on the
//! lock-free hot path is visible, and under both phase-2 scheduling
//! policies (`sharded` = static ticket, `sharded_ws` = work stealing).
//! A second group (`hot_shard`) repeats the policy race on a skew-3.0
//! stream whose rank-1 key heats a single shard — the regime the
//! work-stealing scheduler exists for. Mops/s = elements / time. On a
//! multi-core box the 8-worker row should clear 3× the single-thread
//! baseline; on fewer cores it degrades gracefully to the batching gain.
//! On the Zipf mouse tail, the filtered rows trade two extra hashes per
//! item for far fewer bucket CAS walks.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rsk_api::IngestPolicy;
use rsk_bench::{concurrent_config, sharded, sharded_raw, BENCH_ITEMS};
use rsk_core::ReliableSketch;
use rsk_stream::Dataset;

const SEED: u64 = 17;
const SHARDS: usize = 8;

fn bench_concurrent_ingest(c: &mut Criterion) {
    let stream = Dataset::Zipf { skew: 1.05 }.generate(BENCH_ITEMS, SEED);
    let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();

    let mut g = c.benchmark_group("concurrent_ingest");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    g.bench_function("sequential_1thread", |b| {
        b.iter_batched(
            || ReliableSketch::<u64>::new(concurrent_config(SEED)),
            |mut sk| {
                for (k, v) in &items {
                    rsk_api::StreamSummary::insert(&mut sk, k, *v);
                }
                sk
            },
            BatchSize::LargeInput,
        )
    });

    g.bench_function("sequential_batched", |b| {
        b.iter_batched(
            || ReliableSketch::<u64>::new(concurrent_config(SEED)),
            |mut sk| {
                sk.insert_batch(&items);
                sk
            },
            BatchSize::LargeInput,
        )
    });

    for workers in [1usize, 2, 4, 8] {
        g.bench_function(
            BenchmarkId::new("sharded", format!("{workers}workers")),
            |b| {
                b.iter_batched(
                    || sharded(SEED, SHARDS),
                    |sh| {
                        sh.ingest_parallel(&items, workers);
                        sh
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        g.bench_function(
            BenchmarkId::new("sharded_raw", format!("{workers}workers")),
            |b| {
                b.iter_batched(
                    || sharded_raw(SEED, SHARDS),
                    |sh| {
                        sh.ingest_parallel(&items, workers);
                        sh
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        g.bench_function(
            BenchmarkId::new("sharded_ws", format!("{workers}workers")),
            |b| {
                b.iter_batched(
                    || sharded(SEED, SHARDS),
                    |sh| {
                        sh.ingest_parallel_with(&items, workers, IngestPolicy::work_stealing());
                        sh
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

/// The skewed regime: Zipf 3.0 routes the rank-1 key's mass to one
/// shard, so the static ticket convoys behind the hot unit while the
/// stealing schedule keeps the remaining workers busy on the tail.
fn bench_hot_shard(c: &mut Criterion) {
    let stream = Dataset::Zipf { skew: 3.0 }.generate(BENCH_ITEMS, SEED);
    let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();

    let mut g = c.benchmark_group("hot_shard");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);
    const WORKERS: usize = 4;
    // more shards than workers, so the static claim order can strand
    // light shards behind the hot one — the case stealing repairs
    const HOT_SHARDS: usize = 16;
    for (name, policy) in [
        ("static", IngestPolicy::Static),
        ("work_stealing", IngestPolicy::work_stealing()),
    ] {
        g.bench_function(BenchmarkId::new(name, format!("{WORKERS}workers")), |b| {
            b.iter_batched(
                || sharded(SEED, HOT_SHARDS),
                |sh| {
                    sh.ingest_parallel_with(&items, WORKERS, policy);
                    sh
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_concurrent_ingest, bench_hot_shard);
criterion_main!(benches);
