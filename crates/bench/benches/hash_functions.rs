//! Hashing micro-benchmarks: the per-call cost that Figure 16 counts.
//!
//! MurmurHash3-32 over 8-byte keys is the unit of "one hash call" in the
//! paper's speed analysis; SplitMix64 is the workload generator's mixer.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rsk_hash::{fnv1a64, murmur3_x64_128, murmur3_x86_32, splitmix64, HashFamily};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_functions");
    g.throughput(Throughput::Elements(1));

    let key8 = 0xdead_beef_cafe_f00du64.to_le_bytes();
    g.bench_function("murmur3_x86_32/8B", |b| {
        b.iter(|| murmur3_x86_32(black_box(&key8), black_box(7)))
    });
    g.bench_function("murmur3_x64_128/8B", |b| {
        b.iter(|| murmur3_x64_128(black_box(&key8), black_box(7)))
    });
    g.bench_function("fnv1a64/8B", |b| {
        b.iter(|| fnv1a64(black_box(&key8), black_box(7)))
    });
    g.bench_function("splitmix64", |b| {
        b.iter(|| splitmix64(black_box(0x1234_5678_9abc_def0)))
    });

    let key13 = [7u8; 13];
    g.bench_function("murmur3_x86_32/13B-5tuple", |b| {
        b.iter(|| murmur3_x86_32(black_box(&key13), black_box(7)))
    });

    let fam = HashFamily::new(16, 3);
    g.bench_function("family_index/u64", |b| {
        b.iter(|| fam.index(black_box(3), black_box(&42u64), black_box(65_536)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_hashes
}
criterion_main!(benches);
