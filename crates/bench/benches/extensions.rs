//! Benchmarks of the beyond-paper extensions: epoch rotation cost, the
//! two-generation query overhead, and snapshot capture/restore cost —
//! the operational numbers a deployment plans around.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsk_api::{ErrorSensing, StreamSummary};
use rsk_core::epoch::EpochedReliable;
use rsk_core::{EmergencyPolicy, ReliableSketch};
use rsk_stream::Dataset;

const SEED: u64 = 9090;

fn loaded_window(memory: usize, items: usize) -> EpochedReliable<u64> {
    let mut w: EpochedReliable<u64> = EpochedReliable::<u64>::builder()
        .memory_bytes(memory)
        .error_tolerance(25)
        .emergency(EmergencyPolicy::ExactTable)
        .seed(SEED)
        .build_epoched();
    let stream = Dataset::IpTrace.generate(items, 3);
    for (i, it) in stream.iter().enumerate() {
        if i == items / 2 {
            w.rotate();
        }
        w.insert(&it.key, it.value);
    }
    w
}

fn bench_epoch_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions/rotate");
    for memory_kb in [64usize, 512] {
        let w = loaded_window(memory_kb * 1024, 100_000);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{memory_kb}KB")),
            &memory_kb,
            |bench, _| {
                bench.iter_batched(
                    || w.clone(),
                    |mut win| {
                        win.rotate();
                        win
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_epoch_query_overhead(c: &mut Criterion) {
    // two-generation queries walk both structures; quantify vs a single
    // sketch holding the same stream
    let stream = Dataset::IpTrace.generate(200_000, 3);
    let mut single = ReliableSketch::<u64>::builder()
        .memory_bytes(512 * 1024)
        .error_tolerance(25)
        .seed(SEED)
        .build::<u64>();
    for it in &stream {
        single.insert(&it.key, it.value);
    }
    let window = loaded_window(512 * 1024, 200_000);
    let keys: Vec<u64> = stream.iter().take(10_000).map(|it| it.key).collect();

    let mut group = c.benchmark_group("extensions/window_query");
    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function("single_sketch", |bench| {
        bench.iter(|| {
            keys.iter()
                .map(|k| single.query_with_error(k).value)
                .sum::<u64>()
        })
    });
    group.bench_function("two_generations", |bench| {
        bench.iter(|| {
            keys.iter()
                .map(|k| window.query_with_error(k).value)
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let stream = Dataset::IpTrace.generate(200_000, 3);
    let mut sk = ReliableSketch::<u64>::builder()
        .memory_bytes(512 * 1024)
        .error_tolerance(25)
        .emergency(EmergencyPolicy::ExactTable)
        .seed(SEED)
        .build::<u64>();
    for it in &stream {
        sk.insert(&it.key, it.value);
    }
    let json = serde_json::to_string(&sk.snapshot()).unwrap();

    let mut group = c.benchmark_group("extensions/snapshot");
    group.throughput(Throughput::Bytes(json.len() as u64));
    group.bench_function("capture_and_serialize", |bench| {
        bench.iter(|| serde_json::to_string(&sk.snapshot()).unwrap().len())
    });
    group.bench_function("parse_and_restore", |bench| {
        bench.iter(|| {
            let parsed = serde_json::from_str(&json).unwrap();
            ReliableSketch::<u64>::restore(parsed).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_epoch_rotation,
    bench_epoch_query_overhead,
    bench_snapshot_roundtrip
);
criterion_main!(benches);
