//! Single-core batched-ingest throughput: the ISSUE-9 SIMD +
//! cache-conscious hot path against the scalar item loop.
//!
//! Two groups:
//!
//! * `simd_ingest` — item-loop baseline vs `insert_batch` across batch
//!   sizes, for the sequential and the lock-free sketch, filtered and
//!   raw. Lane labels carry [`rsk_core::simd::backend()`], so a run with
//!   `--features simd` reports `lanes-x4` rows and a default run reports
//!   `scalar` rows — same binary layout, directly comparable. The batched
//!   rows must never be *slower* than the item loop (the fallback is the
//!   same code path); with the feature on, the lane-hash + prescan win
//!   shows up as the gap between backends.
//! * `hot_line` — the prefetch story in isolation: a sketch sized far
//!   beyond L2 ingesting a max-entropy stream, so every layer-0 touch is
//!   a cache miss. Batched ingest hides the DRAM round trip by touching
//!   bucket lines [`rsk_core::simd::PREFETCH_DISTANCE`] items ahead;
//!   the item loop eats the misses serially.
//!
//! Mops/s = elements / time (the single-core Mpps column of the
//! throughput figure is produced by `rsk-exp`, not by this bench).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use rsk_api::StreamSummary;
use rsk_bench::{concurrent_config, BENCH_ITEMS};
use rsk_core::{simd, ConcurrentReliable, ReliableConfig, ReliableSketch};
use rsk_stream::Dataset;

const SEED: u64 = 29;
const BATCH_SIZES: [usize; 3] = [64, 256, 1024];

fn raw_config(seed: u64) -> ReliableConfig {
    ReliableConfig {
        mice_filter: None,
        ..concurrent_config(seed)
    }
}

fn bench_simd_ingest(c: &mut Criterion) {
    let stream = Dataset::Zipf { skew: 1.05 }.generate(BENCH_ITEMS, SEED);
    let items: Vec<(u64, u64)> = stream.iter().map(|it| (it.key, it.value)).collect();
    let backend = simd::backend();

    let mut g = c.benchmark_group("simd_ingest");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    for (variant, cfg) in [
        ("filtered", concurrent_config(SEED)),
        ("raw", raw_config(SEED)),
    ] {
        g.bench_function(BenchmarkId::new("seq_item_loop", variant), |b| {
            b.iter_batched(
                || ReliableSketch::<u64>::new(cfg.clone()),
                |mut sk| {
                    for (k, v) in &items {
                        sk.insert(k, *v);
                    }
                    sk
                },
                BatchSize::LargeInput,
            )
        });
        g.bench_function(BenchmarkId::new("conc_item_loop", variant), |b| {
            b.iter_batched(
                || ConcurrentReliable::<u64>::new(cfg.clone()),
                |sk| {
                    for (k, v) in &items {
                        sk.insert_concurrent(k, *v);
                    }
                    sk
                },
                BatchSize::LargeInput,
            )
        });
        for batch in BATCH_SIZES {
            g.bench_function(
                BenchmarkId::new(
                    format!("seq_batched_{backend}"),
                    format!("{variant}_{batch}"),
                ),
                |b| {
                    b.iter_batched(
                        || ReliableSketch::<u64>::new(cfg.clone()),
                        |mut sk| {
                            sk.ingest_batched(items.iter().copied(), batch);
                            sk
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
            g.bench_function(
                BenchmarkId::new(
                    format!("conc_batched_{backend}"),
                    format!("{variant}_{batch}"),
                ),
                |b| {
                    b.iter_batched(
                        || ConcurrentReliable::<u64>::new(cfg.clone()),
                        |sk| {
                            sk.ingest_batched(items.iter().copied(), batch);
                            sk
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
    }
    g.finish();
}

fn bench_hot_line(c: &mut Criterion) {
    // 8 MiB of buckets (≫ typical L2) + a max-entropy key stream: layer-0
    // touches are cache-cold, which is the regime prefetch exists for.
    let cold_config = ReliableConfig {
        memory_bytes: 8 * 1024 * 1024,
        mice_filter: None,
        seed: SEED,
        ..Default::default()
    };
    let items: Vec<(u64, u64)> = (0..BENCH_ITEMS as u64)
        .map(|i| (i.wrapping_mul(0x9e37_79b9_7f4a_7c15), 1))
        .collect();
    let backend = simd::backend();

    let mut g = c.benchmark_group("hot_line");
    g.throughput(Throughput::Elements(BENCH_ITEMS as u64));
    g.sample_size(10);

    g.bench_function("conc_item_loop/cold", |b| {
        b.iter_batched(
            || ConcurrentReliable::<u64>::new(cold_config.clone()),
            |sk| {
                for (k, v) in &items {
                    sk.insert_concurrent(k, *v);
                }
                sk
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function(
        BenchmarkId::new(format!("conc_batched_{backend}"), "cold"),
        |b| {
            b.iter_batched(
                || ConcurrentReliable::<u64>::new(cold_config.clone()),
                |sk| {
                    sk.insert_batch(&items);
                    sk
                },
                BatchSize::LargeInput,
            )
        },
    );
    g.finish();
}

criterion_group!(benches, bench_simd_ingest, bench_hot_line);
criterion_main!(benches);
