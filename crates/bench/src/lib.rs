//! # rsk-bench — Criterion benchmarks
//!
//! Seven bench targets cover the paper's speed claims and the ablations
//! DESIGN.md calls out:
//!
//! | target | regenerates |
//! |--------|-------------|
//! | `hash_functions` | the cost of "one hash call" (Fig 16's unit) |
//! | `bucket_ops` | ESB inner-loop regimes (§3.1) |
//! | `insert_throughput` | Figure 10, insertion half |
//! | `query_throughput` | Figure 10, query half |
//! | `parameter_ablation` | Figures 11–13: geometric vs arithmetic decay, R_w/R_λ |
//! | `mice_filter_ablation` | §3.3 / Fig 16: filter width/bits trade-offs |
//! | `dataplane_model` | Tofino behavioural model overhead vs CPU version |
//! | `concurrent_ingest` | multi-core lock-free ingestion vs 1-thread baseline |
//!
//! Run with `cargo bench -p rsk-bench` (or `--bench <target>`).
//!
//! Shared helpers live here so the targets stay declarative.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rsk_api::Sketch;
use rsk_baselines::factory::Baseline;
use rsk_core::concurrent::ShardedReliable;
use rsk_core::{ReliableConfig, ReliableSketch};

/// Stream length every bench uses (10 % of a paper-scale step keeps a
/// full `cargo bench --workspace` under a few minutes).
pub const BENCH_ITEMS: usize = 100_000;

/// Memory kept at the paper's ratio: 1 MB per 10 M items.
pub const BENCH_MEMORY: usize = 100 * 1024;

/// Build "Ours" at the bench budget.
pub fn ours(seed: u64) -> Box<dyn Sketch<u64>> {
    Box::new(
        ReliableSketch::<u64>::builder()
            .memory_bytes(BENCH_MEMORY)
            .error_tolerance(25)
            .seed(seed)
            .build::<u64>(),
    )
}

/// Build "Ours(Raw)" at the bench budget.
pub fn ours_raw(seed: u64) -> Box<dyn Sketch<u64>> {
    Box::new(
        ReliableSketch::<u64>::builder()
            .memory_bytes(BENCH_MEMORY)
            .error_tolerance(25)
            .raw()
            .seed(seed)
            .build::<u64>(),
    )
}

/// Configuration the `concurrent_ingest` bench uses for both the
/// single-thread baseline and the sharded lock-free path (same budget,
/// same Λ, paper defaults otherwise).
pub fn concurrent_config(seed: u64) -> ReliableConfig {
    ReliableConfig {
        memory_bytes: BENCH_MEMORY,
        lambda: 25,
        seed,
        ..Default::default()
    }
}

/// Build the sharded lock-free sketch at the bench budget (paper
/// defaults, so the shards run the filtered variant with the atomic CU
/// mice filter in front).
pub fn sharded(seed: u64, shards: usize) -> ShardedReliable<u64> {
    ShardedReliable::new(concurrent_config(seed), shards)
}

/// Build the sharded lock-free sketch in the paper's "Raw" variant (no
/// mice filter — isolates the bucket-CAS hot path from the filter).
pub fn sharded_raw(seed: u64, shards: usize) -> ShardedReliable<u64> {
    ShardedReliable::new(
        ReliableConfig {
            mice_filter: None,
            ..concurrent_config(seed)
        },
        shards,
    )
}

/// `(label, fresh sketch)` for the full Figure 10 lineup.
pub fn figure10_lineup(seed: u64) -> Vec<(String, Box<dyn Sketch<u64>>)> {
    let mut v = vec![
        ("Ours".to_string(), ours(seed)),
        ("Ours_Raw".to_string(), ours_raw(seed)),
    ];
    for b in Baseline::THROUGHPUT_SET {
        v.push((b.label().to_string(), b.build(BENCH_MEMORY, seed)));
    }
    v
}

/// Rebuild a lineup member by label (benches cannot clone boxed sketches).
pub fn rebuild(label: &str, seed: u64) -> Box<dyn Sketch<u64>> {
    match label {
        "Ours" => ours(seed),
        "Ours_Raw" => ours_raw(seed),
        other => Baseline::THROUGHPUT_SET
            .iter()
            .find(|b| b.label() == other)
            .unwrap_or_else(|| panic!("unknown sketch label {other}"))
            .build(BENCH_MEMORY, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_rebuilds() {
        for (label, sk) in figure10_lineup(3) {
            let rebuilt = rebuild(&label, 3);
            assert_eq!(sk.memory_bytes(), rebuilt.memory_bytes(), "{label}");
        }
    }
}
