//! # rsk-api — common trait surface for stream-summary sketches
//!
//! The stream-summary problem (paper §2.1): given a stream of
//! `⟨key, value⟩` pairs, estimate for any key `e` the sum `f(e)` of all
//! values carried by that key. An *outlier* is a key whose estimate misses
//! the truth by more than the user's tolerance `Λ`.
//!
//! This crate defines the minimal trait vocabulary shared by the
//! ReliableSketch implementation (`rsk-core`), the nine baselines
//! (`rsk-baselines`), the hardware models (`rsk-dataplane`) and the
//! evaluation harness (`rsk-metrics`, `rsk-exp`):
//!
//! * [`StreamSummary`] — insert / point-query;
//! * [`ErrorSensing`] — point-query with a certified [`Estimate`] interval
//!   (the paper's "Maximum Possible Error"); only ReliableSketch and the
//!   exact oracle can implement this;
//! * [`TopK`] — certified top-K heavy hitters: entries carry the per-key
//!   MPE as error bars and the answer certifies its own recall
//!   ([`CertifiedTopK`]);
//! * [`SubpopulationWeight`] — certified aggregate queries: the total
//!   weight of a [`KeySet`]-selected key subset with a sound
//!   [`CertifiedWeight`] interval summed from the per-key bounds;
//! * [`MemoryFootprint`] — bytes used, so experiments can sweep memory;
//! * [`Algorithm`] — display name for harness tables;
//! * [`Clear`] — reset without reallocation (benchmarks).
//!
//! All traits are object safe: the harness manipulates
//! `Box<dyn Sketch<u64>>` values uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rsk_hash::HashKey;

/// Marker bound for key types accepted by every sketch in the workspace.
///
/// `Key` is automatically implemented for all [`HashKey`] types (`u32`,
/// `u64`, `u128`, 13-byte 5-tuples).
pub trait Key: HashKey + 'static {}
impl<T: HashKey + 'static> Key for T {}

/// A point-query answer together with its certified error bound.
///
/// ReliableSketch guarantees `truth ∈ [value − max_possible_error, value]`
/// for every key (paper §3.1): estimates never undershoot and overshoot by
/// at most the Maximum Possible Error (MPE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Estimate {
    /// The estimated value sum `f̂(e)` (an upper bound on the truth).
    pub value: u64,
    /// Maximum Possible Error: `f̂(e) − f(e) ≤ max_possible_error`.
    pub max_possible_error: u64,
}

impl Estimate {
    /// An exact answer (MPE = 0).
    #[inline]
    pub fn exact(value: u64) -> Self {
        Self {
            value,
            max_possible_error: 0,
        }
    }

    /// Lower end of the certified interval, `value − MPE` (saturating).
    #[inline]
    pub fn lower_bound(&self) -> u64 {
        self.value.saturating_sub(self.max_possible_error)
    }

    /// Upper end of the certified interval (the estimate itself).
    #[inline]
    pub fn upper_bound(&self) -> u64 {
        self.value
    }

    /// Does the certified interval contain `truth`?
    #[inline]
    pub fn contains(&self, truth: u64) -> bool {
        self.lower_bound() <= truth && truth <= self.value
    }

    /// Width of the certified interval (= MPE).
    #[inline]
    pub fn width(&self) -> u64 {
        self.max_possible_error
    }
}

/// The stream-summary interface: feed `⟨key, value⟩` pairs, point-query sums.
pub trait StreamSummary<K: Key> {
    /// Process one stream item, adding `value` to key `key`.
    fn insert(&mut self, key: &K, value: u64);

    /// Estimate the value sum of `key`.
    fn query(&self, key: &K) -> u64;

    /// Convenience: insert with value 1 (frequency estimation).
    #[inline]
    fn insert_one(&mut self, key: &K) {
        self.insert(key, 1);
    }
}

/// A sketch that reports a certified error interval with every answer.
///
/// `query_with_error(e).value` must equal `query(e)`, and the interval must
/// contain the truth whenever the sketch's guarantee holds.
pub trait ErrorSensing<K: Key>: StreamSummary<K> {
    /// Estimate the value sum of `key` along with its Maximum Possible
    /// Error.
    fn query_with_error(&self, key: &K) -> Estimate;
}

/// One reported heavy hitter in a [`CertifiedTopK`] answer.
///
/// `count` never undershoots the key's true value sum and overshoots it
/// by at most `error` (the sketch's certified per-key Maximum Possible
/// Error at the moment the entry was claimed), so
/// `truth ∈ [count − error, count]` — the same one-sided interval as
/// [`Estimate`], carried per top-K entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TopKEntry<K> {
    /// The reported key.
    pub key: K,
    /// Certified upper bound on the key's true value sum.
    pub count: u64,
    /// Certified overestimation bound: `count − truth ≤ error`.
    pub error: u64,
}

impl<K> TopKEntry<K> {
    /// Lower end of the certified interval, `count − error` (saturating).
    #[inline]
    pub fn lower_bound(&self) -> u64 {
        self.count.saturating_sub(self.error)
    }

    /// Does the certified interval contain `truth`?
    #[inline]
    pub fn contains(&self, truth: u64) -> bool {
        self.lower_bound() <= truth && truth <= self.count
    }
}

/// A certified top-K answer: up to `k` entries sorted by `count`
/// descending, plus the two ceilings that turn the list into a *recall
/// guarantee* rather than a best-effort report.
///
/// * [`miss_bound`](Self::miss_bound) — no key absent from the backing
///   summary can have a true value sum above this;
/// * [`next_count`](Self::next_count) — the certified count of the best
///   summary entry *not* reported (the (k+1)-th), `0` when the summary
///   held no more than `k` entries.
///
/// Any key with true count above
/// [`guaranteed_floor()`](Self::guaranteed_floor) (the larger of the
/// two) is provably among the reported entries; when additionally every
/// reported entry's certified lower bound clears that floor
/// ([`recall_certified()`](Self::recall_certified)), the reported set is
/// provably *exactly* the set of keys whose true count exceeds the floor
/// — recall 1.0, certified from the k-th/(k+1)-th gap, no oracle needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifiedTopK<K> {
    /// Reported entries, `count` descending. May be shorter than the
    /// requested `k` when the summary tracked fewer keys.
    pub entries: Vec<TopKEntry<K>>,
    /// Upper bound on the true count of any key the summary does not
    /// track ([`u64::MAX`] for a vacuous answer from a sketch without a
    /// top-K layer).
    pub miss_bound: u64,
    /// Certified count of the best unreported summary entry (`0` when
    /// everything tracked was reported).
    pub next_count: u64,
}

impl<K> CertifiedTopK<K> {
    /// A vacuous answer: no entries, no guarantee (`miss_bound` = MAX).
    pub fn vacuous() -> Self {
        Self {
            entries: Vec::new(),
            miss_bound: u64::MAX,
            next_count: 0,
        }
    }

    /// The certified floor: every key with true count strictly above
    /// this is among [`entries`](Self::entries).
    #[inline]
    pub fn guaranteed_floor(&self) -> u64 {
        self.miss_bound.max(self.next_count)
    }

    /// Is the reported set provably exact? True when every entry's
    /// certified lower bound strictly clears
    /// [`guaranteed_floor()`](Self::guaranteed_floor): reported keys then
    /// all have true counts above the floor, unreported keys all sit at
    /// or below it, so the entry set equals the true top-`len(entries)`
    /// (as a set — ordering *within* the reported set is not certified).
    /// Vacuously true for an empty report (nothing claimed, nothing
    /// wrong); callers wanting `k` certified entries should also check
    /// `entries.len() == k`.
    pub fn recall_certified(&self) -> bool {
        let floor = self.guaranteed_floor();
        self.entries.iter().all(|e| e.lower_bound() > floor)
    }
}

/// A sketch carrying an error-certified top-K heavy-hitter layer.
///
/// The trait is object safe — a service can hold tenants as
/// `Box<dyn TopK<u64>>` — and deliberately read-only: entries are
/// claimed internally by the sketch's own insertion path (elephant
/// promotion), never by the caller.
pub trait TopK<K: Key> {
    /// The certified top-`k` answer over everything inserted so far.
    ///
    /// Sketches without an enabled top-K layer return
    /// [`CertifiedTopK::vacuous`].
    fn certified_top_k(&self, k: usize) -> CertifiedTopK<K>;

    /// Capacity of the backing summary, or `None` when the top-K layer
    /// is disabled.
    fn top_k_capacity(&self) -> Option<usize>;
}

/// A certified subpopulation-weight answer: the estimated total value of
/// a [`KeySet`]-selected key subset, plus a sound interval around it.
///
/// The containment contract extends the per-key [`Estimate`] guarantee to
/// aggregates (Cohen & Kaplan's subpopulation-weight query, answered with
/// ReliableSketch's certified per-key bounds instead of tail
/// probabilities):
///
/// ```text
/// lo  ≤  truth  ≤  hi + slack        (truth = Σ f(k) over k ∈ set)
/// lo  ≤  estimate  ≤  hi
/// ```
///
/// * `lo`/`hi` are sums of per-key certified bounds (lower bounds and
///   estimates for enumerable sets; for non-enumerable sets `hi` also
///   charges every possibly-present untracked key its certified per-key
///   ceiling — the top-K layer's `miss_bound` when enabled, the sketch's
///   `mpe_ceiling` otherwise — which saturates to a vacuous-but-sound
///   [`u64::MAX`] on unbounded sets);
/// * `slack` is the *documented contention slack* of concurrent reads:
///   the summed per-key amount by which a racing producer may leave an
///   estimate trailing the truth (`(arrays − 1) × threshold` per key for
///   a filtered concurrent ReliableSketch, × generations for an epoched
///   window). Sequential sketches and quiescent concurrent sketches
///   answer with `slack` still reported but not needed — the interval
///   `[lo, hi]` alone then contains the truth.
///
/// # Examples
///
/// ```
/// use rsk_api::CertifiedWeight;
///
/// let w = CertifiedWeight { estimate: 120, lo: 100, hi: 120, slack: 8 };
/// assert_eq!(w.lower_bound(), 100);
/// assert_eq!(w.upper_bound(), 128); // hi + slack, saturating
/// assert!(w.contains(100) && w.contains(128));
/// assert!(!w.contains(99) && !w.contains(129));
/// assert_eq!(w.width(), 28);
/// assert_eq!(CertifiedWeight::exact(7).width(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CertifiedWeight {
    /// The estimated subset value sum (the answer a point-query sum would
    /// give; `lo ≤ estimate ≤ hi`).
    pub estimate: u64,
    /// Certified lower bound on the true subset weight.
    pub lo: u64,
    /// Certified upper bound on the true subset weight, before contention
    /// slack.
    pub hi: u64,
    /// Documented contention slack: a concurrent read may trail the truth
    /// by at most this much, so the sound upper bound is `hi + slack`.
    pub slack: u64,
}

impl CertifiedWeight {
    /// An exact answer: `truth = estimate`, zero-width interval.
    #[inline]
    pub fn exact(value: u64) -> Self {
        Self {
            estimate: value,
            lo: value,
            hi: value,
            slack: 0,
        }
    }

    /// The empty-subset answer (exactly zero).
    #[inline]
    pub fn zero() -> Self {
        Self::exact(0)
    }

    /// Lower end of the certified interval.
    #[inline]
    pub fn lower_bound(&self) -> u64 {
        self.lo
    }

    /// Upper end of the certified interval, `hi + slack` (saturating).
    #[inline]
    pub fn upper_bound(&self) -> u64 {
        self.hi.saturating_add(self.slack)
    }

    /// Does the certified interval contain `truth`?
    #[inline]
    pub fn contains(&self, truth: u64) -> bool {
        self.lo <= truth && truth <= self.upper_bound()
    }

    /// Width of the certified interval, `upper_bound − lo`.
    #[inline]
    pub fn width(&self) -> u64 {
        self.upper_bound().saturating_sub(self.lo)
    }

    /// Is the answer vacuous (upper bound saturated at [`u64::MAX`])?
    ///
    /// Returned for subsets the sketch cannot bound meaningfully — e.g. a
    /// non-enumerable set queried against a flavour whose tracked-key
    /// inventory cannot cover it. Still sound: the interval contains the
    /// truth, it just excludes nothing above `lo`.
    #[inline]
    pub fn is_vacuous(&self) -> bool {
        self.upper_bound() == u64::MAX
    }
}

/// A predicate over `u64` keys selecting the subpopulation to weigh.
///
/// The three shapes are the natural selectors for network telemetry keys
/// (flow IDs, addresses): an explicit list, a contiguous range, and a
/// bit-mask pattern (the generalization of a CIDR prefix).
///
/// Construct through [`explicit`](Self::explicit),
/// [`range`](Self::range), [`mask`](Self::mask) or
/// [`prefix`](Self::prefix) — the constructors normalize (sort + dedup
/// the explicit list, reduce the mask pattern) so that equal predicates
/// compare equal and membership tests are `O(log n)` / `O(1)`.
///
/// # Examples
///
/// ```
/// use rsk_api::KeySet;
///
/// let s = KeySet::explicit(vec![7, 3, 3, 9]);
/// assert!(s.contains(3) && !s.contains(4));
/// assert_eq!(s.cardinality(), Some(3));
///
/// let r = KeySet::range(10, 19);
/// assert!(r.contains(10) && r.contains(19) && !r.contains(20));
/// assert_eq!(r.cardinality(), Some(10));
///
/// // the /8-style prefix 0x2A______ over 32-bit keys:
/// let p = KeySet::prefix(0x2A00_0000, 40); // 32 leading zeros + 8 prefix bits
/// assert!(p.contains(0x2A12_3456));
/// assert!(!p.contains(0x2B00_0000));
/// assert_eq!(p.cardinality(), Some(1 << 24));
///
/// // enumeration is ascending and capped
/// assert_eq!(KeySet::range(5, 7).enumerate(16), Some(vec![5, 6, 7]));
/// assert_eq!(KeySet::range(0, 1_000_000).enumerate(16), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeySet {
    /// An explicit key list (held sorted and deduplicated).
    Explicit(Vec<u64>),
    /// The inclusive range `start ..= end`.
    Range {
        /// Smallest member.
        start: u64,
        /// Largest member (inclusive).
        end: u64,
    },
    /// All keys `k` with `k & mask == pattern` (pattern is normalized to
    /// `pattern & mask`). `mask == u64::MAX` selects the single key
    /// `pattern`; `mask == 0` selects the full universe.
    Mask {
        /// Required bit values on the masked positions.
        pattern: u64,
        /// Which bit positions the predicate constrains.
        mask: u64,
    },
}

impl KeySet {
    /// An explicit key set (input is sorted and deduplicated).
    pub fn explicit(mut keys: Vec<u64>) -> Self {
        keys.sort_unstable();
        keys.dedup();
        KeySet::Explicit(keys)
    }

    /// The inclusive range `start ..= end`.
    ///
    /// # Panics
    /// If `start > end` (an empty range is spelled
    /// `KeySet::explicit(vec![])`).
    pub fn range(start: u64, end: u64) -> Self {
        assert!(start <= end, "KeySet::range requires start <= end");
        KeySet::Range { start, end }
    }

    /// All keys matching `pattern` on the bit positions set in `mask`
    /// (the pattern is normalized to the masked positions).
    pub fn mask(pattern: u64, mask: u64) -> Self {
        KeySet::Mask {
            pattern: pattern & mask,
            mask,
        }
    }

    /// The CIDR-style prefix predicate: keys whose top `bits` bits equal
    /// the top `bits` bits of `pattern`. `bits == 0` is the full
    /// universe; `bits == 64` the single key `pattern`.
    ///
    /// # Panics
    /// If `bits > 64`.
    pub fn prefix(pattern: u64, bits: u32) -> Self {
        assert!(bits <= 64, "prefix length exceeds the 64-bit key space");
        let mask = if bits == 0 {
            0
        } else {
            u64::MAX << (64 - bits)
        };
        Self::mask(pattern, mask)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        match self {
            KeySet::Explicit(keys) => keys.binary_search(&key).is_ok(),
            KeySet::Range { start, end } => (*start..=*end).contains(&key),
            KeySet::Mask { pattern, mask } => key & mask == *pattern,
        }
    }

    /// Number of members, or `None` when it does not fit a `u64` (only
    /// the full 2⁶⁴ universe: `range(0, u64::MAX)` or `mask(_, 0)`).
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            KeySet::Explicit(keys) => Some(keys.len() as u64),
            KeySet::Range { start, end } => end.checked_sub(*start)?.checked_add(1),
            KeySet::Mask { mask, .. } => {
                let free_bits = 64 - mask.count_ones();
                if free_bits == 64 {
                    None
                } else {
                    Some(1u64 << free_bits)
                }
            }
        }
    }

    /// Is the set empty? (Only an explicit list can be.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        matches!(self, KeySet::Explicit(keys) if keys.is_empty())
    }

    /// The members in ascending order, or `None` when the set has more
    /// than `limit` members (dense evaluation would be too expensive —
    /// callers fall back to a tracked-key decode).
    pub fn enumerate(&self, limit: usize) -> Option<Vec<u64>> {
        let n = self.cardinality()?;
        if n > limit as u64 {
            return None;
        }
        match self {
            KeySet::Explicit(keys) => Some(keys.clone()),
            KeySet::Range { start, end } => Some((*start..=*end).collect()),
            KeySet::Mask { pattern, mask } => {
                // ascending submask enumeration of the free positions:
                // v steps through the subsets of !mask in increasing order
                let free = !mask;
                let mut out = Vec::with_capacity(n as usize);
                let mut v = 0u64;
                loop {
                    out.push(pattern | v);
                    v = (v | mask).wrapping_add(1) & free;
                    if v == 0 {
                        break;
                    }
                }
                Some(out)
            }
        }
    }
}

/// A sketch that answers certified subpopulation-weight queries: the
/// total value carried by a [`KeySet`]-selected key subset, with a sound
/// interval from the per-key certified bounds.
///
/// The trait is object safe — a service can hold tenants as
/// `Box<dyn SubpopulationWeight>` — and is deliberately `u64`-keyed: the
/// predicate shapes (ranges, masks) are defined on the key's bit pattern.
///
/// Contract: the returned interval must satisfy
/// `lo ≤ Σ_{k ∈ set} f(k) ≤ hi + slack` under the same conditions as the
/// implementation's point-query guarantee (sequential: always; concurrent:
/// `slack` covers the documented bounded contention undershoot). The
/// answer for the empty set must be [`CertifiedWeight::zero`].
pub trait SubpopulationWeight {
    /// The certified total weight of `set`.
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight;
}

/// Bytes of memory occupied by the sketch's data structure.
///
/// This is the *model* footprint used for the paper's memory sweeps: it
/// counts the bit-widths the paper assigns to each field (e.g. 32-bit `YES`,
/// 16-bit `NO`, 32-bit `ID` per bucket — §6.1.1), not Rust allocator
/// overhead, so memory axes are comparable across algorithms.
pub trait MemoryFootprint {
    /// Model memory footprint in bytes.
    fn memory_bytes(&self) -> usize;
}

/// Display name for result tables (e.g. `"Ours"`, `"CM_fast"`, `"SS"`).
pub trait Algorithm {
    /// Short, stable identifier used in figures and CSV output.
    fn name(&self) -> String;
}

/// Reset the sketch to its empty state without reallocating.
pub trait Clear {
    /// Clear all cells; the sketch afterwards behaves as freshly built.
    fn clear(&mut self);
}

/// How a parallel ingestion distributes its per-shard work units over
/// worker threads.
///
/// Both policies preserve the determinism contract of sharded parallel
/// ingestion: a work unit is one *whole shard's* sub-stream in stream
/// order, applied by exactly one worker, so the resulting sketch is
/// bit-identical under either policy and any worker count. The policies
/// differ only in *which* worker applies a unit and therefore in
/// wall-clock behaviour under skew:
///
/// * [`Static`](IngestPolicy::Static) claims shards from a shared ticket
///   in shard-index order. Simple and cheap, but when one shard carries
///   most of the stream (a skewed key distribution routes the hot key's
///   whole mass to a single shard), whichever worker draws the hot
///   ticket becomes the critical path while the others idle.
/// * [`WorkStealing`](IngestPolicy::WorkStealing) seeds per-worker
///   queues (heaviest unit first, honoring any placement hint), and idle
///   workers steal *whole* pending units from busy owners — never
///   splitting a shard, so determinism survives. `steal_threshold` is
///   the minimum number of items a queued unit must carry to be worth
///   migrating off its preferred owner; `0` steals anything.
///
/// # Examples
///
/// ```
/// use rsk_api::IngestPolicy;
///
/// assert_eq!(IngestPolicy::default(), IngestPolicy::Static);
/// let ws = IngestPolicy::work_stealing();
/// assert!(matches!(ws, IngestPolicy::WorkStealing { .. }));
/// // any queued unit is worth stealing once it meets the threshold
/// let picky = IngestPolicy::WorkStealing { steal_threshold: 4096 };
/// assert_ne!(ws, picky);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IngestPolicy {
    /// Workers claim whole shards from a shared ticket counter in shard
    /// order (the original two-phase schedule).
    #[default]
    Static,
    /// Per-worker queues with whole-unit stealing for skewed shard loads.
    WorkStealing {
        /// Minimum item count a queued unit must carry before an idle
        /// worker may steal it (`0` = steal anything pending).
        steal_threshold: usize,
    },
}

impl IngestPolicy {
    /// Items a stolen unit must carry under [`Self::work_stealing`]:
    /// small enough that real skew always triggers migration, large
    /// enough that thieves don't bounce cache lines over trivial tails.
    pub const DEFAULT_STEAL_THRESHOLD: usize = 256;

    /// Work stealing at the default threshold
    /// ([`Self::DEFAULT_STEAL_THRESHOLD`]).
    #[inline]
    pub fn work_stealing() -> Self {
        IngestPolicy::WorkStealing {
            steal_threshold: Self::DEFAULT_STEAL_THRESHOLD,
        }
    }

    /// Short display form for tables (`static` / `steal:256`).
    pub fn describe(&self) -> String {
        match self {
            IngestPolicy::Static => "static".into(),
            IngestPolicy::WorkStealing { steal_threshold } => format!("steal:{steal_threshold}"),
        }
    }
}

/// A sketch that supports lock-free ingestion through a shared reference,
/// so any number of producer threads can feed it concurrently.
///
/// Contract: `insert_concurrent` must be safe to call from many threads at
/// once, and every unit of inserted value must be visible to queries that
/// start after the insertion returns — estimates never undershoot the mass
/// already absorbed, up to any *documented, bounded* relaxation the
/// implementation declares for contended paths (e.g. a filtered
/// concurrent ReliableSketch's `(arrays − 1) × threshold` slack, the
/// relaxed-semantics trade of Fast Concurrent Data Sketches, Rinberg et
/// al.). `ingest_parallel` distributes a materialized stream over
/// `n_workers` threads; the default implementation is a sequential
/// fallback for implementations without a dedicated parallel path.
///
/// The trait is object safe: ingestion pipelines can hold
/// `Box<dyn ConcurrentSummary<u64>>` and stay agnostic of the sketch.
///
/// # Examples
///
/// Implementing the trait on a trivial exact store (real sketches use
/// atomics instead of a mutex — see `rsk_core::atomic` — but the contract
/// is the same):
///
/// ```
/// use rsk_api::ConcurrentSummary;
/// use std::collections::HashMap;
/// use std::sync::Mutex;
///
/// #[derive(Default)]
/// struct SharedExact(Mutex<HashMap<u64, u64>>);
///
/// impl ConcurrentSummary<u64> for SharedExact {
///     fn insert_concurrent(&self, key: &u64, value: u64) {
///         *self.0.lock().unwrap().entry(*key).or_insert(0) += value;
///     }
///     fn query_concurrent(&self, key: &u64) -> u64 {
///         self.0.lock().unwrap().get(key).copied().unwrap_or(0)
///     }
/// }
///
/// let store = SharedExact::default();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let store = &store;
///         s.spawn(move || store.insert_concurrent(&7, 25));
///     }
/// });
/// assert_eq!(store.query_concurrent(&7), 100);
/// ```
pub trait ConcurrentSummary<K: Key>: Sync {
    /// Process one stream item through a shared reference.
    fn insert_concurrent(&self, key: &K, value: u64);

    /// Estimate the value sum of `key` through a shared reference.
    fn query_concurrent(&self, key: &K) -> u64;

    /// Ingest a stream with `n_workers` threads; returns the number of
    /// items processed.
    fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize {
        let _ = n_workers;
        for (k, v) in items {
            self.insert_concurrent(k, *v);
        }
        items.len()
    }

    /// Ingest a stream with `n_workers` threads under an explicit
    /// [`IngestPolicy`]. Implementations with a scheduled parallel path
    /// (e.g. a sharded sketch) honor the policy; the default falls back
    /// to [`Self::ingest_parallel`], which treats every policy as
    /// [`IngestPolicy::Static`].
    fn ingest_parallel_policy(
        &self,
        items: &[(K, u64)],
        n_workers: usize,
        policy: IngestPolicy,
    ) -> usize {
        let _ = policy;
        self.ingest_parallel(items, n_workers)
    }
}

/// Certified error sensing through a shared reference — the concurrent
/// twin of [`ErrorSensing`], and the query surface a served (multi-tenant,
/// multi-reader) deployment exposes as `QueryCertified`.
///
/// Contract: `query_with_error_concurrent(e).value` must equal
/// [`query_concurrent(e)`](ConcurrentSummary::query_concurrent), and the
/// certified interval must contain the truth under the same conditions as
/// the sequential guarantee, relaxed only by the implementation's
/// *documented, bounded* contention slack (mirroring
/// [`ConcurrentSummary`]): a filtered concurrent ReliableSketch may trail
/// the true mass by at most `(arrays − 1) × threshold` while producer
/// threads race on the same key, so under contention the containment
/// check is `lower_bound() ≤ truth ≤ value + slack`. Once producers are
/// quiescent (all insertions returned before the query started), the
/// slack is not needed and the interval contains the truth exactly as in
/// the sequential case; uncontended single-writer histories must answer
/// **bit-for-bit** like their sequential twin.
///
/// Reads against a *sealed* structure (a frozen epoch generation whose
/// atomic words are never CASed again) are wait-free: plain loads, no
/// retry loop.
///
/// The trait is object safe: a service can hold tenants as
/// `Box<dyn ConcurrentErrorSensing<u64>>` and stay agnostic of the
/// concrete sketch.
///
/// # Examples
///
/// ```
/// use rsk_api::{ConcurrentErrorSensing, ConcurrentSummary, Estimate};
/// use std::collections::HashMap;
/// use std::sync::Mutex;
///
/// #[derive(Default)]
/// struct SharedExact(Mutex<HashMap<u64, u64>>);
///
/// impl ConcurrentSummary<u64> for SharedExact {
///     fn insert_concurrent(&self, key: &u64, value: u64) {
///         *self.0.lock().unwrap().entry(*key).or_insert(0) += value;
///     }
///     fn query_concurrent(&self, key: &u64) -> u64 {
///         self.0.lock().unwrap().get(key).copied().unwrap_or(0)
///     }
/// }
///
/// impl ConcurrentErrorSensing<u64> for SharedExact {
///     fn query_with_error_concurrent(&self, key: &u64) -> Estimate {
///         Estimate::exact(self.query_concurrent(key)) // exact store: MPE = 0
///     }
/// }
///
/// let store = SharedExact::default();
/// store.insert_concurrent(&7, 100);
/// let est = store.query_with_error_concurrent(&7);
/// assert_eq!(est.value, store.query_concurrent(&7));
/// assert!(est.contains(100));
/// // object safety: certified tenants behind one trait object
/// let boxed: Box<dyn ConcurrentErrorSensing<u64>> = Box::new(store);
/// assert!(boxed.query_with_error_concurrent(&7).contains(100));
/// ```
pub trait ConcurrentErrorSensing<K: Key>: ConcurrentSummary<K> {
    /// Estimate the value sum of `key` along with its Maximum Possible
    /// Error, through a shared reference.
    fn query_with_error_concurrent(&self, key: &K) -> Estimate;
}

/// Why two sketch instances refused to merge.
///
/// Merging requires both operands to have been built with identical
/// parameters; the variants name the precondition that failed. The enum
/// is `#[non_exhaustive]` so future preconditions can gain their own
/// variant without a breaking change — match with a wildcard arm.
///
/// # Examples
///
/// ```
/// use rsk_api::MergeError;
///
/// let e = MergeError::Incompatible("mice filter presence mismatch".into());
/// assert_eq!(e.to_string(), "incompatible operands: mice filter presence mismatch");
/// // it is a real std error, so `?` can cross into Box<dyn Error> code
/// let boxed: Box<dyn std::error::Error> = Box::new(MergeError::SeedMismatch);
/// assert!(boxed.to_string().contains("seed"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// The operands' dimensions differ (memory budget, layer geometry,
    /// filter shape, shard count, width/depth, …): bucket `(i, j)` of one
    /// operand has no counterpart in the other.
    ShapeMismatch,
    /// Same shape, different hash seeds: bucket `(i, j)` observed a
    /// different key population in each operand, so counters cannot be
    /// combined soundly.
    SeedMismatch,
    /// Any other incompatibility (mixed emergency policies, mixed
    /// mice-filter presence, an empty merge set, …), described in text.
    Incompatible(String),
}

impl core::fmt::Display for MergeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MergeError::ShapeMismatch => write!(f, "shape mismatch between merge operands"),
            MergeError::SeedMismatch => write!(f, "hash seed mismatch between merge operands"),
            MergeError::Incompatible(why) => write!(f, "incompatible operands: {why}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Why a replication payload was refused.
///
/// The replication layer (`rsk_core::replicate`) ships sketch state
/// between processes as self-describing binary payloads; these variants
/// name the precondition that failed when producing or applying one.
/// Like [`MergeError`] the enum is `#[non_exhaustive]` — match with a
/// wildcard arm.
///
/// # Examples
///
/// ```
/// use rsk_api::ReplicateError;
///
/// let e = ReplicateError::UnsupportedFormat { version: 9 };
/// assert_eq!(e.to_string(), "unsupported replication format version 9");
/// // a real std error, so `?` can cross into Box<dyn Error> code
/// let boxed: Box<dyn std::error::Error> = Box::new(ReplicateError::Truncated);
/// assert!(boxed.to_string().contains("truncated"));
/// // merge preconditions surface directly when applying deltas
/// let from_merge: ReplicateError = rsk_api::MergeError::SeedMismatch.into();
/// assert!(matches!(from_merge, ReplicateError::Incompatible(_)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplicateError {
    /// The payload ended before its declared structure was complete.
    Truncated,
    /// The payload's header declares a codec version this build cannot
    /// read (or the magic/kind byte is not a replication payload at all).
    UnsupportedFormat {
        /// The version byte found in the header.
        version: u8,
    },
    /// The payload decoded structurally but its contents are inconsistent
    /// (bad tag, out-of-range index, shape violation, trailing bytes, …).
    Corrupt(String),
    /// The payload is well-formed but cannot be applied to *this* sketch
    /// (config/seed/geometry mismatch, wrong payload kind, stale epoch).
    Incompatible(String),
}

impl core::fmt::Display for ReplicateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ReplicateError::Truncated => write!(f, "truncated replication payload"),
            ReplicateError::UnsupportedFormat { version } => {
                write!(f, "unsupported replication format version {version}")
            }
            ReplicateError::Corrupt(why) => write!(f, "corrupt replication payload: {why}"),
            ReplicateError::Incompatible(why) => {
                write!(f, "payload incompatible with this sketch: {why}")
            }
        }
    }
}

impl std::error::Error for ReplicateError {}

impl From<MergeError> for ReplicateError {
    fn from(e: MergeError) -> Self {
        ReplicateError::Incompatible(e.to_string())
    }
}

/// Sketch state that can leave the process: full snapshots, slim
/// query-only summaries, and dirty-bucket deltas, all as self-describing
/// binary payloads (see `rsk_core::replicate` for the codec).
///
/// The trait is deliberately byte-oriented so it stays object safe and
/// implementation-agnostic: a replication pipeline can hold
/// `Box<dyn Replicate>` tenants and ship whatever they emit. Payloads are
/// self-describing — [`apply_bytes`](Self::apply_bytes) accepts either a
/// full snapshot (replacing this sketch's state) or a delta (folding in
/// buckets dirtied since the source's last [`delta_bytes`] call), and
/// refuses anything incompatible with a typed [`ReplicateError`].
///
/// Contract:
///
/// * `snapshot_bytes` → `apply_bytes` on a same-config sketch must make
///   the replica answer `query_with_error` identically to the source at
///   snapshot time;
/// * `delta_bytes` emits every bucket touched since the previous
///   `delta_bytes`/`snapshot_bytes` call **and marks the state clean**
///   (hence `&mut self`: emission is a cut point, not a pure read);
/// * applying a snapshot and then every subsequent delta, in order,
///   keeps the replica equivalent to the source at each cut;
/// * `slim_bytes` emits a query-only distillate (a `SlimSummary` in
///   `rsk-core` terms): smaller than a snapshot, answers certified
///   queries standalone within a documented widening, but cannot be
///   updated or merged further.
///
/// [`delta_bytes`]: Self::delta_bytes
pub trait Replicate {
    /// Serialize the complete sketch state.
    ///
    /// # Errors
    /// [`ReplicateError`] if the state cannot be captured (e.g. the
    /// implementation requires a sealed generation it cannot take here).
    fn snapshot_bytes(&self) -> Result<Vec<u8>, ReplicateError>;

    /// Serialize a slim query-only summary of the current state.
    ///
    /// # Errors
    /// [`ReplicateError`] if the state cannot be distilled.
    fn slim_bytes(&self) -> Result<Vec<u8>, ReplicateError>;

    /// Serialize only state dirtied since the last cut, and mark clean.
    ///
    /// # Errors
    /// [`ReplicateError`] if the dirty state cannot be captured.
    fn delta_bytes(&mut self) -> Result<Vec<u8>, ReplicateError>;

    /// Apply a payload produced by [`Self::snapshot_bytes`] (replaces
    /// state) or [`Self::delta_bytes`] (folds in dirtied buckets).
    ///
    /// # Errors
    /// [`ReplicateError`] naming why the payload was refused; on error
    /// the sketch is unchanged.
    fn apply_bytes(&mut self, payload: &[u8]) -> Result<(), ReplicateError>;
}

/// Sketches that can absorb another instance built with identical
/// parameters (same shape, same seeds) — the distributed-aggregation
/// primitive: summarize per shard, merge centrally.
///
/// After `a.merge(&b)`, `a` must answer as if it had ingested both input
/// streams (exactly for linear sketches like CM/Count; within the usual
/// one-sided error for CU).
pub trait Merge {
    /// Fold `other` into `self`.
    ///
    /// # Errors
    /// Returns a [`MergeError`] naming the violated precondition when the
    /// instances are not mergeable (mismatched shape, hash seeds, or any
    /// other incompatibility).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError>;
}

/// Object-safe bundle used by the evaluation harness.
pub trait Sketch<K: Key>: StreamSummary<K> + MemoryFootprint + Algorithm {}
impl<K: Key, T: StreamSummary<K> + MemoryFootprint + Algorithm> Sketch<K> for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Minimal exact implementation used to validate the trait surface.
    #[derive(Default)]
    struct Exact(HashMap<u64, u64>);

    impl StreamSummary<u64> for Exact {
        fn insert(&mut self, key: &u64, value: u64) {
            *self.0.entry(*key).or_insert(0) += value;
        }
        fn query(&self, key: &u64) -> u64 {
            self.0.get(key).copied().unwrap_or(0)
        }
    }
    impl ErrorSensing<u64> for Exact {
        fn query_with_error(&self, key: &u64) -> Estimate {
            Estimate::exact(self.query(key))
        }
    }
    impl MemoryFootprint for Exact {
        fn memory_bytes(&self) -> usize {
            self.0.len() * 16
        }
    }
    impl Algorithm for Exact {
        fn name(&self) -> String {
            "Exact".into()
        }
    }

    #[test]
    fn estimate_interval_logic() {
        let e = Estimate {
            value: 100,
            max_possible_error: 30,
        };
        assert_eq!(e.lower_bound(), 70);
        assert_eq!(e.upper_bound(), 100);
        assert!(e.contains(70) && e.contains(100) && e.contains(85));
        assert!(!e.contains(69) && !e.contains(101));
        assert_eq!(e.width(), 30);
    }

    #[test]
    fn estimate_saturates_at_zero() {
        let e = Estimate {
            value: 5,
            max_possible_error: 30,
        };
        assert_eq!(e.lower_bound(), 0);
        assert!(e.contains(0));
    }

    #[test]
    fn exact_estimate_is_tight() {
        let e = Estimate::exact(7);
        assert!(e.contains(7));
        assert!(!e.contains(6) && !e.contains(8));
    }

    #[test]
    fn trait_object_usage() {
        let mut s: Box<dyn Sketch<u64>> = Box::<Exact>::default();
        s.insert(&1, 5);
        s.insert_one(&1);
        assert_eq!(s.query(&1), 6);
        assert_eq!(s.query(&2), 0);
        assert_eq!(s.name(), "Exact");
        assert_eq!(s.memory_bytes(), 16);
    }

    #[test]
    fn concurrent_summary_default_ingest_is_sequential() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct SharedExact(Mutex<HashMap<u64, u64>>);
        impl ConcurrentSummary<u64> for SharedExact {
            fn insert_concurrent(&self, key: &u64, value: u64) {
                *self.0.lock().unwrap().entry(*key).or_insert(0) += value;
            }
            fn query_concurrent(&self, key: &u64) -> u64 {
                self.0.lock().unwrap().get(key).copied().unwrap_or(0)
            }
        }

        let s = SharedExact::default();
        let items: Vec<(u64, u64)> = (0..100).map(|i| (i % 10, 2)).collect();
        assert_eq!(s.ingest_parallel(&items, 4), 100);
        for k in 0..10u64 {
            assert_eq!(s.query_concurrent(&k), 20);
        }
        // object safety: the trait must box
        let boxed: Box<dyn ConcurrentSummary<u64>> = Box::new(SharedExact::default());
        boxed.insert_concurrent(&1, 3);
        assert_eq!(boxed.query_concurrent(&1), 3);
    }

    #[test]
    fn certified_weight_interval_logic() {
        let w = CertifiedWeight {
            estimate: 50,
            lo: 40,
            hi: 55,
            slack: 5,
        };
        assert_eq!(w.lower_bound(), 40);
        assert_eq!(w.upper_bound(), 60);
        assert!(w.contains(40) && w.contains(60) && !w.contains(39) && !w.contains(61));
        assert_eq!(w.width(), 20);
        assert!(!w.is_vacuous());
        assert_eq!(CertifiedWeight::zero(), CertifiedWeight::exact(0));
        let vac = CertifiedWeight {
            estimate: 0,
            lo: 0,
            hi: u64::MAX,
            slack: 0,
        };
        assert!(vac.is_vacuous() && vac.contains(u64::MAX));
        // saturating slack also reads as vacuous
        let sat = CertifiedWeight {
            estimate: 1,
            lo: 1,
            hi: u64::MAX - 3,
            slack: 100,
        };
        assert!(sat.is_vacuous());
    }

    #[test]
    fn keyset_explicit_normalizes() {
        let s = KeySet::explicit(vec![9, 1, 5, 5, 1]);
        assert_eq!(s, KeySet::explicit(vec![1, 5, 9]));
        assert_eq!(s.cardinality(), Some(3));
        assert!(!s.is_empty());
        assert!(s.contains(5) && !s.contains(2));
        assert_eq!(s.enumerate(10), Some(vec![1, 5, 9]));
        assert_eq!(s.enumerate(2), None);
        let empty = KeySet::explicit(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.cardinality(), Some(0));
        assert_eq!(empty.enumerate(0), Some(vec![]));
    }

    #[test]
    fn keyset_range_edges() {
        let r = KeySet::range(3, 3);
        assert_eq!(r.cardinality(), Some(1));
        assert_eq!(r.enumerate(4), Some(vec![3]));
        let top = KeySet::range(u64::MAX - 1, u64::MAX);
        assert_eq!(top.cardinality(), Some(2));
        assert!(top.contains(u64::MAX));
        // the full universe does not fit a u64 cardinality
        let all = KeySet::range(0, u64::MAX);
        assert_eq!(all.cardinality(), None);
        assert_eq!(all.enumerate(usize::MAX), None);
        assert!(all.contains(0) && all.contains(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "start <= end")]
    fn keyset_range_rejects_inverted() {
        let _ = KeySet::range(5, 4);
    }

    #[test]
    fn keyset_mask_semantics() {
        // pattern bits outside the mask are stripped
        assert_eq!(KeySet::mask(0xFF, 0x0F), KeySet::mask(0x0F, 0x0F));
        // constrain all but the low 4 bits: 16 members
        let m = KeySet::mask(0b1010_0000, !0b1111u64);
        assert!(m.contains(0b1010_0101) && !m.contains(0b1011_0000));
        assert_eq!(m.cardinality(), Some(16));
        let members = m.enumerate(16).unwrap();
        assert_eq!(members.len(), 16);
        assert!(members.windows(2).all(|w| w[0] < w[1]), "ascending order");
        assert!(members.iter().all(|&k| m.contains(k)));
        // exact-key and universe masks
        assert_eq!(KeySet::mask(42, u64::MAX).cardinality(), Some(1));
        assert_eq!(KeySet::mask(42, u64::MAX).enumerate(1), Some(vec![42]));
        assert_eq!(KeySet::mask(0, 0).cardinality(), None);
        assert!(KeySet::mask(0, 0).contains(u64::MAX));
    }

    #[test]
    fn keyset_prefix_matches_cidr_intuition() {
        // 64-bit analogue of 10.0.0.0/8 over the low 32 bits:
        // 32 zero bits of "padding" + 8 prefix bits
        let p = KeySet::prefix(0x0A00_0000, 40);
        assert!(p.contains(0x0A33_4455));
        assert!(!p.contains(0x0B00_0000));
        assert!(!p.contains(0x1_0A00_0000)); // padding bits differ
        assert_eq!(p.cardinality(), Some(1 << 24));
        assert_eq!(KeySet::prefix(7, 64).enumerate(1), Some(vec![7]));
        assert_eq!(KeySet::prefix(7, 0).cardinality(), None);
    }

    #[test]
    fn subpopulation_weight_is_object_safe() {
        struct Zero;
        impl SubpopulationWeight for Zero {
            fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
                if set.is_empty() {
                    CertifiedWeight::zero()
                } else {
                    CertifiedWeight::exact(0)
                }
            }
        }
        let boxed: Box<dyn SubpopulationWeight> = Box::new(Zero);
        let w = boxed.subpopulation_weight(&KeySet::explicit(vec![]));
        assert_eq!(w, CertifiedWeight::zero());
    }

    #[test]
    fn error_sensing_consistency() {
        let mut s = Exact::default();
        for k in 0u64..100 {
            s.insert(&k, k);
        }
        for k in 0u64..100 {
            let est = s.query_with_error(&k);
            assert_eq!(est.value, s.query(&k));
            assert!(est.contains(k));
        }
    }
}
