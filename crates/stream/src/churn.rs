//! Key-churn workloads — streams whose active key population rotates
//! over time, the dynamics long-running telemetry actually sees (flows
//! start and finish; yesterday's elephants are gone today).
//!
//! A single ever-growing sketch slowly fills with dead keys' residue;
//! the epoch machinery (`rsk_core::epoch` in the core crate) exists
//! precisely for this regime. These generators make the regime testable
//! and benchmarkable:
//!
//! * [`ChurnModel`] — a population of `active_keys` flows where, every
//!   `rotation_period` items, a `churn_fraction` of the active set
//!   retires and is replaced by fresh keys (generation-tagged, so keys
//!   never resurrect);
//! * [`bursty`] — an on/off source: bursts of one hot key rotating over
//!   a Zipf background, the shape that stresses election stability.

use crate::zipf::ZipfSampler;
use crate::{Item, Stream};
use rsk_hash::{splitmix64, SplitMix64};

/// Rotating-population workload generator.
///
/// ```
/// use rsk_stream::churn::ChurnModel;
///
/// let stream = ChurnModel {
///     active_keys: 1_000,
///     rotation_period: 10_000,
///     churn_fraction: 0.2,
///     skew: 1.0,
/// }
/// .generate(50_000, 7);
/// assert_eq!(stream.len(), 50_000);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnModel {
    /// Size of the live key population at any instant.
    pub active_keys: u64,
    /// Items between churn events.
    pub rotation_period: usize,
    /// Fraction of the live population replaced per churn event (0–1).
    pub churn_fraction: f64,
    /// Zipf skew of the traffic over the live population.
    pub skew: f64,
}

impl Default for ChurnModel {
    fn default() -> Self {
        Self {
            active_keys: 10_000,
            rotation_period: 100_000,
            churn_fraction: 0.25,
            skew: 1.0,
        }
    }
}

impl ChurnModel {
    /// Generate `n_items` items under this churn regime.
    ///
    /// Keys are generation-tagged (`generation * active_keys + slot`,
    /// bijected through SplitMix), so a retired key never reappears —
    /// matching how real flow identifiers behave.
    pub fn generate(&self, n_items: usize, seed: u64) -> Stream {
        assert!(self.active_keys > 0);
        assert!(self.rotation_period > 0);
        assert!((0.0..=1.0).contains(&self.churn_fraction));

        // slot → generation counter; the live key for a slot is derived
        // from both, so bumping the generation retires the old key
        let mut generation = vec![0u64; self.active_keys as usize];
        let mut rank_sampler = ZipfSampler::new(self.active_keys, self.skew, seed ^ 0xc0ffee);
        let mut churn_rng = SplitMix64::new(seed ^ 0x5eed_c0de);
        let per_event = ((self.active_keys as f64) * self.churn_fraction).round() as u64;

        let mut stream = Vec::with_capacity(n_items);
        for i in 0..n_items {
            if i > 0 && i % self.rotation_period == 0 {
                for _ in 0..per_event {
                    let slot = churn_rng.next_bounded(self.active_keys) as usize;
                    generation[slot] += 1;
                }
            }
            let slot = rank_sampler.sample() - 1; // ranks are 1-based
            let key = splitmix64(
                (generation[slot as usize] * self.active_keys + slot) ^ seed.rotate_left(11),
            );
            stream.push(Item::unit(key));
        }
        stream
    }

    /// Expected number of distinct keys over an `n_items` run (live
    /// population plus everything retired along the way, ignoring slots
    /// never sampled).
    pub fn distinct_upper_bound(&self, n_items: usize) -> u64 {
        let events = (n_items / self.rotation_period) as u64;
        let per_event = ((self.active_keys as f64) * self.churn_fraction).round() as u64;
        self.active_keys + events * per_event
    }
}

/// On/off bursts: a rotating hot key injects `burst_len`-item bursts at
/// `burst_share` of the stream, over a Zipf background — election
/// stability under the worst realistic pattern (sudden takeovers).
pub fn bursty(
    n_items: usize,
    background_keys: u64,
    burst_len: usize,
    burst_share: f64,
    seed: u64,
) -> Stream {
    assert!(burst_len > 0);
    assert!((0.0..1.0).contains(&burst_share));
    let mut background = ZipfSampler::new(background_keys.max(1), 1.0, seed ^ 0xbac);
    let mut rng = SplitMix64::new(seed ^ 0xb117);
    let mut stream = Vec::with_capacity(n_items);
    let mut burst_remaining = 0usize;
    let mut burst_key = 0u64;
    let mut burst_counter = 0u64;
    while stream.len() < n_items {
        if burst_remaining == 0 && rng.next_f64() < burst_share / burst_len as f64 {
            burst_counter += 1;
            burst_key = splitmix64((0xb0b0_0000_0000 + burst_counter) ^ seed);
            burst_remaining = burst_len;
        }
        if burst_remaining > 0 {
            burst_remaining -= 1;
            stream.push(Item::unit(burst_key));
        } else {
            stream.push(Item::unit(splitmix64(background.sample() ^ seed)));
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct(stream: &Stream) -> usize {
        stream.iter().map(|i| i.key).collect::<HashSet<_>>().len()
    }

    #[test]
    fn churn_grows_distinct_keys_beyond_live_population() {
        let model = ChurnModel {
            active_keys: 500,
            rotation_period: 5_000,
            churn_fraction: 0.5,
            skew: 0.8,
        };
        let stream = model.generate(100_000, 3);
        let d = distinct(&stream) as u64;
        assert!(
            d > model.active_keys,
            "churn must retire keys: {d} distinct"
        );
        assert!(d <= model.distinct_upper_bound(100_000));
    }

    #[test]
    fn zero_churn_is_a_static_population() {
        let model = ChurnModel {
            active_keys: 300,
            rotation_period: 1_000,
            churn_fraction: 0.0,
            skew: 1.0,
        };
        let stream = model.generate(50_000, 4);
        assert!(distinct(&stream) as u64 <= 300);
    }

    #[test]
    fn churned_keys_never_resurrect() {
        let model = ChurnModel {
            active_keys: 50,
            rotation_period: 500,
            churn_fraction: 0.4,
            skew: 0.5,
        };
        let stream = model.generate(20_000, 5);
        // once a key's last occurrence is followed by a full rotation
        // window without it, it must not reappear: check via last/first
        // occurrence windows of each key
        let mut first = std::collections::HashMap::new();
        let mut last = std::collections::HashMap::new();
        for (i, it) in stream.iter().enumerate() {
            first.entry(it.key).or_insert(i);
            last.insert(it.key, i);
        }
        // with 40% of 50 slots churned every 500 items, most keys live
        // far shorter than the stream: retired generations must not span
        // the run (they never resurrect)
        let spans: Vec<usize> = first.iter().map(|(k, &f)| last[k] - f).collect();
        let short_lived = spans.iter().filter(|&&s| s <= 10_000).count();
        assert!(
            short_lived * 2 > spans.len(),
            "churn should retire most keys quickly: {short_lived}/{} short-lived",
            spans.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let model = ChurnModel::default();
        let a = model.generate(10_000, 9);
        let b = model.generate(10_000, 9);
        assert_eq!(a, b);
        let c = model.generate(10_000, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn bursty_contains_bursts() {
        let stream = bursty(100_000, 1_000, 500, 0.3, 7);
        assert_eq!(stream.len(), 100_000);
        // the most frequent key should be a burst key with a long run
        let mut best_run = 0usize;
        let mut run = 1usize;
        for w in stream.windows(2) {
            if w[0].key == w[1].key {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 1;
            }
        }
        assert!(best_run >= 400, "no burst found (best run {best_run})");
    }

    #[test]
    #[should_panic(expected = "churn_fraction")]
    fn rejects_bad_fraction() {
        ChurnModel {
            churn_fraction: 1.5,
            ..Default::default()
        }
        .generate(10, 1);
    }
}
