//! Trace persistence: read and write item streams so users can run the
//! harness on their own captures.
//!
//! Two formats:
//!
//! * **binary** — fixed 16-byte little-endian records `(key: u64,
//!   value: u64)` with a 16-byte header (magic, version, count); compact
//!   and exact, the format the benchmarks cache streams in;
//! * **CSV** — `key,value` lines for interchange with other tooling
//!   (keys in decimal; a header row is tolerated and skipped).

use crate::{Item, Stream};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes of the binary trace format ("RSKT" + version 1).
const MAGIC: [u8; 8] = *b"RSKTRC\x00\x01";

/// Write a stream in the binary trace format.
pub fn write_binary(path: &Path, stream: &[Item<u64>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&(stream.len() as u64).to_le_bytes())?;
    for it in stream {
        w.write_all(&it.key.to_le_bytes())?;
        w.write_all(&it.value.to_le_bytes())?;
    }
    w.flush()
}

/// Read a binary trace written by [`write_binary`].
pub fn read_binary(path: &Path) -> io::Result<Stream> {
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if header[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not an RSKT trace (bad magic)",
        ));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut rec = [0u8; 16];
    for _ in 0..count {
        r.read_exact(&mut rec)?;
        out.push(Item::new(
            u64::from_le_bytes(rec[..8].try_into().unwrap()),
            u64::from_le_bytes(rec[8..].try_into().unwrap()),
        ));
    }
    Ok(out)
}

/// Write a stream as `key,value` CSV.
pub fn write_csv(path: &Path, stream: &[Item<u64>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "key,value")?;
    for it in stream {
        writeln!(w, "{},{}", it.key, it.value)?;
    }
    w.flush()
}

/// Read a `key,value` CSV trace (an optional header row is skipped; blank
/// lines are ignored; a missing value column means value 1).
pub fn read_csv(path: &Path) -> io::Result<Stream> {
    let r = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut cols = line.split(',');
        let key_str = cols.next().unwrap_or_default().trim();
        let key: u64 = match key_str.parse() {
            Ok(k) => k,
            Err(_) if lineno == 0 => continue, // header row
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad key {key_str:?}: {e}", lineno + 1),
                ))
            }
        };
        let value: u64 = match cols.next() {
            None => 1,
            Some(v) => v.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad value: {e}", lineno + 1),
                )
            })?,
        };
        out.push(Item::new(key, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join("rsk_io_tests").join(name)
    }

    #[test]
    fn binary_roundtrip() {
        let stream = Dataset::Hadoop.generate(5_000, 1);
        let path = tmp("roundtrip.rskt");
        write_binary(&path, &stream).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(stream, back);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_garbage() {
        let path = tmp("garbage.rskt");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"this is not a trace file").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_roundtrip_with_header() {
        let stream = vec![
            Item::new(1u64, 5),
            Item::new(18446744073709551615, 1),
            Item::new(42, 9000),
        ];
        let path = tmp("roundtrip.csv");
        write_csv(&path, &stream).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(stream, back);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_missing_value_defaults_to_one() {
        let path = tmp("unit.csv");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "key,value\n7\n8,2\n\n9\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(
            back,
            vec![Item::new(7, 1), Item::new(8, 2), Item::new(9, 1)]
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn csv_reports_bad_rows() {
        let path = tmp("bad.csv");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "key,value\n7,x\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_stream_roundtrips() {
        let path = tmp("empty.rskt");
        write_binary(&path, &[]).unwrap();
        assert_eq!(read_binary(&path).unwrap(), vec![]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn binary_rejects_every_truncation() {
        let stream = vec![Item::new(3u64, 7), Item::new(u64::MAX, 1), Item::new(0, 0)];
        let path = tmp("trunc.rskt");
        write_binary(&path, &stream).unwrap();
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len(), 16 + 16 * stream.len());
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                read_binary(&path).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        // trailing junk after the declared count is simply ignored
        let mut padded = full.clone();
        padded.extend_from_slice(b"junk");
        std::fs::write(&path, &padded).unwrap();
        assert_eq!(read_binary(&path).unwrap(), stream);
        std::fs::remove_file(path).unwrap();
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// write → read is the identity on arbitrary streams,
            /// including extreme keys/values and zero values.
            #[test]
            fn prop_binary_roundtrip_is_identity(
                recs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
                tag in any::<u64>(),
            ) {
                let stream: Stream = recs.iter().map(|&(k, v)| Item::new(k, v)).collect();
                let path = tmp(&format!("prop-bin-{tag:x}.rskt"));
                write_binary(&path, &stream).unwrap();
                prop_assert_eq!(read_binary(&path).unwrap(), stream);
                std::fs::remove_file(path).unwrap();
            }

            /// Same identity through the CSV interchange format.
            #[test]
            fn prop_csv_roundtrip_is_identity(
                recs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..300),
                tag in any::<u64>(),
            ) {
                let stream: Stream = recs.iter().map(|&(k, v)| Item::new(k, v)).collect();
                let path = tmp(&format!("prop-csv-{tag:x}.csv"));
                write_csv(&path, &stream).unwrap();
                prop_assert_eq!(read_csv(&path).unwrap(), stream);
                std::fs::remove_file(path).unwrap();
            }

            /// Reading is total on garbage: arbitrary bytes either parse
            /// or return a clean error — never a panic, never a partial
            /// record that pretends to be a full one.
            #[test]
            fn prop_readers_are_total_on_garbage(
                bytes in proptest::collection::vec(any::<u8>(), 0..256),
                tag in any::<u64>(),
            ) {
                let path = tmp(&format!("prop-garbage-{tag:x}"));
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &bytes).unwrap();
                if let Ok(stream) = read_binary(&path) {
                    // accepted ⇒ the header and every record were complete
                    prop_assert_eq!(bytes[..8].to_vec(), MAGIC.to_vec());
                    let count =
                        u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
                    prop_assert_eq!(stream.len(), count);
                    prop_assert!(bytes.len() >= 16 + 16 * count);
                }
                let _ = read_csv(&path); // must not panic
                std::fs::remove_file(path).unwrap();
            }

            /// A truncated binary trace is always rejected, whatever the
            /// stream and wherever the cut lands.
            #[test]
            fn prop_binary_truncation_always_rejected(
                recs in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..40),
                cut_frac in 0u64..1000,
                tag in any::<u64>(),
            ) {
                let stream: Stream = recs.iter().map(|&(k, v)| Item::new(k, v)).collect();
                let path = tmp(&format!("prop-trunc-{tag:x}.rskt"));
                write_binary(&path, &stream).unwrap();
                let full = std::fs::read(&path).unwrap();
                let cut = (cut_frac as usize * (full.len() - 1)) / 1000;
                std::fs::write(&path, &full[..cut]).unwrap();
                prop_assert!(read_binary(&path).is_err());
                std::fs::remove_file(path).unwrap();
            }
        }
    }
}
