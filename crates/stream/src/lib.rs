//! # rsk-stream — workload substrate for the ReliableSketch evaluation
//!
//! The paper evaluates on four real traces (CAIDA IP trace, a web document
//! stream, a university data-center trace, Hadoop traffic) plus synthetic
//! Zipf streams (§6.1.2). The real traces are not redistributable, so this
//! crate provides *calibrated synthetic stand-ins*: generators matched to
//! the item counts, distinct-key counts and heavy-tail shapes the paper
//! reports. All evaluated sketches are key-identity-agnostic (keys are
//! hashed), so only the frequency histogram shape matters for accuracy
//! experiments — see DESIGN.md §5 for the substitution argument.
//!
//! Contents:
//!
//! * [`Item`] / [`Stream`] — the key–value stream model;
//! * [`zipf::ZipfSampler`] — rejection-inversion Zipf rank sampler
//!   (Hörmann & Derflinger 1996), the method behind the synthetic datasets
//!   the paper cites (web-polygraph);
//! * [`Dataset`] — the five workload models with paper-scale specs and
//!   arbitrary-scale generation;
//! * [`GroundTruth`] — exact oracle implementing the `rsk-api` traits;
//! * [`packets::PacketSizeModel`] — byte-valued streams for the testbed
//!   experiment (Fig 20);
//! * [`adversarial`] — stress streams for failure-injection tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod churn;
pub mod datasets;
pub mod io;
pub mod oracle;
pub mod packets;
pub mod zipf;

pub use datasets::{Dataset, DatasetSpec};
pub use oracle::GroundTruth;

/// One stream element: a key and the value it carries.
///
/// With `value = 1` the stream-summary problem reduces to frequency
/// estimation, which is the paper's default setting (§6.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item<K = u64> {
    /// Flow identifier.
    pub key: K,
    /// Value carried by this item (packet count, bytes, …).
    pub value: u64,
}

impl<K> Item<K> {
    /// Construct an item.
    #[inline]
    pub fn new(key: K, value: u64) -> Self {
        Self { key, value }
    }

    /// An item with value 1 (pure frequency counting).
    #[inline]
    pub fn unit(key: K) -> Self {
        Self { key, value: 1 }
    }
}

/// A materialized stream of `u64`-keyed items.
pub type Stream = Vec<Item<u64>>;

/// Sum of all values in the stream (the paper's `N = Σ f(e)`).
pub fn total_value(stream: &[Item<u64>]) -> u64 {
    stream.iter().map(|it| it.value).sum()
}

/// Materialize a stream as the `(key, value)` pair slice the concurrent
/// ingestion APIs (`rsk_api::ConcurrentSummary::ingest_parallel`,
/// `insert_batch`) consume.
///
/// ```
/// use rsk_stream::{to_pairs, Item};
///
/// let stream = [Item::new(3u64, 7), Item::unit(9)];
/// assert_eq!(to_pairs(&stream), vec![(3, 7), (9, 1)]);
/// ```
pub fn to_pairs<K: Copy>(stream: &[Item<K>]) -> Vec<(K, u64)> {
    stream.iter().map(|it| (it.key, it.value)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_constructors() {
        assert_eq!(Item::new(3u64, 7).value, 7);
        assert_eq!(Item::unit(3u64).value, 1);
    }

    #[test]
    fn total_value_sums() {
        let s = vec![Item::new(1, 2), Item::new(2, 3), Item::new(1, 5)];
        assert_eq!(total_value(&s), 10);
    }
}
