//! Byte-valued packet streams for the testbed experiment (Fig 20).
//!
//! The paper's Tofino deployment (§6.5.3) replays 40 M packets at 40 Gbps
//! and reports AAE in Kbps — i.e. values are packet *sizes*, not counts. We
//! model packet sizes with the classic trimodal Internet mix (small ACKs,
//! medium segments, full-MTU data) and provide the unit conversion from
//! byte error to Kbps over the replay window.

use crate::{Item, Stream};
use rsk_hash::SplitMix64;

/// A discrete packet-size distribution.
#[derive(Debug, Clone)]
pub struct PacketSizeModel {
    sizes: Vec<u64>,
    cumulative: Vec<f64>,
}

impl PacketSizeModel {
    /// The classic trimodal Internet mix: 50 % 64 B, 10 % 576 B, 40 % 1500 B
    /// (shares as reported in backbone trace studies).
    pub fn internet_mix() -> Self {
        Self::new(&[(64, 0.5), (576, 0.1), (1500, 0.4)])
    }

    /// Data-center style mix: many small RPCs plus full-MTU bulk transfer.
    pub fn datacenter_mix() -> Self {
        Self::new(&[(64, 0.4), (256, 0.2), (1024, 0.1), (1500, 0.3)])
    }

    /// Build from `(size_bytes, probability)` pairs.
    ///
    /// # Panics
    /// Panics if probabilities do not sum to ≈ 1 or any size is zero.
    pub fn new(mix: &[(u64, f64)]) -> Self {
        assert!(!mix.is_empty());
        let total: f64 = mix.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "probabilities must sum to 1, got {total}"
        );
        let mut sizes = Vec::with_capacity(mix.len());
        let mut cumulative = Vec::with_capacity(mix.len());
        let mut acc = 0.0;
        for &(size, p) in mix {
            assert!(size > 0, "zero-byte packets are not a thing");
            acc += p;
            sizes.push(size);
            cumulative.push(acc);
        }
        // guard against fp drift on the last edge
        *cumulative.last_mut().unwrap() = 1.0;
        Self { sizes, cumulative }
    }

    /// Draw one packet size.
    #[inline]
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        for (i, &edge) in self.cumulative.iter().enumerate() {
            if u < edge {
                return self.sizes[i];
            }
        }
        *self.sizes.last().unwrap()
    }

    /// Mean packet size in bytes.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &edge) in self.cumulative.iter().enumerate() {
            mean += (edge - prev) * self.sizes[i] as f64;
            prev = edge;
        }
        mean
    }

    /// Re-value a unit stream with sampled packet sizes.
    pub fn apply(&self, stream: &[Item<u64>], seed: u64) -> Stream {
        let mut rng = SplitMix64::new(seed);
        stream
            .iter()
            .map(|it| Item::new(it.key, it.value * self.sample(&mut rng)))
            .collect()
    }
}

/// Convert an absolute byte error into the paper's Kbps unit, given the
/// replay duration implied by `total_bytes` at `link_gbps`.
///
/// Fig 20 replays the trace at 40 Gbps; a byte-count error `e` over a
/// `T`-second window corresponds to `8·e / T / 1000` Kbps.
pub fn bytes_error_to_kbps(error_bytes: f64, total_bytes: u64, link_gbps: f64) -> f64 {
    if total_bytes == 0 {
        return 0.0;
    }
    let seconds = (total_bytes as f64 * 8.0) / (link_gbps * 1e9);
    (error_bytes * 8.0) / seconds / 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn sampled_sizes_come_from_the_mix() {
        let m = PacketSizeModel::internet_mix();
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!([64, 576, 1500].contains(&s));
        }
    }

    #[test]
    fn empirical_mean_matches_model_mean() {
        let m = PacketSizeModel::internet_mix();
        let mut rng = SplitMix64::new(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| m.sample(&mut rng)).sum();
        let got = sum as f64 / n as f64;
        let want = m.mean();
        assert!(
            (got - want).abs() < want * 0.02,
            "mean {got:.1} vs model {want:.1}"
        );
    }

    #[test]
    fn internet_mix_mean_value() {
        // 0.5·64 + 0.1·576 + 0.4·1500 = 689.6
        assert!((PacketSizeModel::internet_mix().mean() - 689.6).abs() < 1e-9);
    }

    #[test]
    fn apply_preserves_keys_and_scales_values() {
        let unit = Dataset::Hadoop.generate(10_000, 3);
        let bytes = PacketSizeModel::internet_mix().apply(&unit, 4);
        assert_eq!(unit.len(), bytes.len());
        for (u, b) in unit.iter().zip(&bytes) {
            assert_eq!(u.key, b.key);
            assert!(b.value >= 64 && b.value <= 1500);
        }
    }

    #[test]
    fn kbps_conversion() {
        // 1 GB at 40 Gbps takes 0.2 s; a 1 KB error is 8·1000/0.2/1000 = 40 Kbps
        let kbps = bytes_error_to_kbps(1000.0, 1_000_000_000, 40.0);
        assert!((kbps - 40.0).abs() < 1e-9, "{kbps}");
        assert_eq!(bytes_error_to_kbps(5.0, 0, 40.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_mix_rejected() {
        PacketSizeModel::new(&[(64, 0.5)]);
    }
}
