//! Zipf rank sampling by rejection inversion.
//!
//! Implements the rejection-inversion method of Hörmann & Derflinger
//! ("Rejection-inversion to generate variates from monotone discrete
//! distributions", 1996) — the standard O(1)-per-sample Zipf sampler, also
//! used by Apache Commons and `rand_distr`. A rank `k ∈ {1..n}` is drawn
//! with probability proportional to `k^(−s)`.
//!
//! The paper's synthetic datasets (§6.1.2) are Zipf streams with skews from
//! 0.3 to 3.0; this sampler covers any `s ≥ 0` (with `s = 0` degrading to
//! the uniform distribution).

use rsk_hash::SplitMix64;

/// O(1) Zipf(`n`, `s`) rank sampler.
///
/// ```
/// use rsk_stream::zipf::ZipfSampler;
///
/// let mut z = ZipfSampler::new(1_000_000, 1.05, 42);
/// let mut hits_rank1 = 0;
/// for _ in 0..10_000 {
///     let rank = z.sample();
///     assert!((1..=1_000_000).contains(&rank));
///     if rank == 1 { hits_rank1 += 1; }
/// }
/// // rank 1 carries ≈ 1/H share of the mass — far above uniform
/// assert!(hits_rank1 > 100);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    s: f64,
    rng: SplitMix64,
    // precomputed constants of the rejection-inversion scheme
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl ZipfSampler {
    /// Create a sampler over ranks `1..=n` with exponent `s`, seeded
    /// deterministically.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: u64, s: f64, seed: u64) -> Self {
        assert!(n > 0, "Zipf universe must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be ≥ 0");
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let shift = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        Self {
            n,
            s,
            rng: SplitMix64::new(seed),
            h_x1,
            h_n,
            shift,
        }
    }

    /// Universe size `n`.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Exponent `s`.
    #[inline]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Draw one rank in `1..=n`.
    pub fn sample(&mut self) -> u64 {
        if self.n == 1 {
            return 1;
        }
        loop {
            // u uniform in (h_n, h_x1]; note h_x1 > h_n because hIntegral is
            // increasing and we subtracted 1
            let u = self.h_n + self.rng.next_f64() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k_int = k as u64;
            // quick accept: x close enough to k
            if k - x <= self.shift {
                return k_int;
            }
            // full accept test
            if u >= h_integral(k + 0.5, self.s) - h(k, self.s) {
                return k_int;
            }
        }
    }

    /// Exact probability of rank `k` (for tests; O(n) on first call per
    /// sampler via the normalization sum).
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let z: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / z
    }
}

/// Expected number of distinct ranks observed in `draws` samples of
/// Zipf(`universe`, `s`): `Σ_k (1 − (1 − p_k)^draws)`.
///
/// This is the calibration function behind the dataset models in
/// [`crate::datasets`] — it predicts the distinct-key counts that the
/// paper reports for its traces (≈0.4 M keys in 10 M CAIDA packets, …).
/// Exact but `O(universe)`; fine for the calibration sizes used here.
pub fn expected_distinct(universe: u64, s: f64, draws: u64) -> f64 {
    assert!(universe > 0 && s >= 0.0);
    let z: f64 = (1..=universe).map(|i| (i as f64).powf(-s)).sum();
    let n = draws as f64;
    (1..=universe)
        .map(|k| {
            let p = (k as f64).powf(-s) / z;
            // 1 − (1−p)^n, computed stably via exp/ln_1p
            1.0 - (n * (-p).ln_1p()).exp()
        })
        .sum()
}

/// `H(x) = ∫ t^(−s) dt`, the antiderivative used by rejection inversion.
#[inline]
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    // (exp((1−s)·ln x) − 1) / (1−s), numerically stable near s = 1
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(−s)`.
#[inline]
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
#[inline]
fn h_integral_inverse(u: f64, s: f64) -> f64 {
    let mut t = u * (1.0 - s);
    if t < -1.0 {
        // rounding guard, as in the Apache Commons implementation
        t = -1.0;
    }
    (helper1(t) * u).exp()
}

/// `log1p(x)/x`, continuous at 0.
#[inline]
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

/// `expm1(x)/x`, continuous at 0.
#[inline]
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(n: u64, s: f64, draws: usize, seed: u64) -> Vec<u64> {
        let mut z = ZipfSampler::new(n, s, seed);
        let mut hist = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            let k = z.sample();
            assert!(k >= 1 && k <= n, "rank out of range: {k}");
            hist[k as usize] += 1;
        }
        hist
    }

    #[test]
    fn ranks_in_range_various_exponents() {
        for &s in &[0.0, 0.3, 0.99, 1.0, 1.01, 1.5, 2.0, 3.0] {
            let mut z = ZipfSampler::new(1000, s, 42);
            for _ in 0..10_000 {
                let k = z.sample();
                assert!((1..=1000).contains(&k));
            }
        }
    }

    #[test]
    fn matches_exact_probabilities_small_universe() {
        // chi-square-ish check against the exact pmf on a 10-rank universe
        let n = 10u64;
        for &s in &[0.5, 1.0, 2.0] {
            let draws = 200_000usize;
            let hist = histogram(n, s, draws, 7);
            let z = ZipfSampler::new(n, s, 0);
            for k in 1..=n {
                let expected = z.probability(k) * draws as f64;
                let got = hist[k as usize] as f64;
                assert!(
                    (got - expected).abs() < 5.0 * expected.sqrt() + 10.0,
                    "s={s} rank={k}: got {got}, expected {expected:.1}"
                );
            }
        }
    }

    #[test]
    fn probabilities_are_monotone_decreasing() {
        let z = ZipfSampler::new(100, 1.2, 0);
        for k in 1..100 {
            assert!(z.probability(k) > z.probability(k + 1));
        }
    }

    #[test]
    fn skew_increases_head_mass() {
        let draws = 100_000usize;
        let low = histogram(1000, 0.5, draws, 1)[1];
        let high = histogram(1000, 2.0, draws, 1)[1];
        assert!(
            high > low * 2,
            "rank-1 mass should grow with skew: {low} vs {high}"
        );
    }

    #[test]
    fn uniform_at_zero_exponent() {
        let n = 50u64;
        let draws = 100_000usize;
        let hist = histogram(n, 0.0, draws, 3);
        let expect = draws as f64 / n as f64;
        for k in 1..=n {
            let got = hist[k as usize] as f64;
            assert!(
                (got - expect).abs() < 6.0 * expect.sqrt(),
                "rank {k}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = ZipfSampler::new(1 << 20, 1.05, 99);
        let mut b = ZipfSampler::new(1 << 20, 1.05, 99);
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn singleton_universe() {
        let mut z = ZipfSampler::new(1, 1.5, 5);
        for _ in 0..100 {
            assert_eq!(z.sample(), 1);
        }
    }

    #[test]
    fn expected_distinct_matches_empirical() {
        let (universe, s, draws) = (5_000u64, 1.0, 50_000u64);
        let expect = expected_distinct(universe, s, draws);
        let mut z = ZipfSampler::new(universe, s, 31);
        let seen: std::collections::HashSet<u64> = (0..draws).map(|_| z.sample()).collect();
        let got = seen.len() as f64;
        assert!(
            (got - expect).abs() < expect * 0.05,
            "empirical {got} vs analytic {expect:.0}"
        );
    }

    #[test]
    fn expected_distinct_limits() {
        // zero draws → zero keys; huge draws → the whole universe
        assert_eq!(expected_distinct(100, 1.0, 0), 0.0);
        let all = expected_distinct(100, 0.5, 10_000_000);
        assert!((all - 100.0).abs() < 1e-6);
        // monotone in draws
        assert!(expected_distinct(1000, 1.0, 10_000) > expected_distinct(1000, 1.0, 1_000));
    }
}
