//! Exact ground truth for evaluation.
//!
//! Every experiment compares a sketch's answers against [`GroundTruth`], an
//! exact hash-map summary. It implements the same `rsk-api` traits as the
//! sketches (with MPE = 0), so harness code can treat it uniformly.

use crate::Item;
use rsk_api::{Algorithm, Clear, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary};
use std::collections::HashMap;

/// Exact per-key value sums (the `f(e)` of the paper).
///
/// ```
/// use rsk_stream::{GroundTruth, Item};
///
/// let stream = [Item::new(1u64, 10), Item::new(2, 5), Item::new(1, 2)];
/// let truth = GroundTruth::from_items(&stream);
/// assert_eq!(truth.freq(&1), 12);
/// assert_eq!(truth.distinct(), 2);
/// assert_eq!(truth.keys_above(6), vec![1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroundTruth<K: Key = u64> {
    counts: HashMap<K, u64>,
    total: u64,
}

impl<K: Key> GroundTruth<K> {
    /// Empty oracle.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
            total: 0,
        }
    }

    /// Build from a stream in one pass.
    pub fn from_items<'a, I>(items: I) -> Self
    where
        I: IntoIterator<Item = &'a Item<K>>,
        K: 'a,
    {
        let mut gt = Self::new();
        for it in items {
            gt.insert(&it.key, it.value);
        }
        gt
    }

    /// Exact sum for `key` (0 if unseen).
    #[inline]
    pub fn freq(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Total stream value `N = Σ f(e)`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterate over `(key, f(key))`.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &v)| (k, v))
    }

    /// Keys with `f(e) > threshold` — the paper's "frequent keys" (§6.2.2).
    pub fn keys_above(&self, threshold: u64) -> Vec<K> {
        self.counts
            .iter()
            .filter(|(_, &v)| v > threshold)
            .map(|(k, _)| *k)
            .collect()
    }

    /// The largest value sum in the stream.
    pub fn max_freq(&self) -> u64 {
        self.counts.values().copied().max().unwrap_or(0)
    }
}

impl<K: Key> StreamSummary<K> for GroundTruth<K> {
    fn insert(&mut self, key: &K, value: u64) {
        *self.counts.entry(*key).or_insert(0) += value;
        self.total += value;
    }

    fn query(&self, key: &K) -> u64 {
        self.freq(key)
    }
}

impl<K: Key> ErrorSensing<K> for GroundTruth<K> {
    fn query_with_error(&self, key: &K) -> Estimate {
        Estimate::exact(self.freq(key))
    }
}

impl<K: Key> MemoryFootprint for GroundTruth<K> {
    fn memory_bytes(&self) -> usize {
        // model: key + 64-bit counter per entry
        self.counts.len() * (core::mem::size_of::<K>() + 8)
    }
}

impl<K: Key> Algorithm for GroundTruth<K> {
    fn name(&self) -> String {
        "Exact".into()
    }
}

impl<K: Key> Clear for GroundTruth<K> {
    fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn counts_are_exact() {
        let mut gt = GroundTruth::new();
        gt.insert(&1u64, 3);
        gt.insert(&1, 4);
        gt.insert(&2, 1);
        assert_eq!(gt.freq(&1), 7);
        assert_eq!(gt.freq(&2), 1);
        assert_eq!(gt.freq(&3), 0);
        assert_eq!(gt.total(), 8);
        assert_eq!(gt.distinct(), 2);
        assert_eq!(gt.max_freq(), 7);
    }

    #[test]
    fn from_items_matches_manual_inserts() {
        let stream = Dataset::IpTrace.generate(20_000, 11);
        let gt = GroundTruth::from_items(&stream);
        assert_eq!(gt.total(), 20_000);
        let mut manual = GroundTruth::new();
        for it in &stream {
            manual.insert(&it.key, it.value);
        }
        assert_eq!(gt.distinct(), manual.distinct());
        for (k, v) in gt.iter() {
            assert_eq!(manual.freq(k), v);
        }
    }

    #[test]
    fn keys_above_threshold() {
        let mut gt = GroundTruth::new();
        for k in 0u64..100 {
            gt.insert(&k, k);
        }
        let hot = gt.keys_above(90);
        assert_eq!(hot.len(), 9); // 91..=99
        assert!(hot.iter().all(|k| *k > 90));
    }

    #[test]
    fn clear_resets() {
        let mut gt = GroundTruth::new();
        gt.insert(&5u64, 5);
        rsk_api::Clear::clear(&mut gt);
        assert_eq!(gt.total(), 0);
        assert_eq!(gt.distinct(), 0);
    }

    #[test]
    fn estimates_are_exact() {
        let mut gt = GroundTruth::new();
        gt.insert(&9u64, 42);
        let est = gt.query_with_error(&9);
        assert_eq!(est.value, 42);
        assert_eq!(est.max_possible_error, 0);
        assert!(est.contains(42));
    }
}
