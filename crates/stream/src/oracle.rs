//! Exact ground truth for evaluation.
//!
//! Every experiment compares a sketch's answers against [`GroundTruth`], an
//! exact hash-map summary. It implements the same `rsk-api` traits as the
//! sketches (with MPE = 0), so harness code can treat it uniformly.

use crate::Item;
use rsk_api::{Algorithm, Clear, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary};
use std::collections::HashMap;

/// Exact per-key value sums (the `f(e)` of the paper).
///
/// Iteration order is **deterministic**: keys enumerate in first-occurrence
/// (stream) order, not `HashMap` order. Every figure of the `rsk-exp`
/// harness folds floating-point error sums over this iterator, and the
/// regenerated `results/REPORT.md` is diffed byte-for-byte in CI — a
/// run-to-run reshuffle of the fold order would make that gate flaky.
///
/// ```
/// use rsk_stream::{GroundTruth, Item};
///
/// let stream = [Item::new(1u64, 10), Item::new(2, 5), Item::new(1, 2)];
/// let truth = GroundTruth::from_items(&stream);
/// assert_eq!(truth.freq(&1), 12);
/// assert_eq!(truth.distinct(), 2);
/// assert_eq!(truth.keys_above(6), vec![1]);
/// let order: Vec<u64> = truth.iter().map(|(k, _)| *k).collect();
/// assert_eq!(order, vec![1, 2]); // first-occurrence order, always
/// ```
#[derive(Debug, Clone, Default)]
pub struct GroundTruth<K: Key = u64> {
    /// Key → position in `entries`.
    index: HashMap<K, usize>,
    /// `(key, f(key))` in first-occurrence order.
    entries: Vec<(K, u64)>,
    total: u64,
}

impl<K: Key> GroundTruth<K> {
    /// Empty oracle.
    pub fn new() -> Self {
        Self {
            index: HashMap::new(),
            entries: Vec::new(),
            total: 0,
        }
    }

    /// Build from a stream in one pass.
    pub fn from_items<'a, I>(items: I) -> Self
    where
        I: IntoIterator<Item = &'a Item<K>>,
        K: 'a,
    {
        let mut gt = Self::new();
        for it in items {
            gt.insert(&it.key, it.value);
        }
        gt
    }

    /// Exact sum for `key` (0 if unseen).
    #[inline]
    pub fn freq(&self, key: &K) -> u64 {
        self.index.get(key).map_or(0, |&i| self.entries[i].1)
    }

    /// Total stream value `N = Σ f(e)`.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys.
    #[inline]
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Iterate over `(key, f(key))` in first-occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.entries.iter().map(|(k, v)| (k, *v))
    }

    /// Keys with `f(e) > threshold` — the paper's "frequent keys" (§6.2.2),
    /// in first-occurrence order.
    pub fn keys_above(&self, threshold: u64) -> Vec<K> {
        self.entries
            .iter()
            .filter(|(_, v)| *v > threshold)
            .map(|(k, _)| *k)
            .collect()
    }

    /// The largest value sum in the stream.
    pub fn max_freq(&self) -> u64 {
        self.entries.iter().map(|(_, v)| *v).max().unwrap_or(0)
    }

    /// All `(key, f(key))` pairs, in first-occurrence (stream) order.
    ///
    /// The order is part of the contract — callers that need a stable
    /// ranking can sort these pairs with a *stable* sort and rely on
    /// stream order as the tiebreak, without re-sorting defensively.
    pub fn to_pairs(&self) -> Vec<(K, u64)> {
        self.entries.clone()
    }
}

impl<K: Key> StreamSummary<K> for GroundTruth<K> {
    fn insert(&mut self, key: &K, value: u64) {
        match self.index.entry(*key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.entries[*e.get()].1 += value;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(self.entries.len());
                self.entries.push((*key, value));
            }
        }
        self.total += value;
    }

    fn query(&self, key: &K) -> u64 {
        self.freq(key)
    }
}

impl<K: Key> ErrorSensing<K> for GroundTruth<K> {
    fn query_with_error(&self, key: &K) -> Estimate {
        Estimate::exact(self.freq(key))
    }
}

impl<K: Key> MemoryFootprint for GroundTruth<K> {
    fn memory_bytes(&self) -> usize {
        // model: key + 64-bit counter per entry
        self.entries.len() * (core::mem::size_of::<K>() + 8)
    }
}

impl<K: Key> Algorithm for GroundTruth<K> {
    fn name(&self) -> String {
        "Exact".into()
    }
}

impl<K: Key> Clear for GroundTruth<K> {
    fn clear(&mut self) {
        self.index.clear();
        self.entries.clear();
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;

    #[test]
    fn counts_are_exact() {
        let mut gt = GroundTruth::new();
        gt.insert(&1u64, 3);
        gt.insert(&1, 4);
        gt.insert(&2, 1);
        assert_eq!(gt.freq(&1), 7);
        assert_eq!(gt.freq(&2), 1);
        assert_eq!(gt.freq(&3), 0);
        assert_eq!(gt.total(), 8);
        assert_eq!(gt.distinct(), 2);
        assert_eq!(gt.max_freq(), 7);
    }

    #[test]
    fn from_items_matches_manual_inserts() {
        let stream = Dataset::IpTrace.generate(20_000, 11);
        let gt = GroundTruth::from_items(&stream);
        assert_eq!(gt.total(), 20_000);
        let mut manual = GroundTruth::new();
        for it in &stream {
            manual.insert(&it.key, it.value);
        }
        assert_eq!(gt.distinct(), manual.distinct());
        for (k, v) in gt.iter() {
            assert_eq!(manual.freq(k), v);
        }
    }

    #[test]
    fn keys_above_threshold() {
        let mut gt = GroundTruth::new();
        for k in 0u64..100 {
            gt.insert(&k, k);
        }
        let hot = gt.keys_above(90);
        assert_eq!(hot.len(), 9); // 91..=99
        assert!(hot.iter().all(|k| *k > 90));
    }

    #[test]
    fn iteration_is_first_occurrence_ordered() {
        let stream = Dataset::Zipf { skew: 1.2 }.generate(30_000, 7);
        let gt = GroundTruth::from_items(&stream);
        // the iterator enumerates each key at the position of its first
        // stream occurrence — recompute that order independently
        let mut seen = std::collections::HashSet::new();
        let mut expected = Vec::new();
        for it in &stream {
            if seen.insert(it.key) {
                expected.push(it.key);
            }
        }
        let got: Vec<u64> = gt.iter().map(|(k, _)| *k).collect();
        assert_eq!(got, expected);
        // to_pairs pins the same order (and the same values as freq).
        let pairs = gt.to_pairs();
        assert_eq!(pairs.len(), expected.len());
        for ((k, v), want) in pairs.iter().zip(&expected) {
            assert_eq!(k, want);
            assert_eq!(*v, gt.freq(k));
        }
        // keys_above preserves the same relative order
        let hot = gt.keys_above(10);
        let hot_expected: Vec<u64> = expected
            .iter()
            .copied()
            .filter(|k| gt.freq(k) > 10)
            .collect();
        assert_eq!(hot, hot_expected);
    }

    #[test]
    fn clear_resets() {
        let mut gt = GroundTruth::new();
        gt.insert(&5u64, 5);
        rsk_api::Clear::clear(&mut gt);
        assert_eq!(gt.total(), 0);
        assert_eq!(gt.distinct(), 0);
    }

    #[test]
    fn estimates_are_exact() {
        let mut gt = GroundTruth::new();
        gt.insert(&9u64, 42);
        let est = gt.query_with_error(&9);
        assert_eq!(est.value, 42);
        assert_eq!(est.max_possible_error, 0);
        assert!(est.contains(42));
    }
}
