//! The five workload models of the evaluation (§6.1.2), as calibrated
//! synthetic stand-ins for the paper's traces.
//!
//! | paper dataset | paper scale | distinct keys | our model |
//! |---------------|------------|----------------|-----------|
//! | CAIDA IP trace (default) | 10 M pkts | ≈ 0.4 M | Zipf s≈1.03, universe 0.52 M |
//! | Web document stream | 10 M items | ≈ 0.3 M | Zipf s≈1.10, universe 0.42 M |
//! | University data center | 10 M pkts | ≈ 1.0 M | Zipf s≈0.92, universe 1.25 M |
//! | Hadoop traffic | 10 M pkts | ≈ 20 K | Zipf s≈0.80, universe 21 K |
//! | Synthetic Zipf | 32 M items | varies | Zipf s given, universe 1 M |
//!
//! Keys are produced by applying the SplitMix64 bijection to the sampled
//! rank, so flow identifiers are unique, uniformly spread 64-bit values —
//! exactly what anonymized IP pairs look like to a hash-based sketch.

use crate::zipf::ZipfSampler;
use crate::{Item, Stream};
use rsk_hash::splitmix64;

/// Workload models available to experiments.
///
/// ```
/// use rsk_stream::{Dataset, GroundTruth};
///
/// // 100 K items shaped like the paper's IP trace (same skew family,
/// // distinct-key count scaled with the stream length)
/// let stream = Dataset::IpTrace.generate(100_000, 7);
/// let truth = GroundTruth::from_items(&stream);
/// assert_eq!(truth.total(), 100_000);
/// assert!(truth.distinct() > 1_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Dataset {
    /// Stand-in for the anonymized CAIDA IP trace (the paper's default).
    IpTrace,
    /// Stand-in for the spidered web-document stream.
    WebStream,
    /// Stand-in for the university data-center packet trace.
    DataCenter,
    /// Stand-in for the Hadoop traffic distribution.
    Hadoop,
    /// Synthetic Zipf stream with the given skew (paper: 0.3 – 3.0).
    Zipf {
        /// Zipf exponent of the synthetic stream.
        skew: f64,
    },
}

/// Static description of a workload model.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Display name used in figures.
    pub name: &'static str,
    /// Item count the paper uses for this dataset.
    pub paper_items: usize,
    /// Approximate distinct-key count the paper reports at that scale.
    pub paper_distinct_keys: usize,
    /// Zipf exponent of the stand-in model.
    pub skew: f64,
    /// Key universe size of the stand-in model.
    pub universe: u64,
}

impl Dataset {
    /// All fixed datasets (excluding parameterized Zipf).
    pub const ALL_TRACES: [Dataset; 4] = [
        Dataset::IpTrace,
        Dataset::WebStream,
        Dataset::DataCenter,
        Dataset::Hadoop,
    ];

    /// The model's static description.
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::IpTrace => DatasetSpec {
                name: "IP Trace",
                paper_items: 10_000_000,
                paper_distinct_keys: 400_000,
                skew: 1.03,
                universe: 520_000,
            },
            Dataset::WebStream => DatasetSpec {
                name: "Web Stream",
                paper_items: 10_000_000,
                paper_distinct_keys: 300_000,
                skew: 1.10,
                universe: 420_000,
            },
            Dataset::DataCenter => DatasetSpec {
                name: "Data Center",
                paper_items: 10_000_000,
                paper_distinct_keys: 1_000_000,
                skew: 0.92,
                universe: 1_250_000,
            },
            Dataset::Hadoop => DatasetSpec {
                name: "Hadoop",
                paper_items: 10_000_000,
                paper_distinct_keys: 20_000,
                skew: 0.80,
                universe: 21_000,
            },
            Dataset::Zipf { skew } => DatasetSpec {
                name: "Synthetic",
                paper_items: 32_000_000,
                paper_distinct_keys: 1_000_000,
                skew: *skew,
                universe: 1_000_000,
            },
        }
    }

    /// Generate `n_items` unit-valued items of this workload.
    ///
    /// The universe is scaled proportionally when `n_items` differs from the
    /// paper scale, so the items-per-key density (and hence collision
    /// pressure at a proportionally scaled memory budget) is preserved.
    pub fn generate(&self, n_items: usize, seed: u64) -> Stream {
        self.iter(n_items, seed).collect()
    }

    /// Iterator form of [`Dataset::generate`] (avoids materializing).
    pub fn iter(&self, n_items: usize, seed: u64) -> DatasetIter {
        let spec = self.spec();
        let scale = n_items as f64 / spec.paper_items as f64;
        let universe = if scale < 1.0 {
            ((spec.universe as f64 * scale).ceil() as u64).max(1024)
        } else {
            spec.universe
        };
        // scramble the dataset identity into the key space so different
        // datasets with equal ranks do not share keys
        let key_salt = splitmix64(seed ^ fingerprint(spec.name));
        DatasetIter {
            remaining: n_items,
            sampler: ZipfSampler::new(universe, spec.skew, splitmix64(seed)),
            key_salt,
        }
    }
}

/// Iterator producing a dataset's items on the fly.
#[derive(Debug, Clone)]
pub struct DatasetIter {
    remaining: usize,
    sampler: ZipfSampler,
    key_salt: u64,
}

impl Iterator for DatasetIter {
    type Item = Item<u64>;

    #[inline]
    fn next(&mut self) -> Option<Item<u64>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let rank = self.sampler.sample();
        // SplitMix64 is a bijection: rank → unique uniform-looking flow id
        let key = splitmix64(rank ^ self.key_salt);
        Some(Item::unit(key))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for DatasetIter {}

fn fingerprint(name: &str) -> u64 {
    rsk_hash::fnv1a64(name.as_bytes(), 0)
}

/// Expand a `u64`-keyed stream into 13-byte network 5-tuples
/// (src IP, dst IP, src port, dst port, protocol), for exercising the
/// sketches' generic-key path with the key type real packet pipelines use.
///
/// The mapping is a bijection on the low 13 bytes (derived from the u64
/// key via SplitMix64 halves), so per-key frequencies are preserved.
pub fn to_five_tuples(stream: &[Item<u64>]) -> Vec<Item<[u8; 13]>> {
    stream
        .iter()
        .map(|it| {
            let a = it.key.to_le_bytes();
            let b = splitmix64(it.key).to_le_bytes();
            let tuple: [u8; 13] = [
                a[0], a[1], a[2], a[3], // src ip
                a[4], a[5], a[6], a[7], // dst ip
                b[0], b[1], // src port
                b[2], b[3], // dst port
                6,    // protocol: TCP
            ];
            Item::new(tuple, it.value)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn distinct(stream: &[Item<u64>]) -> usize {
        stream.iter().map(|i| i.key).collect::<HashSet<_>>().len()
    }

    #[test]
    fn generates_requested_count() {
        let s = Dataset::IpTrace.generate(10_000, 1);
        assert_eq!(s.len(), 10_000);
        assert!(s.iter().all(|i| i.value == 1));
    }

    #[test]
    fn iter_matches_generate() {
        let a = Dataset::Hadoop.generate(5_000, 3);
        let b: Vec<_> = Dataset::Hadoop.iter(5_000, 3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_streams() {
        let a = Dataset::IpTrace.generate(1_000, 1);
        let b = Dataset::IpTrace.generate(1_000, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn datasets_have_disjoint_key_spaces() {
        let a: HashSet<u64> = Dataset::IpTrace.iter(2_000, 1).map(|i| i.key).collect();
        let b: HashSet<u64> = Dataset::WebStream.iter(2_000, 1).map(|i| i.key).collect();
        let overlap = a.intersection(&b).count();
        assert!(overlap < 5, "unexpected key overlap: {overlap}");
    }

    #[test]
    fn universe_scales_down_with_items() {
        // at 1% of paper scale the distinct-key count should also be ≈1%
        let s = Dataset::IpTrace.generate(100_000, 7);
        let d = distinct(&s);
        // paper-scale target is 400k distinct over 10M items → ≈4k at 100k
        assert!(
            (1_500..12_000).contains(&d),
            "distinct keys at 1% scale: {d}"
        );
    }

    #[test]
    fn hadoop_is_dense() {
        // Hadoop: 10M items over only 20k keys → each key very frequent
        let s = Dataset::Hadoop.generate(200_000, 5);
        let d = distinct(&s);
        assert!(d < 2_000, "hadoop distinct at 2% scale: {d}");
    }

    #[test]
    fn zipf_skew_parameter_controls_shape() {
        let flat = Dataset::Zipf { skew: 0.3 }.generate(100_000, 9);
        let steep = Dataset::Zipf { skew: 3.0 }.generate(100_000, 9);
        let top = |s: &[Item<u64>]| {
            let mut m = std::collections::HashMap::new();
            for it in s {
                *m.entry(it.key).or_insert(0u64) += 1;
            }
            m.values().copied().max().unwrap()
        };
        assert!(top(&steep) > top(&flat) * 5);
        assert!(distinct(&steep) < distinct(&flat));
    }

    #[test]
    fn five_tuple_expansion_preserves_frequencies() {
        let stream = Dataset::Hadoop.generate(5_000, 2);
        let tuples = to_five_tuples(&stream);
        assert_eq!(stream.len(), tuples.len());
        let d64 = distinct(&stream);
        let d13 = tuples.iter().map(|i| i.key).collect::<HashSet<_>>().len();
        assert_eq!(d64, d13, "bijection must preserve distinct counts");
        assert!(tuples.iter().all(|t| t.key[12] == 6));
    }

    // Paper-scale calibration (≈0.4M/0.3M/1M/20K distinct keys at 10M items)
    // is asserted by the ignored test below; it runs in ~20 s and is part of
    // `cargo test -- --ignored` in CI-nightly mode.
    #[test]
    #[ignore = "paper-scale calibration; run explicitly with --ignored"]
    fn paper_scale_distinct_counts() {
        for ds in Dataset::ALL_TRACES {
            let spec = ds.spec();
            let mut keys = HashSet::new();
            for it in ds.iter(spec.paper_items, 1) {
                keys.insert(it.key);
            }
            let got = keys.len() as f64;
            let want = spec.paper_distinct_keys as f64;
            assert!(
                got > want * 0.7 && got < want * 1.3,
                "{}: distinct {got} vs paper {want}",
                spec.name
            );
        }
    }
}
