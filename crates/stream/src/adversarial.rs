//! Stress workloads for failure injection.
//!
//! The core guarantee of ReliableSketch ("no outliers unless an insertion
//! fails, and insertion failures are vanishingly rare at recommended
//! parameters") must be tested *outside* its comfort zone. These generators
//! produce streams engineered to maximize lock cascades and force insertion
//! failures in deliberately undersized sketches.

use crate::{Item, Stream};
use rsk_hash::{splitmix64, SplitMix64};

/// Every item carries a distinct key — the worst case for election-based
/// buckets (nobody ever wins a majority).
pub fn all_distinct(n_items: usize, seed: u64) -> Stream {
    (0..n_items as u64)
        .map(|i| Item::unit(splitmix64(i ^ seed.rotate_left(17))))
        .collect()
}

/// `n_keys` keys with perfectly equal frequencies, interleaved round-robin —
/// maximizes sustained vote ties.
pub fn round_robin(n_items: usize, n_keys: u64, seed: u64) -> Stream {
    assert!(n_keys > 0);
    (0..n_items as u64)
        .map(|i| Item::unit(splitmix64((i % n_keys) ^ seed)))
        .collect()
}

/// One elephant key carrying `heavy_share` of the stream, the rest uniform
/// mice — exercises the mice-filter/elephant split.
pub fn single_heavy(n_items: usize, heavy_share: f64, n_mice: u64, seed: u64) -> Stream {
    assert!((0.0..=1.0).contains(&heavy_share));
    let mut rng = SplitMix64::new(seed);
    let heavy_key = splitmix64(seed ^ 0xe1ef);
    (0..n_items)
        .map(|_| {
            if rng.next_f64() < heavy_share {
                Item::unit(heavy_key)
            } else {
                Item::unit(splitmix64(rng.next_bounded(n_mice.max(1)) ^ seed ^ 0x3a7))
            }
        })
        .collect()
}

/// Items with large, highly variable values — exercises the weighted-insert
/// path (splitting a value across layers on lock).
pub fn heavy_values(n_items: usize, n_keys: u64, max_value: u64, seed: u64) -> Stream {
    let mut rng = SplitMix64::new(seed);
    (0..n_items)
        .map(|_| {
            let key = splitmix64(rng.next_bounded(n_keys.max(1)) ^ seed);
            Item::new(key, 1 + rng.next_bounded(max_value))
        })
        .collect()
}

/// A burst of `n_keys` distinct keys, each appearing exactly `reps` times in
/// key-major order (all copies of key 1, then key 2, …) — the order that
/// lets one key capture a bucket before the next arrives.
pub fn key_major(n_keys: u64, reps: usize, seed: u64) -> Stream {
    let mut out = Vec::with_capacity(n_keys as usize * reps);
    for k in 0..n_keys {
        let key = splitmix64(k ^ seed.rotate_left(31));
        for _ in 0..reps {
            out.push(Item::unit(key));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroundTruth;
    use std::collections::HashSet;

    #[test]
    fn all_distinct_has_unique_keys() {
        let s = all_distinct(10_000, 5);
        let keys: HashSet<u64> = s.iter().map(|i| i.key).collect();
        assert_eq!(keys.len(), 10_000);
    }

    #[test]
    fn round_robin_equalizes_frequencies() {
        let s = round_robin(9_000, 30, 1);
        let gt = GroundTruth::from_items(&s);
        assert_eq!(gt.distinct(), 30);
        for (_, f) in gt.iter() {
            assert_eq!(f, 300);
        }
    }

    #[test]
    fn single_heavy_share_is_respected() {
        let s = single_heavy(100_000, 0.3, 1000, 2);
        let gt = GroundTruth::from_items(&s);
        let max = gt.max_freq() as f64;
        assert!(
            (max / 100_000.0 - 0.3).abs() < 0.02,
            "heavy share ≈ {}",
            max / 100_000.0
        );
    }

    #[test]
    fn heavy_values_bounded() {
        let s = heavy_values(10_000, 100, 500, 3);
        assert!(s.iter().all(|i| i.value >= 1 && i.value <= 500));
    }

    #[test]
    fn key_major_order_and_counts() {
        let s = key_major(10, 7, 4);
        assert_eq!(s.len(), 70);
        let gt = GroundTruth::from_items(&s);
        assert_eq!(gt.distinct(), 10);
        for (_, f) in gt.iter() {
            assert_eq!(f, 7);
        }
        // key-major: the first 7 items share a key
        assert!(s[..7].iter().all(|i| i.key == s[0].key));
    }
}
