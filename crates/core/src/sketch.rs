//! The full ReliableSketch (paper §3.2): Error-Sensible buckets organized
//! in layers under Double Exponential Control, with the lock mechanism
//! diverting error-increasing insertions downward.
//!
//! * **Insert** follows Algorithm 1 layer by layer. Note one fidelity
//!   detail: the paper's pseudocode (lines 10–11) updates `B.NO` before
//!   computing the leftover, which as literally written subtracts zero; we
//!   implement the prose semantics — the bucket absorbs `λ_i − NO_old`, the
//!   remainder `v − (λ_i − NO_old)` moves to the next layer.
//! * **Query** follows Algorithm 2, accumulating `YES`/`NO` contributions
//!   and the Maximum Possible Error (`Σ NO`), stopping at the first
//!   unlocked / replaceable / matching bucket.
//!
//! ### The guarantee
//!
//! As long as no insertion fails, for **every** key
//! `f̂(e) − f(e) ∈ [0, MPE(e)]` and `MPE(e) ≤ filter_threshold + Σ λ_i ≤ Λ`.
//! This is a *deterministic* consequence of the lock invariant
//! `NO_i ≤ λ_i`; randomness only enters in whether insertions fail, which
//! Theorem 4 bounds by `Δ`. The property tests at the bottom of this file
//! machine-check the deterministic part on arbitrary streams.

use crate::bucket::EsBucket;
use crate::config::{ReliableConfig, ReliableConfigBuilder, BUCKET_BYTES};
use crate::emergency::EmergencyStore;
use crate::filter::MiceFilter;
use crate::geometry::LayerGeometry;
use crate::stats::{InsertTrace, QueryTrace, SketchStats, StopLayer};
use crate::topk::TopKSummary;
use rsk_api::{
    Algorithm, CertifiedTopK, Clear, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary,
    TopK,
};
use rsk_hash::HashFamily;

/// ReliableSketch: stream summary with all-keys error control.
///
/// ```
/// use rsk_core::ReliableSketch;
/// use rsk_api::{StreamSummary, ErrorSensing};
///
/// let mut sk = ReliableSketch::<u64>::builder()
///     .memory_bytes(64 * 1024)
///     .error_tolerance(25)
///     .build();
/// for pkt in 0..1000u64 {
///     sk.insert(&(pkt % 10), 1); // ten keys, 100 each
/// }
/// let est = sk.query_with_error(&3);
/// assert!(est.contains(100));
/// assert!(est.max_possible_error <= 25);
/// ```
#[derive(Debug, Clone)]
pub struct ReliableSketch<K: Key> {
    config: ReliableConfig,
    geometry: LayerGeometry,
    filter: Option<MiceFilter>,
    layers: Vec<Vec<EsBucket<K>>>,
    hashes: HashFamily,
    emergency: EmergencyStore<K>,
    stats: SketchStats,
    /// Per-bucket "may have diverted keys" flags, populated only by
    /// [`crate::merge`] (empty — zero cost — for ordinary sketches).
    /// A flagged bucket never satisfies a query's stop conditions, so
    /// merged queries keep descending wherever either shard might have
    /// pushed a key deeper; see the module docs of [`crate::merge`].
    divert_hints: Vec<Vec<bool>>,
    /// The error-certified top-K layer ([`crate::topk`]), fed by
    /// elephant promotion; `None` — zero cost — unless enabled through
    /// [`Self::enable_top_k`].
    topk: Option<TopKSummary<K>>,
}

impl<K: Key> ReliableSketch<K> {
    /// Start building with paper-default parameters (1 MB, Λ=25, R_w=2,
    /// R_λ=2.5, 20 % 2-bit mice filter).
    pub fn builder() -> ReliableConfigBuilder {
        ReliableConfig::builder()
    }

    /// Construct from a full configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: ReliableConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ReliableConfig: {e}"));
        let geometry = config.geometry();
        Self::with_geometry(config, geometry)
    }

    /// Construct with an explicit layer schedule, bypassing the Double
    /// Exponential Control derivation — the hook the ablation studies in
    /// [`crate::ablation`] use to compare schedules (e.g. the arithmetic
    /// sequences §3.2 warns against) under otherwise identical machinery.
    pub fn with_geometry(config: ReliableConfig, geometry: LayerGeometry) -> Self {
        let filter = config.mice_filter.as_ref().and_then(|fc| {
            MiceFilter::new(
                config.filter_bytes(),
                fc.arrays,
                fc.counter_bits,
                config.filter_threshold().max(1),
                config.seed ^ crate::filter::FILTER_SEED_SALT,
            )
        });
        let layers = geometry
            .widths()
            .iter()
            .map(|&w| vec![EsBucket::new(); w])
            .collect();
        let hashes = HashFamily::new(geometry.depth(), config.seed);
        let emergency = EmergencyStore::new(config.emergency);
        let stats = SketchStats::new(geometry.depth());
        Self {
            config,
            geometry,
            filter,
            layers,
            hashes,
            emergency,
            stats,
            divert_hints: Vec::new(),
            topk: None,
        }
    }

    /// Attach the error-certified top-K layer ([`crate::topk`]): a
    /// `capacity`-slot Space-Saving summary claimed whenever the mice
    /// filter promotes an elephant (every insert for the raw variant),
    /// each claim seeded from this sketch's own certified post-insert
    /// estimate. Enable *before* ingesting — the summary only witnesses
    /// promotions that happen after it exists. Replaces any previous
    /// layer.
    pub fn enable_top_k(&mut self, capacity: usize) {
        let threshold = self.filter.as_ref().map_or(0, MiceFilter::threshold);
        self.topk = Some(TopKSummary::new(capacity, threshold));
    }

    /// Builder-style [`Self::enable_top_k`].
    #[must_use]
    pub fn with_top_k(mut self, capacity: usize) -> Self {
        self.enable_top_k(capacity);
        self
    }

    /// The attached top-K summary, if enabled.
    pub fn top_k_summary(&self) -> Option<&TopKSummary<K>> {
        self.topk.as_ref()
    }

    pub(crate) fn top_k_summary_mut(&mut self) -> &mut Option<TopKSummary<K>> {
        &mut self.topk
    }

    /// The configuration this sketch was built from.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The materialized layer geometry.
    pub fn geometry(&self) -> &LayerGeometry {
        &self.geometry
    }

    /// Operation statistics (hash calls, stop layers, failures).
    pub fn stats(&self) -> &SketchStats {
        &self.stats
    }

    /// Reset operation statistics only.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of insert operations that could not place their full value
    /// (the guarantee is void only for these).
    pub fn insertion_failures(&self) -> u64 {
        self.emergency.failures()
    }

    /// Total value dropped by failed inserts (nonzero only with
    /// [`crate::EmergencyPolicy::Disabled`]).
    pub fn dropped_value(&self) -> u64 {
        self.emergency.dropped_value()
    }

    /// Does the mice filter exist (false for the paper's "Raw" variant)?
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// Insert and return the full trace (stop layer, hash calls, failure).
    pub fn insert_traced(&mut self, key: &K, value: u64) -> InsertTrace {
        self.insert_traced_at(key, value, None)
    }

    /// [`Self::insert_traced`] with an optional precomputed layer-0 bucket
    /// index — the hook [`Self::insert_batch`] uses to amortize hashing.
    /// Hash-call accounting is identical either way: a precomputed index
    /// still cost one evaluation, just in the batch prefix loop.
    fn insert_traced_at(&mut self, key: &K, value: u64, idx0: Option<usize>) -> InsertTrace {
        let (trace, passed) = self.insert_passed_at(key, value, idx0);
        // elephant promotion: value cleared the filter (or the sketch is
        // raw) — offer it to the top-K layer *after* the insert landed,
        // so an unmonitored key's claim is seeded from the certified
        // post-insert estimate (an upper bound on its full mass)
        if passed > 0 && self.topk.is_some() {
            if let Some(mut tk) = self.topk.take() {
                tk.offer(key, passed, || self.query_traced(key).estimate);
                self.topk = Some(tk);
            }
        }
        trace
    }

    /// The Algorithm-1 walk; returns the trace together with the value
    /// that cleared the mice filter (0 when fully absorbed — a mouse).
    fn insert_passed_at(&mut self, key: &K, value: u64, idx0: Option<usize>) -> (InsertTrace, u64) {
        let mut v = value;
        let mut hash_calls = 0u64;

        if let Some(f) = &mut self.filter {
            hash_calls += f.hash_calls();
            v = f.insert(key, v);
            if v == 0 {
                let trace = InsertTrace {
                    stop: StopLayer::Filter,
                    hash_calls,
                    failed_remainder: 0,
                };
                self.stats.record_insert(&trace);
                return (trace, 0);
            }
        }
        let passed = v;

        for i in 0..self.geometry.depth() {
            hash_calls += 1;
            let width = self.geometry.width(i);
            let j = match (i, idx0) {
                (0, Some(j)) => j,
                _ => self.hashes.index(i, key, width),
            };
            let lambda = self.geometry.lambda(i);
            let b = &mut self.layers[i][j];

            // (2) matching candidate: absorb fully, even when locked
            if b.id() == Some(key) {
                *b.yes_mut() += v;
                let trace = InsertTrace {
                    stop: StopLayer::Layer(i),
                    hash_calls,
                    failed_remainder: 0,
                };
                self.stats.record_insert(&trace);
                return (trace, passed);
            }

            // (3) lock triggered: absorb up to λ_i − NO, divert the rest.
            // `NO ≤ λ_i` holds for ordinary sketches, but a merged bucket
            // can already sit above the threshold (room = 0, full divert).
            if b.no().saturating_add(v) > lambda && b.yes() > lambda {
                let room = lambda.saturating_sub(b.no());
                *b.no_mut() += room;
                v -= room;
                continue;
            }

            // (4) negative vote and possible replacement
            *b.no_mut() += v;
            if b.no() >= b.yes() {
                b.set_candidate(*key);
                b.swap_votes();
            }
            let trace = InsertTrace {
                stop: StopLayer::Layer(i),
                hash_calls,
                failed_remainder: 0,
            };
            self.stats.record_insert(&trace);
            return (trace, passed);
        }

        // all layers exhausted: insertion failure
        self.emergency.record(key, v);
        let trace = InsertTrace {
            stop: StopLayer::Failed,
            hash_calls,
            failed_remainder: v,
        };
        self.stats.record_insert(&trace);
        (trace, passed)
    }

    /// Insert a batch of items, amortizing the layer-0 hash over a tight
    /// precompute loop per 64-item chunk (the dominant hash on mouse-free
    /// streams, since most items stop in the first layer or two).
    ///
    /// Semantically identical to calling [`rsk_api::StreamSummary::insert`]
    /// per item in order — same buckets, same traces, same stats — so the
    /// batched and item-at-a-time paths are interchangeable. With a mice
    /// filter configured, the filter hashes first and absorbs most items,
    /// so the batch path degrades gracefully to the plain loop there.
    ///
    /// With the `simd` feature on, the layer-0 prefix hashes four lanes
    /// at a time and upcoming bucket lines are software-prefetched
    /// [`crate::simd::PREFETCH_DISTANCE`] items ahead; items are still
    /// applied in stream order, so results stay bit-identical to the
    /// scalar fallback (pinned by `tests/simd_parity.rs`).
    ///
    /// Returns the number of insertion failures within the batch.
    pub fn insert_batch(&mut self, items: &[(K, u64)]) -> u64 {
        const CHUNK: usize = 64;
        let mut failed = 0u64;
        if self.filter.is_some() {
            for &(k, v) in items {
                if v > 0 && self.insert_traced_at(&k, v, None).stop == StopLayer::Failed {
                    failed += 1;
                }
            }
            return failed;
        }
        let w0 = self.geometry.width(0);
        let mut idx0 = [0usize; CHUNK];
        for chunk in items.chunks(CHUNK) {
            let n = chunk.len();
            crate::simd::layer0_indexes(&self.hashes, chunk, w0, &mut idx0[..n]);
            for (s, &(k, v)) in chunk.iter().enumerate() {
                if crate::simd::ENABLED && s + crate::simd::PREFETCH_DISTANCE < n {
                    // safe software prefetch: a discarded read of the
                    // upcoming bucket line (never a write, so results
                    // cannot change)
                    core::hint::black_box(
                        self.layers[0][idx0[s + crate::simd::PREFETCH_DISTANCE]].yes(),
                    );
                }
                if v > 0 && self.insert_traced_at(&k, v, Some(idx0[s])).stop == StopLayer::Failed {
                    failed += 1;
                }
            }
        }
        failed
    }

    /// Drain an item stream through [`Self::insert_batch`] in batches of
    /// `batch_size` (clamped to ≥ 1), buffering only one batch at a time.
    /// Returns the number of items processed.
    pub fn ingest_batched<I>(&mut self, stream: I, batch_size: usize) -> usize
    where
        I: IntoIterator<Item = (K, u64)>,
    {
        let batch_size = batch_size.max(1);
        let mut buffer = Vec::with_capacity(batch_size);
        let mut total = 0usize;
        for item in stream {
            buffer.push(item);
            if buffer.len() == batch_size {
                self.insert_batch(&buffer);
                total += buffer.len();
                buffer.clear();
            }
        }
        self.insert_batch(&buffer);
        total + buffer.len()
    }

    /// Query and return the full trace (estimate, layers visited, hash
    /// calls).
    pub fn query_traced(&self, key: &K) -> QueryTrace {
        let mut est = 0u64;
        let mut mpe = 0u64;
        let mut hash_calls = 0u64;
        let mut layers_visited = 0usize;
        let mut descend = true;

        if let Some(f) = &self.filter {
            hash_calls += f.hash_calls();
            let (c, saturated) = f.query(key);
            est += c;
            mpe += c;
            descend = saturated;
        }

        if descend {
            for i in 0..self.geometry.depth() {
                hash_calls += 1;
                layers_visited += 1;
                let j = self.hashes.index(i, key, self.geometry.width(i));
                let b = &self.layers[i][j];
                let matches = b.id() == Some(key);
                est += if matches { b.yes() } else { b.no() };
                mpe += b.no();
                // Algorithm 2 stop conditions: unlocked, replaceable, or
                // ours — suppressed on merge-flagged buckets, from which a
                // key may have descended in some shard (see crate::merge)
                if !self.divert_hint(i, j)
                    && (b.no() < self.geometry.lambda(i) || b.yes() == b.no() || matches)
                {
                    break;
                }
            }
        }

        // remainders recorded by the emergency store (exact or bounded)
        let (ev, eo) = self.emergency.query(key);
        est += ev;
        mpe += eo;

        let trace = QueryTrace {
            estimate: Estimate {
                value: est,
                max_possible_error: mpe,
            },
            layers_visited,
            hash_calls,
        };
        self.stats.record_query(&trace);
        trace
    }

    /// Keys currently held as bucket candidates, with their estimates —
    /// the decodable content of the sketch, used for heavy-hitter reports.
    pub fn candidates(&self) -> Vec<(K, Estimate)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for layer in &self.layers {
            for b in layer {
                if let Some(&k) = b.id() {
                    if seen.insert(k) {
                        out.push((k, self.query_with_error(&k)));
                    }
                }
            }
        }
        out
    }

    /// Candidates whose estimate reaches `threshold` (heavy hitters).
    ///
    /// With the all-keys guarantee intact, every key with
    /// `f(e) ≥ threshold + Λ` is reported and every report satisfies
    /// `f̂ ≥ threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, Estimate)> {
        let mut hh: Vec<(K, Estimate)> = self
            .candidates()
            .into_iter()
            .filter(|(_, est)| est.value >= threshold)
            .collect();
        hh.sort_by_key(|(_, est)| core::cmp::Reverse(est.value));
        hh
    }

    /// Worst-case MPE the structure can report for any key:
    /// `filter_threshold + Σ λ_i` (≤ Λ by construction).
    ///
    /// **Caveat:** this ceiling applies to sketches that ingested their
    /// stream directly. After [`rsk_api::Merge::merge`] the reported MPEs
    /// remain *certified* (intervals still contain the truth) but are no
    /// longer a-priori bounded by `Λ` — check [`Self::is_merged`].
    pub fn mpe_ceiling(&self) -> u64 {
        self.config.filter_threshold() + self.geometry.total_lambda()
    }

    /// Has this sketch absorbed another via [`rsk_api::Merge::merge`]?
    ///
    /// Merged sketches keep the interval guarantee (`truth ∈ [f̂ − MPE,
    /// f̂]` for every key) but the `MPE ≤ Λ` ceiling becomes
    /// data-dependent; see [`crate::merge`].
    pub fn is_merged(&self) -> bool {
        !self.divert_hints.is_empty()
    }

    #[inline]
    fn divert_hint(&self, layer: usize, index: usize) -> bool {
        self.divert_hints.get(layer).is_some_and(|l| l[index])
    }

    // ---- crate-internal access for the merge/snapshot modules ----

    pub(crate) fn merge_parts(&mut self) -> PartsMut<'_, K> {
        (
            &mut self.filter,
            &mut self.layers,
            &mut self.emergency,
            &mut self.stats,
            &mut self.divert_hints,
        )
    }

    pub(crate) fn peer_parts(&self) -> Parts<'_, K> {
        (
            &self.filter,
            &self.layers,
            &self.emergency,
            &self.stats,
            &self.divert_hints,
        )
    }
}

/// Mutable view over the sketch internals shared with the merge and
/// snapshot modules.
pub(crate) type PartsMut<'a, K> = (
    &'a mut Option<MiceFilter>,
    &'a mut Vec<Vec<EsBucket<K>>>,
    &'a mut EmergencyStore<K>,
    &'a mut SketchStats,
    &'a mut Vec<Vec<bool>>,
);

/// Shared view over the sketch internals.
pub(crate) type Parts<'a, K> = (
    &'a Option<MiceFilter>,
    &'a Vec<Vec<EsBucket<K>>>,
    &'a EmergencyStore<K>,
    &'a SketchStats,
    &'a Vec<Vec<bool>>,
);

impl<K: Key> StreamSummary<K> for ReliableSketch<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        if value == 0 {
            return;
        }
        self.insert_traced(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_traced(key).estimate.value
    }
}

impl<K: Key> ErrorSensing<K> for ReliableSketch<K> {
    #[inline]
    fn query_with_error(&self, key: &K) -> Estimate {
        self.query_traced(key).estimate
    }
}

impl<K: Key> MemoryFootprint for ReliableSketch<K> {
    fn memory_bytes(&self) -> usize {
        let filter = self.filter.as_ref().map_or(0, |f| f.memory_bytes());
        let layers = self.geometry.total_buckets() * BUCKET_BYTES;
        let topk = self.topk.as_ref().map_or(0, TopKSummary::memory_bytes);
        filter + layers + topk + self.emergency.memory_bytes()
    }
}

impl<K: Key> TopK<K> for ReliableSketch<K> {
    fn certified_top_k(&self, k: usize) -> CertifiedTopK<K> {
        self.topk
            .as_ref()
            .map_or_else(CertifiedTopK::vacuous, |tk| tk.certified_top_k(k))
    }

    fn top_k_capacity(&self) -> Option<usize> {
        self.topk.as_ref().map(TopKSummary::capacity)
    }
}

impl<K: Key> Algorithm for ReliableSketch<K> {
    fn name(&self) -> String {
        if self.has_filter() {
            "Ours".into()
        } else {
            "Ours(Raw)".into()
        }
    }
}

impl<K: Key> Clear for ReliableSketch<K> {
    fn clear(&mut self) {
        if let Some(f) = &mut self.filter {
            f.clear();
        }
        for layer in &mut self.layers {
            for b in layer {
                b.clear();
            }
        }
        self.emergency.clear();
        self.stats.reset();
        self.divert_hints.clear();
        if let Some(tk) = &mut self.topk {
            tk.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Depth, EmergencyPolicy, MiceFilterConfig};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn small_sketch(mem: usize, lambda: u64) -> ReliableSketch<u64> {
        ReliableSketch::<u64>::builder()
            .memory_bytes(mem)
            .error_tolerance(lambda)
            .seed(1)
            .build()
    }

    #[test]
    fn single_key_is_exactish() {
        let mut sk = small_sketch(16 * 1024, 25);
        for _ in 0..1000 {
            sk.insert(&42u64, 1);
        }
        let est = sk.query_with_error(&42);
        assert!(est.contains(1000), "est {est:?}");
        assert!(est.max_possible_error <= 25);
    }

    #[test]
    fn guarantee_holds_without_failures_many_keys() {
        let mut sk = small_sketch(64 * 1024, 25);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // 2000 keys, zipf-ish sizes via k*k spacing
        for k in 0u64..2000 {
            let f = 1 + (k % 50) * (k % 7);
            for _ in 0..f {
                sk.insert(&k, 1);
            }
            *truth.entry(k).or_insert(0) += f;
        }
        assert_eq!(sk.insertion_failures(), 0, "undersized for this test");
        let lambda = sk.config().lambda;
        for (&k, &f) in &truth {
            let est = sk.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
            assert!(est.value - f <= lambda, "outlier at key {k}");
            assert!(est.max_possible_error <= lambda);
        }
    }

    #[test]
    fn raw_variant_has_no_filter_and_same_guarantee() {
        let mut sk: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .raw()
            .seed(2)
            .build();
        assert!(!sk.has_filter());
        assert_eq!(sk.name(), "Ours(Raw)");
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let k = i % 700;
            sk.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        if sk.insertion_failures() == 0 {
            for (&k, &f) in &truth {
                let est = sk.query_with_error(&k);
                assert!(est.contains(f));
                assert!(est.value - f <= 25);
            }
        }
    }

    #[test]
    fn mpe_ceiling_is_within_lambda() {
        for lambda in [5u64, 25, 100] {
            let sk = small_sketch(32 * 1024, lambda);
            assert!(
                sk.mpe_ceiling() <= lambda,
                "ceiling {} > Λ {lambda}",
                sk.mpe_ceiling()
            );
        }
    }

    #[test]
    fn weighted_inserts_split_across_lock_boundary() {
        // large values must be carried across layers without loss
        let mut sk: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(8 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(3)
            .build();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..3000u64 {
            let k = i % 101;
            let v = 1 + (i % 37) * 11;
            sk.insert(&k, v);
            *truth.entry(k).or_insert(0) += v;
        }
        // with the exact emergency table, estimates stay within Λ bounds
        for (&k, &f) in &truth {
            let est = sk.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
    }

    #[test]
    fn unseen_keys_never_underflow() {
        let mut sk = small_sketch(16 * 1024, 25);
        for i in 0..5000u64 {
            sk.insert(&(i % 50), 1);
        }
        for ghost in 10_000u64..10_100 {
            let est = sk.query_with_error(&ghost);
            assert!(est.contains(0), "ghost key {ghost}: {est:?}");
        }
    }

    #[test]
    fn forced_failures_are_counted() {
        // one bucket per layer, two layers, no filter, tiny λ: three
        // mutually colliding heavy keys must overflow the structure
        let cfg = ReliableConfig {
            memory_bytes: 2 * BUCKET_BYTES,
            lambda: 2,
            r_w: 2.0,
            r_lambda: 2.0,
            depth: Depth::Fixed(2),
            mice_filter: None,
            emergency: EmergencyPolicy::Disabled,
            lambda_floor_one: true,
            seed: 4,
        };
        let mut sk: ReliableSketch<u64> = ReliableSketch::new(cfg);
        for i in 0..300u64 {
            sk.insert(&(i % 3), 1);
        }
        assert!(sk.insertion_failures() > 0);
        assert!(sk.dropped_value() > 0);
    }

    #[test]
    fn exact_emergency_restores_guarantee_under_failures() {
        let cfg = ReliableConfig {
            memory_bytes: 4 * BUCKET_BYTES,
            lambda: 2,
            r_w: 2.0,
            r_lambda: 2.0,
            depth: Depth::Fixed(2),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            lambda_floor_one: true,
            seed: 4,
        };
        let mut sk: ReliableSketch<u64> = ReliableSketch::new(cfg);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..900u64 {
            let k = i % 7;
            sk.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        assert!(sk.insertion_failures() > 0, "test should force failures");
        for (&k, &f) in &truth {
            let est = sk.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
    }

    #[test]
    fn heavy_hitters_are_found() {
        let mut sk = small_sketch(64 * 1024, 25);
        for i in 0..10_000u64 {
            sk.insert(&(i % 1000), 1); // everyone gets 10
        }
        for _ in 0..5000 {
            sk.insert(&7777u64, 1); // one elephant
        }
        let hh = sk.heavy_hitters(1000);
        assert!(hh.iter().any(|(k, _)| *k == 7777), "elephant missing");
        assert!(hh[0].0 == 7777);
        assert!(hh[0].1.value >= 5000);
    }

    #[test]
    fn top_k_layer_certifies_the_elephants() {
        let mut sk = small_sketch(64 * 1024, 25).with_top_k(8);
        assert_eq!(rsk_api::TopK::top_k_capacity(&sk), Some(8));
        for i in 0..10_000u64 {
            sk.insert(&(i % 1000), 1); // everyone gets 10 (mice)
        }
        for e in 0..3u64 {
            for _ in 0..5_000 - 1_000 * e {
                sk.insert(&(7_000 + e), 1); // elephants: 5000, 4000, 3000
            }
        }
        let ans = rsk_api::TopK::certified_top_k(&sk, 3);
        assert_eq!(ans.entries.len(), 3);
        let keys: Vec<u64> = ans.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![7000, 7001, 7002]);
        for (e, truth) in ans.entries.iter().zip([5000u64, 4000, 3000]) {
            assert!(e.contains(truth), "{e:?} lost truth {truth}");
        }
        // each true elephant count dwarfs the floor: recall is certified
        assert!(ans.recall_certified(), "floor {}", ans.guaranteed_floor());
        // disabled layer answers vacuously
        let raw = small_sketch(64 * 1024, 25);
        assert_eq!(rsk_api::TopK::top_k_capacity(&raw), None);
        assert_eq!(
            rsk_api::TopK::certified_top_k(&raw, 3),
            rsk_api::CertifiedTopK::vacuous()
        );
        // object safety
        let dyn_tk: &dyn rsk_api::TopK<u64> = &sk;
        assert_eq!(dyn_tk.certified_top_k(1).entries[0].key, 7000);
    }

    #[test]
    fn stats_track_hash_calls() {
        let mut sk = small_sketch(64 * 1024, 25);
        for i in 0..1000u64 {
            sk.insert(&i, 1);
        }
        assert_eq!(sk.stats().inserts(), 1000);
        // 2-array filter: at least 2 hash calls per insert
        assert!(sk.stats().avg_insert_hash_calls() >= 2.0);
        for i in 0..1000u64 {
            sk.query(&i);
        }
        assert_eq!(sk.stats().queries(), 1000);
        assert!(sk.stats().avg_query_hash_calls() >= 2.0);
    }

    #[test]
    fn clear_resets_content() {
        let mut sk = small_sketch(16 * 1024, 25);
        for i in 0..1000u64 {
            sk.insert(&i, 3);
        }
        rsk_api::Clear::clear(&mut sk);
        for i in 0..1000u64 {
            let est = sk.query_with_error(&i);
            assert_eq!(est.value, 0);
        }
        assert_eq!(sk.stats().inserts(), 0);
    }

    #[test]
    fn zero_value_insert_is_noop() {
        let mut sk = small_sketch(16 * 1024, 25);
        sk.insert(&1u64, 0);
        assert_eq!(sk.stats().inserts(), 0);
        assert_eq!(sk.query(&1), 0);
    }

    #[test]
    fn memory_footprint_close_to_budget() {
        for budget in [16 * 1024usize, 64 * 1024, 1 << 20] {
            let sk = small_sketch(budget, 25);
            let used = sk.memory_bytes();
            assert!(used <= budget, "{used} > {budget}");
            assert!(used as f64 > budget as f64 * 0.95, "{used} ≪ {budget}");
        }
    }

    #[test]
    fn eight_bit_filter_variant_works() {
        let mut sk: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .mice_filter(MiceFilterConfig {
                counter_bits: 8,
                ..Default::default()
            })
            .seed(5)
            .build();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let k = i % 900;
            sk.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        assert_eq!(sk.insertion_failures(), 0);
        for (&k, &f) in &truth {
            let est = sk.query_with_error(&k);
            assert!(est.contains(f));
            assert!(est.value - f <= 25);
        }
    }

    #[test]
    fn insert_batch_is_identical_to_item_loop() {
        for raw in [false, true] {
            let build = || {
                let mut b = ReliableSketch::<u64>::builder()
                    .memory_bytes(32 * 1024)
                    .error_tolerance(25)
                    .seed(17);
                if raw {
                    b = b.raw();
                }
                b.build::<u64>()
            };
            let items: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 997, 1 + i % 5)).collect();
            let mut batched = build();
            batched.insert_batch(&items);
            let mut looped = build();
            for &(k, v) in &items {
                looped.insert(&k, v);
            }
            for k in 0..997u64 {
                assert_eq!(
                    batched.query_with_error(&k),
                    looped.query_with_error(&k),
                    "raw={raw} key={k}"
                );
            }
            assert_eq!(batched.stats().inserts(), looped.stats().inserts());
            assert_eq!(
                batched.stats().avg_insert_hash_calls(),
                looped.stats().avg_insert_hash_calls(),
                "batch hashing must be accounted identically"
            );
        }
    }

    #[test]
    fn ingest_batched_drains_arbitrary_stream_lengths() {
        // lengths that are not multiples of the batch size exercise the
        // final partial flush
        for (n, batch) in [(0usize, 8usize), (7, 8), (64, 64), (1000, 33)] {
            let mut sk = small_sketch(32 * 1024, 25);
            let processed = sk.ingest_batched((0..n as u64).map(|i| (i % 13, 1)), batch);
            assert_eq!(processed, n);
            assert_eq!(sk.stats().inserts(), n as u64);
        }
    }

    #[test]
    fn insert_batch_reports_failures() {
        let cfg = ReliableConfig {
            memory_bytes: 2 * BUCKET_BYTES,
            lambda: 2,
            r_w: 2.0,
            r_lambda: 2.0,
            depth: Depth::Fixed(2),
            mice_filter: None,
            emergency: EmergencyPolicy::Disabled,
            lambda_floor_one: true,
            seed: 4,
        };
        let mut sk: ReliableSketch<u64> = ReliableSketch::new(cfg);
        let items: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 3, 1)).collect();
        let failed = sk.insert_batch(&items);
        assert!(failed > 0);
        assert_eq!(failed, sk.insertion_failures());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The deterministic guarantee: on any stream, for every key,
        /// either some insertion failed or
        /// `0 ≤ f̂(e) − f(e) ≤ MPE(e) ≤ Λ`.
        #[test]
        fn prop_all_keys_controlled(
            ops in proptest::collection::vec((0u64..300, 1u64..8), 1..2000),
            seed in 0u64..32,
            raw in proptest::bool::ANY,
        ) {
            let mut b = ReliableSketch::<u64>::builder()
                .memory_bytes(8 * 1024)
                .error_tolerance(25)
                .seed(seed);
            if raw { b = b.raw(); }
            let mut sk: ReliableSketch<u64> = b.build();
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v) in ops {
                sk.insert(&k, v);
                *truth.entry(k).or_insert(0) += v;
            }
            if sk.insertion_failures() == 0 {
                for (&k, &f) in &truth {
                    let est = sk.query_with_error(&k);
                    prop_assert!(est.value >= f,
                        "undershoot key {}: {} < {}", k, est.value, f);
                    prop_assert!(est.value - f <= est.max_possible_error,
                        "MPE lies for key {}", k);
                    prop_assert!(est.max_possible_error <= 25,
                        "MPE {} > Λ", est.max_possible_error);
                }
            }
        }

        /// With the exact emergency table the interval contract holds even
        /// for deliberately overloaded sketches.
        #[test]
        fn prop_emergency_interval_contract(
            ops in proptest::collection::vec((0u64..50, 1u64..30), 1..800),
            seed in 0u64..16,
        ) {
            let cfg = ReliableConfig {
                memory_bytes: 16 * BUCKET_BYTES,
                lambda: 5,
                r_w: 2.0,
                r_lambda: 2.0,
                depth: Depth::Fixed(3),
                mice_filter: None,
                emergency: EmergencyPolicy::ExactTable,
                lambda_floor_one: false,
                seed,
            };
            let mut sk: ReliableSketch<u64> = ReliableSketch::new(cfg);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v) in ops {
                sk.insert(&k, v);
                *truth.entry(k).or_insert(0) += v;
            }
            for (&k, &f) in &truth {
                let est = sk.query_with_error(&k);
                prop_assert!(est.contains(f), "key {}: {} ∉ {:?}", k, f, est);
            }
        }

        /// Lock invariant: no bucket's NO ever exceeds its layer threshold.
        #[test]
        fn prop_lock_invariant(
            ops in proptest::collection::vec((0u64..100, 1u64..12), 1..600),
            seed in 0u64..16,
        ) {
            let mut sk: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
                .memory_bytes(4 * 1024)
                .error_tolerance(25)
                .raw()
                .seed(seed)
                .build();
            for (k, v) in ops {
                sk.insert(&k, v);
            }
            for (i, layer) in sk.layers.iter().enumerate() {
                let lambda = sk.geometry.lambda(i);
                for b in layer {
                    prop_assert!(b.no() <= lambda,
                        "layer {} NO {} > λ {}", i, b.no(), lambda);
                }
            }
        }
    }
}
