//! Parameterization of ReliableSketch (paper §3.2 "Parameter
//! Configurations" and §6.1.1 experimental defaults).
//!
//! The structure is governed by:
//!
//! * `Λ` (`lambda`) — the user's error tolerance;
//! * `R_w` — geometric decay rate of layer widths (`w_i = ⌈W(R_w−1)/R_w^i⌉`);
//! * `R_λ` — geometric decay rate of lock thresholds
//!   (`λ_i = ⌊Λ(R_λ−1)/R_λ^i⌋`, so `Σ λ_i ≤ Λ`);
//! * `d` — the number of layers (paper recommends `d ≥ 7`; `Auto` derives
//!   it from the width decay);
//! * the mice filter (§3.3) and emergency store (§3.3) options.
//!
//! Defaults follow §6.1.1: `R_w = 2`, `R_λ = 2.5`, `Λ = 25`, mice filter
//! on 20 % of memory with 2-bit counters and 2 arrays.

use crate::geometry::LayerGeometry;

/// Modeled size of one Error-Sensible bucket in bytes: 32-bit `YES` +
/// 16-bit `NO` + 32-bit `ID` (§6.1.1) = 80 bits = 10 bytes.
pub const BUCKET_BYTES: usize = 10;

/// How the number of layers is chosen.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth {
    /// Derive `d` from the width decay: the last layer is the deepest one
    /// whose nominal (un-ceiled) width is still ≥ 1, clamped to `[7, 32]`.
    Auto,
    /// Use exactly this many layers (clamped to ≥ 1).
    Fixed(usize),
}

/// Mice-filter configuration (§3.3 accuracy optimization, §6.1.1 defaults).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiceFilterConfig {
    /// Fraction of the total memory budget given to the filter
    /// (paper default: 20 %).
    pub memory_fraction: f64,
    /// Counter width in bits (paper experiments: 2; §3.3 notes 8-bit
    /// counters are adequate in general). Saturation value is
    /// `min(2^bits − 1, λ_1)`.
    pub counter_bits: u32,
    /// Number of CU arrays (the paper's Figure 16 uses a "2-array mice
    /// filter").
    pub arrays: usize,
}

impl Default for MiceFilterConfig {
    fn default() -> Self {
        Self {
            memory_fraction: 0.20,
            counter_bits: 2,
            arrays: 2,
        }
    }
}

/// What to do with the value that survives all `d` layers (an *insertion
/// failure*, §3.3 "Emergency Solution").
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmergencyPolicy {
    /// Drop the remainder and only count the failure — the paper's
    /// accuracy-evaluation setting ("chose not to include them in our
    /// accuracy evaluation", §3.3).
    Disabled,
    /// Record remainders exactly in a hash table (CPU deployment).
    ExactTable,
    /// Record remainders in a bounded SpaceSaving-style table with the
    /// given number of slots (Theorem 4 sizes it as `Δ₂ ln(1/Δ)`).
    SpaceSaving(usize),
}

/// Full configuration of a [`crate::ReliableSketch`].
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct ReliableConfig {
    /// Total memory budget in bytes (filter + bucket layers).
    pub memory_bytes: usize,
    /// Error tolerance `Λ`.
    pub lambda: u64,
    /// Width decay rate `R_w` (recommended range 2–10, best ≈ 2; §6.4.1).
    pub r_w: f64,
    /// Threshold decay rate `R_λ` (recommended range 2–10, best ≈ 2.5;
    /// §6.4.2).
    pub r_lambda: f64,
    /// Layer-count policy.
    pub depth: Depth,
    /// Mice filter (§3.3); `None` is the paper's "Raw" variant.
    pub mice_filter: Option<MiceFilterConfig>,
    /// Emergency store policy.
    pub emergency: EmergencyPolicy,
    /// Clamp every `λ_i` to at least 1 (off by default: the paper floors,
    /// letting deep layers degenerate to one-candidate buckets).
    pub lambda_floor_one: bool,
    /// Master seed for the per-layer hash family.
    pub seed: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            memory_bytes: 1 << 20, // 1 MB, the paper's default
            lambda: 25,            // the paper's default Λ
            r_w: 2.0,
            r_lambda: 2.5,
            depth: Depth::Auto,
            mice_filter: Some(MiceFilterConfig::default()),
            emergency: EmergencyPolicy::Disabled,
            lambda_floor_one: false,
            seed: DEFAULT_SEED,
        }
    }
}

/// Stable default hash seed (experiments override it per repetition).
pub const DEFAULT_SEED: u64 = 0x5eed_0f5e_ed0f_5eed;

impl ReliableConfig {
    /// Start building a configuration from defaults.
    pub fn builder() -> ReliableConfigBuilder {
        ReliableConfigBuilder(Self::default())
    }

    /// Memory reserved for the mice filter, in bytes.
    pub fn filter_bytes(&self) -> usize {
        match &self.mice_filter {
            Some(f) => (self.memory_bytes as f64 * f.memory_fraction) as usize,
            None => 0,
        }
    }

    /// Memory available to the bucket layers, in bytes.
    pub fn layer_bytes(&self) -> usize {
        self.memory_bytes - self.filter_bytes()
    }

    /// Total number of Error-Sensible buckets the budget affords.
    pub fn total_buckets(&self) -> usize {
        self.layer_bytes() / BUCKET_BYTES
    }

    /// Saturation value of the mice filter: `min(2^bits − 1, λ₁)`.
    ///
    /// Returns 0 when no filter is configured.
    pub fn filter_threshold(&self) -> u64 {
        match &self.mice_filter {
            None => 0,
            Some(f) => {
                let cap = (1u64 << f.counter_bits) - 1;
                let lambda1 = nominal_lambda1(self.lambda, self.r_lambda);
                cap.min(lambda1)
            }
        }
    }

    /// Error budget left to the bucket layers after the filter's share.
    ///
    /// The filter's counters saturate at [`Self::filter_threshold`], which
    /// is exactly the filter's worst-case contribution to a key's error, so
    /// the layers are built against `Λ − threshold` to keep the total MPE
    /// within `Λ`.
    pub fn layer_lambda(&self) -> u64 {
        self.lambda - self.filter_threshold().min(self.lambda)
    }

    /// Materialize the layer geometry for this configuration.
    pub fn geometry(&self) -> LayerGeometry {
        LayerGeometry::derive(
            self.total_buckets(),
            self.layer_lambda(),
            self.r_w,
            self.r_lambda,
            self.depth,
            self.lambda_floor_one,
        )
    }

    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.lambda == 0 {
            return Err("Λ must be positive".into());
        }
        if self.r_w <= 1.0 || self.r_w.is_nan() {
            return Err(format!("R_w must be > 1, got {}", self.r_w));
        }
        if self.r_lambda <= 1.0 || self.r_lambda.is_nan() {
            return Err(format!("R_λ must be > 1, got {}", self.r_lambda));
        }
        if let Some(f) = &self.mice_filter {
            if !(0.0..1.0).contains(&f.memory_fraction) {
                return Err(format!(
                    "filter fraction out of range: {}",
                    f.memory_fraction
                ));
            }
            if f.counter_bits == 0 || f.counter_bits > 32 {
                return Err(format!(
                    "filter counter bits out of range: {}",
                    f.counter_bits
                ));
            }
            if f.arrays == 0 || f.arrays > 8 {
                return Err(format!("filter arrays out of range: {}", f.arrays));
            }
        }
        if self.total_buckets() == 0 {
            return Err("memory budget affords zero buckets".into());
        }
        Ok(())
    }
}

/// The nominal first-layer threshold `⌊Λ(R_λ−1)/R_λ⌋`.
pub(crate) fn nominal_lambda1(lambda: u64, r_lambda: f64) -> u64 {
    ((lambda as f64) * (r_lambda - 1.0) / r_lambda).floor() as u64
}

/// Builder for [`ReliableConfig`].
#[derive(Debug, Clone)]
pub struct ReliableConfigBuilder(ReliableConfig);

impl ReliableConfigBuilder {
    /// Total memory budget in bytes.
    pub fn memory_bytes(mut self, bytes: usize) -> Self {
        self.0.memory_bytes = bytes;
        self
    }

    /// Error tolerance `Λ`.
    pub fn error_tolerance(mut self, lambda: u64) -> Self {
        self.0.lambda = lambda;
        self
    }

    /// Width decay rate `R_w`.
    pub fn r_w(mut self, r: f64) -> Self {
        self.0.r_w = r;
        self
    }

    /// Threshold decay rate `R_λ`.
    pub fn r_lambda(mut self, r: f64) -> Self {
        self.0.r_lambda = r;
        self
    }

    /// Layer-count policy.
    pub fn depth(mut self, d: Depth) -> Self {
        self.0.depth = d;
        self
    }

    /// Enable the mice filter with the given settings.
    pub fn mice_filter(mut self, cfg: MiceFilterConfig) -> Self {
        self.0.mice_filter = Some(cfg);
        self
    }

    /// Disable the mice filter (the paper's "Raw" variant).
    pub fn raw(mut self) -> Self {
        self.0.mice_filter = None;
        self
    }

    /// Emergency store policy.
    pub fn emergency(mut self, policy: EmergencyPolicy) -> Self {
        self.0.emergency = policy;
        self
    }

    /// Clamp `λ_i ≥ 1`.
    pub fn lambda_floor_one(mut self, on: bool) -> Self {
        self.0.lambda_floor_one = on;
        self
    }

    /// Hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.0.seed = seed;
        self
    }

    /// Size the structure from a confidence target, per Theorem 4: given
    /// the expected stream mass `n` and the acceptable all-keys failure
    /// probability `delta` (must be `< 1/4`), choose the depth as the root
    /// of the theorem's equation and attach a SpaceSaving emergency layer
    /// of `Δ₂·ln(1/Δ)` slots.
    ///
    /// The memory budget and `Λ` still come from the other builder calls;
    /// this only derives the *shape* parameters the proof prescribes.
    pub fn confidence(mut self, n: u64, delta: f64) -> Self {
        let d = crate::theory::solve_depth(n, self.0.lambda, delta, self.0.r_w, self.0.r_lambda);
        // the theorem's d counts bucket layers before the emergency store;
        // keep at least the practical recommendation of §3.2 (d ≥ 7)
        self.0.depth = Depth::Fixed(d.max(7));
        self.0.emergency = EmergencyPolicy::SpaceSaving(crate::theory::emergency_slots(
            delta,
            self.0.r_w,
            self.0.r_lambda,
        ));
        self
    }

    /// Finish, panicking on invalid parameters.
    pub fn build_config(self) -> ReliableConfig {
        self.0
            .validate()
            .unwrap_or_else(|e| panic!("invalid ReliableConfig: {e}"));
        self.0
    }

    /// Finish without validation (for tests that want pathological configs).
    pub fn build_config_unchecked(self) -> ReliableConfig {
        self.0
    }

    /// Build the sketch directly.
    pub fn build<K: rsk_api::Key>(self) -> crate::ReliableSketch<K> {
        crate::ReliableSketch::new(self.build_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_611() {
        let c = ReliableConfig::default();
        assert_eq!(c.memory_bytes, 1 << 20);
        assert_eq!(c.lambda, 25);
        assert_eq!(c.r_w, 2.0);
        assert_eq!(c.r_lambda, 2.5);
        let f = c.mice_filter.unwrap();
        assert_eq!(f.memory_fraction, 0.20);
        assert_eq!(f.counter_bits, 2);
        assert_eq!(f.arrays, 2);
    }

    #[test]
    fn memory_split_respects_filter_fraction() {
        let c = ReliableConfig::default();
        assert_eq!(c.filter_bytes(), (1 << 20) / 5);
        assert_eq!(c.layer_bytes(), (1 << 20) - (1 << 20) / 5);
        assert_eq!(c.total_buckets(), c.layer_bytes() / BUCKET_BYTES);
    }

    #[test]
    fn raw_variant_gives_all_memory_to_layers() {
        let c = ReliableConfig::builder().raw().build_config();
        assert_eq!(c.filter_bytes(), 0);
        assert_eq!(c.layer_bytes(), c.memory_bytes);
        assert_eq!(c.filter_threshold(), 0);
        assert_eq!(c.layer_lambda(), c.lambda);
    }

    #[test]
    fn filter_threshold_is_min_of_cap_and_lambda1() {
        // defaults: 2-bit counters cap at 3; λ₁ = ⌊25·1.5/2.5⌋ = 15 → 3
        let c = ReliableConfig::default();
        assert_eq!(c.filter_threshold(), 3);
        assert_eq!(c.layer_lambda(), 22);

        // 8-bit counters cap at 255; λ₁ = 15 → 15
        let c8 = ReliableConfig::builder()
            .mice_filter(MiceFilterConfig {
                counter_bits: 8,
                ..Default::default()
            })
            .build_config();
        assert_eq!(c8.filter_threshold(), 15);
        assert_eq!(c8.layer_lambda(), 10);
    }

    #[test]
    fn nominal_lambda1_examples() {
        assert_eq!(nominal_lambda1(25, 2.5), 15);
        assert_eq!(nominal_lambda1(100, 2.0), 50);
        assert_eq!(nominal_lambda1(5, 2.5), 3);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let bad = |f: fn(ReliableConfigBuilder) -> ReliableConfigBuilder| {
            f(ReliableConfig::builder())
                .build_config_unchecked()
                .validate()
        };
        assert!(bad(|b| b.memory_bytes(10)).is_err());
        assert!(bad(|b| b.error_tolerance(0)).is_err());
        assert!(bad(|b| b.r_w(1.0)).is_err());
        assert!(bad(|b| b.r_lambda(0.5)).is_err());
        assert!(bad(|b| b.mice_filter(MiceFilterConfig {
            memory_fraction: 1.5,
            ..Default::default()
        }))
        .is_err());
        assert!(ReliableConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid ReliableConfig")]
    fn build_config_panics_on_invalid() {
        ReliableConfig::builder().error_tolerance(0).build_config();
    }

    #[cfg(feature = "serde")]
    #[test]
    fn config_serde_roundtrip() {
        let config = ReliableConfig {
            memory_bytes: 123_456,
            lambda: 42,
            depth: Depth::Fixed(9),
            emergency: EmergencyPolicy::SpaceSaving(77),
            ..Default::default()
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: ReliableConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(config, back);
    }

    #[test]
    fn confidence_builder_applies_theorem4() {
        let c = ReliableConfig::builder()
            .error_tolerance(25)
            .confidence(10_000_000, 1e-10)
            .build_config();
        match c.depth {
            Depth::Fixed(d) => assert!((7..=32).contains(&d), "depth {d}"),
            Depth::Auto => panic!("confidence must pin the depth"),
        }
        match c.emergency {
            EmergencyPolicy::SpaceSaving(slots) => {
                // Δ₂·ln(1/Δ) = 1875 · ln(1e10) ≈ 43_173
                assert!((40_000..=46_000).contains(&slots), "slots {slots}");
            }
            other => panic!("expected SpaceSaving emergency, got {other:?}"),
        }
    }
}
