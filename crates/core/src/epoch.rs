//! Epoch rotation — bounded-history summaries for long-running streams.
//!
//! A single ReliableSketch summarizes *everything it ever saw*; its
//! counters only grow. Telemetry pipelines instead want a bounded,
//! recent window ("flows of the last measurement interval"), which
//! network devices implement with the classic **two-generation scheme**:
//! an *active* structure absorbs traffic while a *frozen* one serves the
//! previous interval, and on each epoch boundary the generations rotate.
//! The paper's switch deployment (§6.5.3) reads the sketch out per
//! interval in exactly this style.
//!
//! [`EpochedReliable`] packages the scheme:
//!
//! * [`insert`](rsk_api::StreamSummary::insert) feeds the active
//!   generation;
//! * [`query`](rsk_api::StreamSummary::query) answers over the **visible
//!   window** — the frozen epoch plus the active partial epoch — by
//!   summing both generations' answers and MPEs (both certified, so the
//!   sum is);
//! * [`rotate`](EpochedReliable::rotate) retires the frozen generation
//!   (returning it for archival), freezes the active one, and starts a
//!   fresh epoch.
//!
//! The guarantee carries per window: if neither visible generation had
//! an insertion failure, every key's window estimate is within `2Λ`
//! (each generation contributes at most `Λ`), and the reported MPE is
//! always an honest per-key certificate.
//!
//! [`EpochedConcurrent`] is the lock-free twin: the same two-generation
//! scheme over [`ConcurrentReliable`] sketches, so any number of producer
//! threads feed the active generation through `&self` while the frozen
//! generation serves **wait-free reads** — a sealed generation's atomic
//! words are never CASed again, so window queries against it are plain
//! loads with no retry loop (and no lock at all unless the generation
//! recorded insertion failures).
//!
//! ```
//! use rsk_core::epoch::EpochedReliable;
//! use rsk_api::{ErrorSensing, StreamSummary};
//!
//! let mut window = EpochedReliable::<u64>::builder()
//!     .memory_bytes(64 * 1024)
//!     .error_tolerance(25)
//!     .build_epoched();
//!
//! window.insert(&7u64, 100);
//! window.rotate(); // epoch 0 frozen, epoch 1 active
//! window.insert(&7u64, 50);
//! assert!(window.query_with_error(&7u64).contains(150)); // both epochs visible
//!
//! let retired = window.rotate(); // epoch 0 drops out of the window
//! assert!(retired.is_some());
//! assert!(window.query_with_error(&7u64).contains(50));
//! ```

use crate::atomic::ConcurrentReliable;
use crate::config::{ReliableConfig, ReliableConfigBuilder};
use crate::sketch::ReliableSketch;
use crate::topk::TopKSummary;
use rsk_api::{
    Algorithm, CertifiedTopK, Clear, ConcurrentErrorSensing, ConcurrentSummary, ErrorSensing,
    Estimate, Key, MemoryFootprint, Merge, MergeError, StreamSummary, TopK, TopKEntry,
};

/// Answer `certified_top_k(k)` over a visible window: take the monitored
/// candidates of each generation's summary (active first, then frozen,
/// first occurrence wins), re-answer every candidate with the **window**
/// estimate so the count/error pair covers both generations, and charge
/// unmonitored keys the sum of the generations' miss bounds. A visible
/// generation without a top-K summary has an unbounded miss (`u64::MAX`),
/// which saturates the whole answer into a vacuous one.
fn window_certified_top_k<K: Key>(
    k: usize,
    active: Option<&TopKSummary<K>>,
    frozen_visible: bool,
    frozen: Option<&TopKSummary<K>>,
    query: impl Fn(&K) -> Estimate,
) -> CertifiedTopK<K> {
    let Some(active) = active else {
        return CertifiedTopK::vacuous();
    };
    let mut miss_bound = active.miss_bound();
    if frozen_visible {
        miss_bound = miss_bound.saturating_add(frozen.map_or(u64::MAX, TopKSummary::miss_bound));
    }
    let mut seen = std::collections::HashSet::new();
    let mut candidates: Vec<TopKEntry<K>> = Vec::new();
    let entries = active
        .entries_desc()
        .into_iter()
        .chain(frozen.iter().flat_map(|f| f.entries_desc()));
    for entry in entries {
        if seen.insert(entry.key) {
            let est = query(&entry.key);
            candidates.push(TopKEntry {
                key: entry.key,
                count: est.value,
                error: est.max_possible_error,
            });
        }
    }
    candidates.sort_by_key(|e| core::cmp::Reverse(e.count));
    let next_count = candidates.get(k).map_or(0, |e| e.count);
    candidates.truncate(k);
    CertifiedTopK {
        entries: candidates,
        miss_bound,
        next_count,
    }
}

/// Two-generation rotating window over ReliableSketches.
#[derive(Debug, Clone)]
pub struct EpochedReliable<K: Key> {
    active: ReliableSketch<K>,
    frozen: Option<ReliableSketch<K>>,
    config: ReliableConfig,
    epoch: u64,
    /// Top-K capacity carried across rotations: each fresh active
    /// generation is built with its own summary of this capacity.
    top_k: Option<usize>,
}

impl<K: Key> EpochedReliable<K> {
    /// Start building with paper-default parameters (finish with
    /// [`ReliableConfigBuilder::build_epoched`]).
    pub fn builder() -> ReliableConfigBuilder {
        ReliableConfig::builder()
    }

    /// Build from a validated configuration; both generations use it.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(config: ReliableConfig) -> Self {
        Self {
            active: ReliableSketch::new(config.clone()),
            frozen: None,
            config,
            epoch: 0,
            top_k: None,
        }
    }

    /// Attach an error-certified top-K layer of `capacity` slots to the
    /// window: the active generation tracks its elephants from now on,
    /// and every future generation starts with its own summary of the
    /// same capacity, so [`TopK::certified_top_k`] answers over the
    /// visible window. An already-frozen generation keeps whatever
    /// summary it had when sealed (none, if enabled after the fact —
    /// the window then answers vacuously until it rotates out).
    pub fn enable_top_k(&mut self, capacity: usize) {
        self.top_k = Some(capacity.max(1));
        self.active.enable_top_k(capacity);
    }

    /// Builder-style [`Self::enable_top_k`].
    #[must_use]
    pub fn with_top_k(mut self, capacity: usize) -> Self {
        self.enable_top_k(capacity);
        self
    }

    /// Index of the currently active epoch (starts at 0, +1 per rotation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configuration shared by both generations.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The generation currently absorbing inserts.
    pub fn active(&self) -> &ReliableSketch<K> {
        &self.active
    }

    /// The sealed previous epoch, if one exists.
    pub fn frozen(&self) -> Option<&ReliableSketch<K>> {
        self.frozen.as_ref()
    }

    /// Seal the active epoch and start a new one.
    ///
    /// The previously frozen generation — now outside the visible window —
    /// is returned so callers can archive or further aggregate it (e.g.
    /// [`rsk_api::Merge`] it into a long-horizon roll-up).
    pub fn rotate(&mut self) -> Option<ReliableSketch<K>> {
        let mut fresh = ReliableSketch::new(self.config.clone());
        if let Some(capacity) = self.top_k {
            fresh.enable_top_k(capacity);
        }
        let sealed = core::mem::replace(&mut self.active, fresh);
        self.epoch += 1;
        self.frozen.replace(sealed)
    }

    /// Insertion failures across the visible window (active + frozen).
    pub fn insertion_failures(&self) -> u64 {
        self.active.insertion_failures()
            + self
                .frozen
                .as_ref()
                .map_or(0, ReliableSketch::insertion_failures)
    }

    /// Worst-case MPE over the window: one `Λ` ceiling per visible
    /// generation (invalid if a generation was merged — see
    /// [`ReliableSketch::mpe_ceiling`]).
    pub fn mpe_ceiling(&self) -> u64 {
        let per_gen = self.active.mpe_ceiling();
        if self.frozen.is_some() {
            2 * per_gen
        } else {
            per_gen
        }
    }

    /// Heavy hitters of the visible window: candidates from either
    /// generation whose *window* estimate reaches `threshold`, sorted by
    /// estimate descending.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, Estimate)> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let candidates = self
            .active
            .candidates()
            .into_iter()
            .chain(self.frozen.iter().flat_map(|f| f.candidates()));
        for (k, _) in candidates {
            if seen.insert(k) {
                let est = self.query_with_error(&k);
                if est.value >= threshold {
                    out.push((k, est));
                }
            }
        }
        out.sort_by_key(|(_, est)| core::cmp::Reverse(est.value));
        out
    }
}

impl<K: Key> StreamSummary<K> for EpochedReliable<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        self.active.insert(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }
}

impl<K: Key> ErrorSensing<K> for EpochedReliable<K> {
    fn query_with_error(&self, key: &K) -> Estimate {
        let mut est = self.active.query_with_error(key);
        if let Some(frozen) = &self.frozen {
            let old = frozen.query_with_error(key);
            est.value += old.value;
            est.max_possible_error += old.max_possible_error;
        }
        est
    }
}

impl<K: Key> MemoryFootprint for EpochedReliable<K> {
    fn memory_bytes(&self) -> usize {
        self.active.memory_bytes()
            + self
                .frozen
                .as_ref()
                .map_or(0, MemoryFootprint::memory_bytes)
    }
}

impl<K: Key> TopK<K> for EpochedReliable<K> {
    /// Certified heavy hitters of the visible window: each generation's
    /// monitored elephants, re-answered with the window estimate (so
    /// `count`/`error` cover both epochs), with unmonitored keys charged
    /// the sum of the generations' miss bounds.
    fn certified_top_k(&self, k: usize) -> CertifiedTopK<K> {
        window_certified_top_k(
            k,
            self.active.top_k_summary(),
            self.frozen.is_some(),
            self.frozen.as_ref().and_then(ReliableSketch::top_k_summary),
            |key| self.query_with_error(key),
        )
    }

    fn top_k_capacity(&self) -> Option<usize> {
        self.top_k
    }
}

impl<K: Key> Algorithm for EpochedReliable<K> {
    fn name(&self) -> String {
        "Ours(Epoched)".into()
    }
}

impl<K: Key> Clear for EpochedReliable<K> {
    /// Drop both generations and restart at epoch 0 (a configured top-K
    /// layer stays enabled, with an emptied summary).
    fn clear(&mut self) {
        self.active.clear();
        self.frozen = None;
        self.epoch = 0;
    }
}

impl ReliableConfigBuilder {
    /// Build an [`EpochedReliable`] window directly.
    pub fn build_epoched<K: Key>(self) -> EpochedReliable<K> {
        EpochedReliable::new(self.build_config())
    }

    /// Build an [`EpochedConcurrent`] window directly.
    pub fn build_epoched_concurrent<K: Key>(self) -> EpochedConcurrent<K> {
        EpochedConcurrent::new(self.build_config())
    }
}

/// Two-generation rotating window over lock-free
/// [`ConcurrentReliable`] sketches: shared-`&self` ingestion into the
/// active epoch, wait-free reads of the sealed one.
///
/// Rotation is the only exclusive (`&mut`) operation — quiesce producers
/// at the epoch boundary (network pipelines do this anyway: the
/// measurement interval ends, the readout runs, the next interval
/// starts). Between rotations the data path is exactly
/// [`ConcurrentReliable`]'s: CAS-only bucket updates, no mutex, the mice
/// filter running lock-free in front when configured.
///
/// Retired generations can be archived or folded into a long-horizon
/// roll-up via [`rsk_api::Merge`], mirroring [`EpochedReliable::rotate`].
///
/// # Examples
///
/// ```
/// use rsk_core::epoch::EpochedConcurrent;
/// use rsk_api::{ErrorSensing, StreamSummary};
///
/// let mut window = EpochedConcurrent::<u64>::builder()
///     .memory_bytes(64 * 1024)
///     .error_tolerance(25)
///     .build_epoched_concurrent();
///
/// // epoch 0: four producers through a shared reference
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let w = &window;
///         s.spawn(move || {
///             for _ in 0..25u64 {
///                 w.insert_shared(&7u64, 1);
///             }
///         });
///     }
/// });
/// window.rotate(); // seal epoch 0; reads of it are now wait-free
/// window.insert_shared(&7u64, 50);
/// assert!(window.query_with_error(&7u64).contains(150)); // both epochs
///
/// let retired = window.rotate(); // epoch 0 leaves the window
/// assert!(retired.is_some());
/// assert!(window.query_with_error(&7u64).contains(50));
/// ```
#[derive(Debug)]
pub struct EpochedConcurrent<K: Key> {
    active: ConcurrentReliable<K>,
    frozen: Option<ConcurrentReliable<K>>,
    config: ReliableConfig,
    epoch: u64,
    /// Top-K capacity carried across rotations (see
    /// [`Self::enable_top_k`]).
    top_k: Option<usize>,
    /// The sealed generation's top-K summary, **materialized once at
    /// rotation** while the window is exclusively borrowed: sealed-epoch
    /// top-K reads are plain walks of this snapshot — wait-free, no
    /// mutex — matching the sealed generation's wait-free bucket reads.
    frozen_topk: Option<TopKSummary<K>>,
    /// Epoch index at the last replication cut (see
    /// [`crate::replicate`]): `None` until the window first ships a
    /// delta, after which deltas describe "since epoch `cut_epoch`".
    #[cfg(feature = "serde")]
    cut_epoch: Option<u64>,
}

impl<K: Key> EpochedConcurrent<K> {
    /// Start building with paper-default parameters (finish with
    /// [`ReliableConfigBuilder::build_epoched_concurrent`]).
    pub fn builder() -> ReliableConfigBuilder {
        ReliableConfig::builder()
    }

    /// Build from a validated configuration; both generations use it.
    ///
    /// # Panics
    /// Panics if the configuration fails validation, or if `Λ` exceeds
    /// the packed atomic error field (see
    /// [`ConcurrentReliable::new`]).
    pub fn new(config: ReliableConfig) -> Self {
        Self {
            active: ConcurrentReliable::new(config.clone()),
            frozen: None,
            config,
            epoch: 0,
            top_k: None,
            frozen_topk: None,
            #[cfg(feature = "serde")]
            cut_epoch: None,
        }
    }

    /// Attach an error-certified top-K layer of `capacity` slots to the
    /// window (see [`EpochedReliable::enable_top_k`]): the active
    /// generation tracks its elephants behind a promotion-path mutex,
    /// every future generation starts with a fresh summary of the same
    /// capacity, and rotation materializes the sealed generation's
    /// summary for wait-free sealed-epoch reads
    /// ([`Self::frozen_top_k`]).
    pub fn enable_top_k(&mut self, capacity: usize) {
        self.top_k = Some(capacity.max(1));
        self.active.enable_top_k(capacity);
    }

    /// Builder-style [`Self::enable_top_k`].
    #[must_use]
    pub fn with_top_k(mut self, capacity: usize) -> Self {
        self.enable_top_k(capacity);
        self
    }

    /// The sealed generation's top-K summary, snapshotted at rotation.
    /// Reading it takes no lock at all — the snapshot is immutable until
    /// the next exclusive rotation — so sealed-epoch top-K readout is
    /// wait-free, like the sealed generation's bucket reads.
    pub fn frozen_top_k(&self) -> Option<&TopKSummary<K>> {
        self.frozen_topk.as_ref()
    }

    /// Index of the currently active epoch (starts at 0, +1 per rotation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The configuration shared by both generations.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The generation currently absorbing inserts.
    pub fn active(&self) -> &ConcurrentReliable<K> {
        &self.active
    }

    /// The sealed previous epoch, if one exists (wait-free to query).
    pub fn frozen(&self) -> Option<&ConcurrentReliable<K>> {
        self.frozen.as_ref()
    }

    // ---- crate-internal access for the replication layer ----

    /// Exclusive access to the active generation (replica apply).
    #[cfg(feature = "serde")]
    pub(crate) fn active_mut(&mut self) -> &mut ConcurrentReliable<K> {
        &mut self.active
    }

    /// Exclusive access to the frozen generation (replica apply).
    #[cfg(feature = "serde")]
    pub(crate) fn frozen_mut(&mut self) -> Option<&mut ConcurrentReliable<K>> {
        self.frozen.as_mut()
    }

    /// Replace the whole window state (full-snapshot restore on a
    /// replica). Resets the replication cut: the installed state is a
    /// fresh baseline.
    #[cfg(feature = "serde")]
    pub(crate) fn install(
        &mut self,
        active: ConcurrentReliable<K>,
        frozen: Option<ConcurrentReliable<K>>,
        config: ReliableConfig,
        epoch: u64,
    ) {
        self.active = active;
        self.frozen = frozen;
        self.config = config;
        self.epoch = epoch;
        self.cut_epoch = None;
        // Restored state carries no promotion history: answer vacuously
        // until the window rotates into generations that tracked their
        // own elephants.
        self.frozen_topk = None;
    }

    /// Drop every top-K summary in the window (replica apply paths:
    /// counters changed without promotion events, so any summary is
    /// stale). The configured capacity survives, so post-rotation
    /// generations resume tracking.
    #[cfg(feature = "serde")]
    pub(crate) fn invalidate_top_k(&mut self) {
        self.active.invalidate_top_k();
        if let Some(frozen) = self.frozen.as_mut() {
            frozen.invalidate_top_k();
        }
        self.frozen_topk = None;
    }

    /// Epoch index at the last replication cut.
    #[cfg(feature = "serde")]
    pub(crate) fn cut_epoch(&self) -> Option<u64> {
        self.cut_epoch
    }

    /// Record the replication cut at the current epoch.
    #[cfg(feature = "serde")]
    pub(crate) fn set_cut_epoch(&mut self) {
        self.cut_epoch = Some(self.epoch);
    }

    /// Lock-free insert into the active epoch through a shared reference.
    #[inline]
    pub fn insert_shared(&self, key: &K, value: u64) {
        self.active.insert_concurrent(key, value);
    }

    /// Batched insert into the active epoch — delegates to
    /// [`ConcurrentReliable::insert_batch`], so the `simd` lane
    /// hashing/prefetch machinery applies per window generation and the
    /// result is bit-identical to an [`Self::insert_shared`] item loop.
    #[inline]
    pub fn insert_batch(&self, items: &[(K, u64)]) {
        self.active.insert_batch(items);
    }

    /// Seal the active epoch and start a new one.
    ///
    /// The previously frozen generation — now outside the visible window —
    /// is returned so callers can archive it or [`rsk_api::Merge`] it
    /// into a long-horizon roll-up. Exclusive: producers must be
    /// quiescent across the call (the borrow checker enforces it for
    /// scoped threads).
    pub fn rotate(&mut self) -> Option<ConcurrentReliable<K>> {
        let mut fresh = ConcurrentReliable::new(self.config.clone());
        if let Some(capacity) = self.top_k {
            fresh.enable_top_k(capacity);
        }
        let sealed = core::mem::replace(&mut self.active, fresh);
        self.frozen_topk = sealed.top_k_summary();
        self.epoch += 1;
        self.frozen.replace(sealed)
    }

    /// Insertion failures across the visible window (active + frozen).
    pub fn insertion_failures(&self) -> u64 {
        self.active.insertion_failures()
            + self
                .frozen
                .as_ref()
                .map_or(0, ConcurrentReliable::insertion_failures)
    }

    /// Worst-case MPE over the window: one per-generation ceiling per
    /// visible generation (data-dependent if a generation was merged).
    pub fn mpe_ceiling(&self) -> u64 {
        let per_gen = self.active.mpe_ceiling();
        if self.frozen.is_some() {
            2 * per_gen
        } else {
            per_gen
        }
    }

    /// Contention slack of the active generation (the documented
    /// `(arrays − 1) × threshold` undershoot bound of the mice filter
    /// under racing same-key writers; `0` without a filter). A window
    /// query can trail the window truth by at most one slack per visible
    /// generation while producers race — see
    /// [`rsk_api::ConcurrentErrorSensing`].
    pub fn contention_undershoot_bound(&self) -> u64 {
        self.active.contention_undershoot_bound()
    }

    /// Fold another window's *entire visible mass* (active + frozen
    /// generations) into this window's active generation — the
    /// cross-tenant aggregation primitive of a served deployment
    /// (`Merge` frame): after the call, this window answers for both
    /// tenants' histories while `other` is left untouched.
    ///
    /// Both windows must have been built from the same configuration.
    /// Exclusive on `self` (`&mut`): quiesce this window's producers, as
    /// for [`rotate`](Self::rotate). The active generation becomes a
    /// merged overlay (`is_merged()` on it turns true), so the a-priori
    /// `MPE ≤ Λ` ceiling relaxes to the data-dependent merged bound —
    /// every interval stays certified.
    ///
    /// # Errors
    /// Propagates the [`MergeError`] of the underlying
    /// [`ConcurrentReliable`] merge (mismatched shape or seeds).
    pub fn merge_window_from(&mut self, other: &Self) -> Result<(), MergeError> {
        self.active.merge(&other.active)?;
        if let Some(frozen) = &other.frozen {
            self.active.merge(frozen)?;
        }
        Ok(())
    }
}

impl<K: Key> StreamSummary<K> for EpochedConcurrent<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        self.insert_shared(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }
}

impl<K: Key> ErrorSensing<K> for EpochedConcurrent<K> {
    /// Sum both visible generations' certified answers; each interval is
    /// certified, so the sum is.
    fn query_with_error(&self, key: &K) -> Estimate {
        let mut est = self.active.query_with_error(key);
        if let Some(frozen) = &self.frozen {
            let old = frozen.query_with_error(key);
            est.value += old.value;
            est.max_possible_error += old.max_possible_error;
        }
        est
    }
}

impl<K: Key + Send + Sync> ConcurrentErrorSensing<K> for EpochedConcurrent<K> {
    /// Certified read over the visible window through a shared reference:
    /// the sealed generation is read **wait-free** (its atomic words are
    /// never CASed again — plain loads, no retry loop) and the active
    /// generation lock-free; each generation's interval is certified, so
    /// their sum is. This is the `QueryCertified` path of a served
    /// deployment.
    #[inline]
    fn query_with_error_concurrent(&self, key: &K) -> Estimate {
        self.query_with_error(key)
    }
}

impl<K: Key + Send + Sync> ConcurrentSummary<K> for EpochedConcurrent<K> {
    #[inline]
    fn insert_concurrent(&self, key: &K, value: u64) {
        self.insert_shared(key, value);
    }

    #[inline]
    fn query_concurrent(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }

    fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize {
        self.active.ingest_parallel(items, n_workers)
    }
}

impl<K: Key> TopK<K> for EpochedConcurrent<K> {
    /// Certified heavy hitters of the visible window. The sealed
    /// generation's candidates come from the rotation-time snapshot
    /// ([`Self::frozen_top_k`]) — no lock; the active generation's
    /// summary is cloned under its promotion mutex (elephant-rate
    /// traffic only). Every candidate is re-answered with the window
    /// estimate so `count`/`error` cover both epochs.
    fn certified_top_k(&self, k: usize) -> CertifiedTopK<K> {
        window_certified_top_k(
            k,
            self.active.top_k_summary().as_ref(),
            self.frozen.is_some(),
            self.frozen_topk.as_ref(),
            |key| self.query_with_error(key),
        )
    }

    fn top_k_capacity(&self) -> Option<usize> {
        self.top_k
    }
}

impl<K: Key> MemoryFootprint for EpochedConcurrent<K> {
    fn memory_bytes(&self) -> usize {
        self.active.memory_bytes()
            + self
                .frozen
                .as_ref()
                .map_or(0, MemoryFootprint::memory_bytes)
            + self
                .frozen_topk
                .as_ref()
                .map_or(0, TopKSummary::memory_bytes)
    }
}

impl<K: Key> Algorithm for EpochedConcurrent<K> {
    fn name(&self) -> String {
        "OursAtomic(Epoched)".into()
    }
}

impl<K: Key> Clear for EpochedConcurrent<K> {
    /// Drop both generations and restart at epoch 0 (a configured top-K
    /// layer stays enabled, with an emptied summary).
    fn clear(&mut self) {
        Clear::clear(&mut self.active);
        self.frozen = None;
        self.frozen_topk = None;
        self.epoch = 0;
        #[cfg(feature = "serde")]
        {
            self.cut_epoch = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmergencyPolicy;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn window() -> EpochedReliable<u64> {
        EpochedReliable::<u64>::builder()
            .memory_bytes(32 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(17)
            .build_epoched()
    }

    #[test]
    fn fresh_window_is_empty_epoch_zero() {
        let w = window();
        assert_eq!(w.epoch(), 0);
        assert!(w.frozen().is_none());
        assert_eq!(w.query(&1), 0);
    }

    #[test]
    fn window_spans_two_epochs_exactly() {
        let mut w = window();
        w.insert(&1, 10); // epoch 0

        assert!(w.rotate().is_none(), "nothing retired on first rotation");
        w.insert(&1, 20); // epoch 1
        assert_eq!(w.epoch(), 1);
        assert!(w.query_with_error(&1).contains(30), "both epochs visible");

        let retired = w.rotate().expect("epoch 0 retires");
        assert!(retired.query_with_error(&1).contains(10));
        w.insert(&1, 40); // epoch 2
        assert!(
            w.query_with_error(&1).contains(60),
            "epoch 0 left the window"
        );
    }

    #[test]
    fn window_estimates_cover_window_truth_on_real_trace() {
        use rsk_stream::Dataset;
        let stream = Dataset::IpTrace.generate(120_000, 3);
        let mut w = window();
        let mut window_truth: [HashMap<u64, u64>; 2] = [HashMap::new(), HashMap::new()];

        for (i, it) in stream.iter().enumerate() {
            if i > 0 && i % 30_000 == 0 {
                w.rotate();
                window_truth.swap(0, 1);
                window_truth[1] = HashMap::new();
            }
            w.insert(&it.key, it.value);
            *window_truth[1].entry(it.key).or_insert(0) += it.value;
        }

        let mut combined: HashMap<u64, u64> = window_truth[1].clone();
        if w.frozen().is_some() {
            for (k, v) in &window_truth[0] {
                *combined.entry(*k).or_insert(0) += v;
            }
        }
        for (&k, &f) in &combined {
            let est = w.query_with_error(&k);
            assert!(est.contains(f), "key {k}: window truth {f} ∉ {est:?}");
            assert!(est.max_possible_error <= w.mpe_ceiling());
        }
    }

    #[test]
    fn heavy_hitters_report_window_totals() {
        let mut w = window();
        for _ in 0..500 {
            w.insert(&42, 10);
        }
        w.rotate();
        for _ in 0..100 {
            w.insert(&42, 10);
        }
        let hh = w.heavy_hitters(5_000);
        assert_eq!(hh.first().map(|(k, _)| *k), Some(42));
        assert!(hh[0].1.contains(6_000));
    }

    #[test]
    fn failures_aggregate_across_generations() {
        // tiny window under heavy distinct-key pressure fails in both
        // generations; the wrapper reports the sum of the visible two
        let mut w: EpochedReliable<u64> = EpochedReliable::<u64>::builder()
            .memory_bytes(1024)
            .error_tolerance(5)
            .raw()
            .seed(3)
            .build_epoched();
        for i in 0..40_000u64 {
            w.insert(&i, 1);
        }
        let first = w.active().insertion_failures();
        assert!(first > 0);
        w.rotate();
        for i in 0..40_000u64 {
            w.insert(&(i + 1_000_000), 1);
        }
        assert_eq!(
            w.insertion_failures(),
            first + w.active().insertion_failures()
        );
    }

    #[test]
    fn clear_restarts_the_window() {
        let mut w = window();
        w.insert(&1, 5);
        w.rotate();
        w.insert(&1, 5);
        Clear::clear(&mut w);
        assert_eq!(w.epoch(), 0);
        assert!(w.frozen().is_none());
        assert_eq!(w.query(&1), 0);
    }

    #[test]
    fn memory_doubles_once_frozen_exists() {
        let mut w = window();
        let single = w.memory_bytes();
        w.rotate();
        assert_eq!(w.memory_bytes(), 2 * single);
        assert_eq!(w.mpe_ceiling(), 2 * w.active().mpe_ceiling());
    }

    #[test]
    fn retired_epochs_can_roll_up_via_merge() {
        use rsk_api::Merge;
        let mut w = window();
        let mut rollup: Option<ReliableSketch<u64>> = None;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for round in 0..4u64 {
            for i in 0..5_000u64 {
                let k = i % 100;
                w.insert(&k, 1 + round);
                *truth.entry(k).or_insert(0) += 1 + round;
            }
            if let Some(retired) = w.rotate() {
                match &mut rollup {
                    None => rollup = Some(retired),
                    Some(acc) => acc.merge(&retired).unwrap(),
                }
            }
        }
        // roll-up + visible window = the whole history
        let rollup = rollup.unwrap();
        for (&k, &f) in &truth {
            let win = w.query_with_error(&k);
            let old = rollup.query_with_error(&k);
            let total = Estimate {
                value: win.value + old.value,
                max_possible_error: win.max_possible_error + old.max_possible_error,
            };
            assert!(total.contains(f), "key {k}: {f} ∉ {total:?}");
        }
    }

    fn concurrent_window() -> EpochedConcurrent<u64> {
        EpochedConcurrent::<u64>::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(23)
            .build_epoched_concurrent()
    }

    #[test]
    fn concurrent_window_spans_two_epochs() {
        let mut w = concurrent_window();
        w.insert_shared(&1, 10);
        assert!(w.rotate().is_none());
        w.insert_shared(&1, 20);
        assert_eq!(w.epoch(), 1);
        assert!(w.query_with_error(&1).contains(30));
        let retired = w.rotate().expect("epoch 0 retires");
        assert!(retired.query_with_error(&1).contains(10));
        w.insert_shared(&1, 40);
        assert!(
            w.query_with_error(&1).contains(60),
            "epoch 0 left the window"
        );
        assert_eq!(w.mpe_ceiling(), 2 * w.active().mpe_ceiling());
    }

    #[test]
    fn concurrent_window_multi_producer_epochs() {
        // four producers per epoch; rotation at each quiescent boundary.
        // ingest_parallel on the sharded/one-owner path is exact, but here
        // producers race directly, so allow the documented filter slack.
        let mut w = concurrent_window();
        let slack = w.active().contention_undershoot_bound();
        for epoch in 0..3u64 {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let w = &w;
                    s.spawn(move || {
                        for i in 0..5_000u64 {
                            w.insert_shared(&((i + t) % 200), 1 + epoch);
                        }
                    });
                }
            });
            if epoch < 2 {
                w.rotate();
            }
        }
        // visible window: epochs 1 (frozen) and 2 (active)
        let mut window_truth: HashMap<u64, u64> = HashMap::new();
        for t in 0..4u64 {
            for i in 0..5_000u64 {
                *window_truth.entry((i + t) % 200).or_insert(0) += 2 + 3;
            }
        }
        assert_eq!(w.insertion_failures(), 0);
        for (&k, &f) in &window_truth {
            let est = w.query_with_error(&k);
            assert!(
                est.value + 2 * slack >= f,
                "key {k}: window {est:?} trails truth {f}"
            );
            assert!(est.value <= f + est.max_possible_error);
            assert!(est.max_possible_error <= w.mpe_ceiling());
        }
    }

    #[test]
    fn concurrent_retired_epochs_roll_up_via_merge() {
        use rsk_api::Merge;
        let mut w = concurrent_window();
        let mut rollup: Option<crate::atomic::ConcurrentReliable<u64>> = None;
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for round in 0..4u64 {
            for i in 0..5_000u64 {
                let k = i % 100;
                w.insert_shared(&k, 1 + round);
                *truth.entry(k).or_insert(0) += 1 + round;
            }
            if let Some(retired) = w.rotate() {
                match &mut rollup {
                    None => rollup = Some(retired),
                    Some(acc) => acc.merge(&retired).unwrap(),
                }
            }
        }
        let rollup = rollup.unwrap();
        assert!(rollup.is_merged());
        for (&k, &f) in &truth {
            let win = w.query_with_error(&k);
            let old = rollup.query_with_error(&k);
            let total = Estimate {
                value: win.value + old.value,
                max_possible_error: win.max_possible_error + old.max_possible_error,
            };
            assert!(total.contains(f), "key {k}: {f} ∉ {total:?}");
        }
    }

    #[test]
    fn merge_window_from_absorbs_both_generations() {
        let mut a = concurrent_window();
        let mut b = concurrent_window();
        // tenant b spans two generations: 30 frozen + 12 active on key 9
        b.insert_shared(&9, 30);
        b.rotate();
        b.insert_shared(&9, 12);
        a.insert_shared(&9, 100);
        a.merge_window_from(&b).unwrap();
        assert!(a.query_with_error(&9).contains(142));
        assert!(a.active().is_merged());
        // the donor window is untouched
        assert!(b.query_with_error(&9).contains(42));

        // mismatched configurations refuse with a typed error
        let other_seed = EpochedConcurrent::<u64>::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(99)
            .build_epoched_concurrent();
        assert_eq!(
            a.merge_window_from(&other_seed),
            Err(MergeError::SeedMismatch)
        );
    }

    #[test]
    fn concurrent_certified_reads_match_error_sensing() {
        let mut w = concurrent_window();
        w.insert_shared(&5, 40);
        w.rotate();
        w.insert_shared(&5, 2);
        let seq = w.query_with_error(&5);
        let conc = w.query_with_error_concurrent(&5);
        assert_eq!(seq, conc, "shared-reference read must match &self read");
        assert!(conc.contains(42));
    }

    #[test]
    fn concurrent_window_clear_restarts() {
        let mut w = concurrent_window();
        w.insert_shared(&1, 5);
        w.rotate();
        w.insert_shared(&1, 5);
        Clear::clear(&mut w);
        assert_eq!(w.epoch(), 0);
        assert!(w.frozen().is_none());
        assert_eq!(w.query(&1), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary interleavings of inserts and rotations: the window
        /// estimate always covers the two-epoch window truth.
        #[test]
        fn prop_window_contract(
            ops in proptest::collection::vec((0u64..60, 1u64..8, 0u8..12), 1..600),
            seed in 0u64..8,
        ) {
            let mut w: EpochedReliable<u64> = EpochedReliable::<u64>::builder()
                .memory_bytes(8 * 1024)
                .error_tolerance(25)
                .emergency(EmergencyPolicy::ExactTable)
                .seed(seed)
                .build_epoched();
            let mut prev: HashMap<u64, u64> = HashMap::new();
            let mut cur: HashMap<u64, u64> = HashMap::new();
            for (k, v, roll) in ops {
                if roll == 0 {
                    w.rotate();
                    prev = core::mem::take(&mut cur);
                }
                w.insert(&k, v);
                *cur.entry(k).or_insert(0) += v;
            }
            for k in 0u64..60 {
                let f = cur.get(&k).copied().unwrap_or(0)
                    + if w.frozen().is_some() {
                        prev.get(&k).copied().unwrap_or(0)
                    } else { 0 };
                let est = w.query_with_error(&k);
                prop_assert!(est.contains(f),
                    "key {}: window truth {} ∉ [{}, {}]",
                    k, f, est.lower_bound(), est.value);
            }
        }
    }
}
