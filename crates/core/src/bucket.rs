//! The Error-Sensible Bucket (paper §3.1) — the basic counting unit of
//! ReliableSketch.
//!
//! A bucket holds a candidate key (`ID`) and two vote counters (`YES`,
//! `NO`). Insertions run an election (Boyer–Moore style with weighted
//! votes): matching keys vote `YES`, colliding keys vote `NO`, and when the
//! negatives reach the positives the candidate is replaced and the counters
//! swap. The crucial, often-undervalued property (the paper's Key Technique
//! I) is that **`NO` certifies the collision volume**: at query time the
//! bucket can bound its own error.
//!
//! Query contract (proved by induction in the paper's §3.1 discussion):
//!
//! * if `ID == e`: `f(e) ∈ [YES − NO, YES]` — answer `YES`, MPE `NO`;
//! * if `ID != e`: `f(e) ∈ [0, NO]` — answer `NO`, MPE `NO`.
//!
//! The standalone bucket here implements exactly Figure 1's workflow; the
//! layered sketch in [`crate::sketch`] adds the lock mechanism on top of
//! the same fields.

use rsk_api::{Estimate, Key};

/// An Error-Sensible Bucket.
///
/// The paper's hardware layout gives each bucket a 32-bit `YES`, 16-bit
/// `NO` and 32-bit `ID` (§6.1.1); we keep `u64` fields for generality and
/// account the modeled widths in [`crate::config::ReliableConfig`].
///
/// ```
/// use rsk_core::EsBucket;
///
/// // the worked example of the paper's Figure 2 (keys A = 1, B = 2)
/// let mut bucket = EsBucket::new();
/// bucket.insert(&1u64, 2);
/// bucket.insert(&1u64, 3);
/// bucket.insert(&2u64, 10); // B outvotes A: replacement + swap
///
/// let a = bucket.query(&1u64);
/// assert_eq!((a.value, a.max_possible_error), (5, 5));
/// let b = bucket.query(&2u64);
/// assert_eq!((b.value, b.max_possible_error), (10, 5));
/// // both certified intervals contain the truth (f(A)=5, f(B)=10)
/// assert!(a.contains(5) && b.contains(10));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EsBucket<K: Key> {
    id: Option<K>,
    yes: u64,
    no: u64,
}

impl<K: Key> Default for EsBucket<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Key> EsBucket<K> {
    /// An empty bucket (`ID` null, both counters zero).
    #[inline]
    pub const fn new() -> Self {
        Self {
            id: None,
            yes: 0,
            no: 0,
        }
    }

    /// Current candidate key, if any.
    #[inline]
    pub fn id(&self) -> Option<&K> {
        self.id.as_ref()
    }

    /// Positive votes for the candidate.
    #[inline]
    pub fn yes(&self) -> u64 {
        self.yes
    }

    /// Negative votes — the certified collision volume (= the bucket's MPE).
    #[inline]
    pub fn no(&self) -> u64 {
        self.no
    }

    /// Is the bucket in its initial state?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.id.is_none() && self.yes == 0 && self.no == 0
    }

    /// Insert `⟨key, value⟩` (Figure 1: voting phase then replacement
    /// phase).
    #[inline]
    pub fn insert(&mut self, key: &K, value: u64) {
        if value == 0 {
            return;
        }
        if self.id.as_ref() == Some(key) {
            self.yes += value;
            return;
        }
        self.no += value;
        if self.no >= self.yes {
            self.id = Some(*key);
            core::mem::swap(&mut self.yes, &mut self.no);
        }
    }

    /// Query the value sum of `key`, returning the estimate and its MPE.
    #[inline]
    pub fn query(&self, key: &K) -> Estimate {
        let value = if self.id.as_ref() == Some(key) {
            self.yes
        } else {
            self.no
        };
        Estimate {
            value,
            max_possible_error: self.no,
        }
    }

    /// Reset to the initial state.
    #[inline]
    pub fn clear(&mut self) {
        self.id = None;
        self.yes = 0;
        self.no = 0;
    }

    /// Fold another bucket *that observed the same key population* into
    /// this one (the per-bucket step of [`crate::merge`] — both sketches
    /// must share geometry and hash seeds so bucket `(i, j)` saw the same
    /// keys in both shards).
    ///
    /// The union rule preserves the §3.1 interval contract against the
    /// *combined* per-bucket masses `f(e) = f¹(e) + f²(e)`:
    ///
    /// * same candidate (or one side empty): `YES′ = y₁+y₂`,
    ///   `NO′ = n₁+n₂`. Bounds add, so all three contract clauses carry.
    /// * different candidates `a=(y₁,n₁)`, `b=(y₂,n₂)`: shard 2 ranks `a`
    ///   as a non-candidate, so `f(a) ⩽ y₁ + n₂`; symmetrically
    ///   `f(b) ⩽ y₂ + n₁`; any third key `c` satisfies `f(c) ⩽ n₁ + n₂`.
    ///   The winner `w` is the candidate with the larger cross bound
    ///   `y_w + n_l`, and
    ///   `YES′ = y_w + n_l`, `NO′ = max(y_l + n_w, n₁ + n₂)`.
    ///
    ///   Checks: `YES′ ⩾ f(w)` by the cross bound; `NO′` covers both the
    ///   loser and third keys; the candidate lower bound holds because
    ///   `YES′ − NO′ ⩽ (y_w + n_l) − (y_l + n_w) ⩽ y_w − n_w ⩽ f_w(w)`;
    ///   and `YES′ ⩾ NO′` (the bucket invariant) because
    ///   `y_w + n_l ⩾ y_l + n_w` by winner choice and
    ///   `y_w + n_l ⩾ n_w + n_l` by the per-shard `y ⩾ n` invariant.
    pub fn merge_union(&mut self, other: &Self) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        if self.id == other.id {
            self.yes += other.yes;
            self.no += other.no;
            return;
        }
        let (y1, n1) = (self.yes, self.no);
        let (y2, n2) = (other.yes, other.no);
        let self_wins = y1 + n2 >= y2 + n1;
        let (id_w, y_w, n_w, y_l, n_l) = if self_wins {
            (self.id, y1, n1, y2, n2)
        } else {
            (other.id, y2, n2, y1, n1)
        };
        self.id = id_w;
        self.yes = y_w + n_l;
        self.no = (y_l + n_w).max(n1 + n2);
    }

    // ---- crate-internal accessors used by the layered sketch's lock ----

    /// Reassemble a bucket from raw fields (the snapshot module and the
    /// concurrent read-out path, which lifts packed atomic words into
    /// fingerprint-space buckets).
    #[inline]
    pub(crate) fn from_parts(id: Option<K>, yes: u64, no: u64) -> Self {
        Self { id, yes, no }
    }

    #[inline]
    pub(crate) fn yes_mut(&mut self) -> &mut u64 {
        &mut self.yes
    }

    #[inline]
    pub(crate) fn no_mut(&mut self) -> &mut u64 {
        &mut self.no
    }

    #[inline]
    pub(crate) fn set_candidate(&mut self, key: K) {
        self.id = Some(key);
    }

    #[inline]
    pub(crate) fn swap_votes(&mut self) {
        core::mem::swap(&mut self.yes, &mut self.no);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// The worked example of Figure 2: start empty, insert ⟨A,2⟩, ⟨A,3⟩,
    /// ⟨B,10⟩, then query A and B.
    #[test]
    fn paper_figure2_example() {
        let (a, b) = (1u64, 2u64);
        let mut bk = EsBucket::new();

        bk.insert(&a, 2);
        assert_eq!(bk.id(), Some(&a));
        assert_eq!((bk.yes(), bk.no()), (2, 0));

        bk.insert(&a, 3);
        assert_eq!((bk.yes(), bk.no()), (5, 0));

        bk.insert(&b, 10); // NO reaches 10 ≥ YES 5 → replacement + swap
        assert_eq!(bk.id(), Some(&b));
        assert_eq!((bk.yes(), bk.no()), (10, 5));

        let qa = bk.query(&a);
        assert_eq!((qa.value, qa.max_possible_error), (5, 5));
        let qb = bk.query(&b);
        assert_eq!((qb.value, qb.max_possible_error), (10, 5));
    }

    #[test]
    fn empty_bucket_answers_zero_exactly() {
        let bk = EsBucket::<u64>::new();
        let q = bk.query(&7);
        assert_eq!(q.value, 0);
        assert_eq!(q.max_possible_error, 0);
        assert!(bk.is_empty());
    }

    #[test]
    fn first_insert_captures_bucket() {
        let mut bk = EsBucket::new();
        bk.insert(&9u64, 4);
        assert_eq!(bk.id(), Some(&9));
        assert_eq!((bk.yes(), bk.no()), (4, 0));
    }

    #[test]
    fn tie_goes_to_the_newcomer() {
        // NO == YES triggers replacement ("less than or equal", §3.1)
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 5);
        bk.insert(&2u64, 5); // NO=5 ≥ YES=5 → replace
        assert_eq!(bk.id(), Some(&2));
        assert_eq!((bk.yes(), bk.no()), (5, 5));
    }

    #[test]
    fn zero_value_is_a_noop() {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 0);
        assert!(bk.is_empty());
    }

    #[test]
    fn clear_resets() {
        let mut bk = EsBucket::new();
        bk.insert(&1u64, 5);
        bk.clear();
        assert!(bk.is_empty());
    }

    /// Reference checker: replay any insertion sequence and verify the §3.1
    /// interval contract for every key involved.
    fn check_contract(ops: &[(u64, u64)]) {
        let mut bk = EsBucket::new();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(k, v) in ops {
            bk.insert(&k, v);
            *truth.entry(k).or_insert(0) += v;

            // invariant: YES ≥ NO whenever a candidate is present (the
            // replacement rule restores it immediately)
            if bk.id().is_some() {
                assert!(bk.yes() >= bk.no(), "YES {} < NO {}", bk.yes(), bk.no());
            }

            for (&key, &f) in &truth {
                let q = bk.query(&key);
                assert!(
                    q.contains(f),
                    "key {key}: truth {f} outside [{}, {}] after {ops:?}",
                    q.lower_bound(),
                    q.value
                );
            }
            // unseen key: estimate NO bounds it (f = 0 ≤ NO trivially) and
            // the interval must contain 0
            let q = bk.query(&0xffff_ffff_ffff_ffff);
            assert!(q.contains(0));
        }
    }

    #[test]
    fn contract_on_handcrafted_sequences() {
        check_contract(&[(1, 1), (2, 1), (1, 1), (3, 5), (3, 1), (2, 2)]);
        check_contract(&[(1, 100), (2, 99), (2, 2), (1, 1)]);
        check_contract(&[(5, 1); 10]);
        check_contract(&[(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)]);
    }

    #[test]
    fn yes_plus_no_equals_total_inserted() {
        // every inserted unit lands in exactly one of YES/NO (swap preserves
        // the sum)
        let mut bk = EsBucket::new();
        let ops = [(1u64, 3u64), (2, 4), (1, 2), (3, 9), (2, 1)];
        let mut total = 0;
        for (k, v) in ops {
            bk.insert(&k, v);
            total += v;
            assert_eq!(bk.yes() + bk.no(), total);
        }
    }

    #[test]
    fn merge_union_same_candidate_adds_fields() {
        let mut a = EsBucket::new();
        a.insert(&1u64, 5);
        a.insert(&2u64, 2); // ID=1, YES=5, NO=2
        let mut b = EsBucket::new();
        b.insert(&1u64, 7);
        b.insert(&3u64, 3); // ID=1, YES=7, NO=3
        a.merge_union(&b);
        assert_eq!(a.id(), Some(&1));
        assert_eq!((a.yes(), a.no()), (12, 5));
    }

    #[test]
    fn merge_union_empty_sides() {
        let mut a = EsBucket::new();
        a.insert(&1u64, 5);
        let snapshot = a.clone();
        a.merge_union(&EsBucket::new());
        assert_eq!(a, snapshot);

        let mut empty = EsBucket::new();
        empty.merge_union(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn merge_union_different_candidates_keeps_contract() {
        // shard 1: f(10)=8, f(11)=2 → ID=10, YES=8, NO=2
        let mut a = EsBucket::new();
        a.insert(&10u64, 8);
        a.insert(&11u64, 2);
        // shard 2: f(11)=5 → ID=11, YES=5, NO=0
        let mut b = EsBucket::new();
        b.insert(&11u64, 5);
        a.merge_union(&b);
        // combined truth: f(10)=8, f(11)=7
        let qa = a.query(&10u64);
        let qb = a.query(&11u64);
        assert!(qa.contains(8), "10: {qa:?}");
        assert!(qb.contains(7), "11: {qb:?}");
        assert!(a.yes() >= a.no(), "bucket invariant broken");
    }

    proptest! {
        /// For arbitrary insertion sequences the query contract holds for
        /// all keys at all times.
        #[test]
        fn prop_interval_contract(ops in proptest::collection::vec((0u64..8, 1u64..20), 1..200)) {
            check_contract(&ops);
        }

        /// Merging two buckets that observed disjoint slices of one stream
        /// preserves the interval contract against the combined truth, for
        /// every key and any split point.
        #[test]
        fn prop_merge_union_contract(
            ops in proptest::collection::vec((0u64..6, 1u64..15), 2..200),
            assign in proptest::collection::vec(proptest::bool::ANY, 200),
        ) {
            let mut shard1 = EsBucket::new();
            let mut shard2 = EsBucket::new();
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (idx, &(k, v)) in ops.iter().enumerate() {
                if assign[idx % assign.len()] {
                    shard1.insert(&k, v);
                } else {
                    shard2.insert(&k, v);
                }
                *truth.entry(k).or_insert(0) += v;
            }
            shard1.merge_union(&shard2);
            if shard1.id().is_some() {
                prop_assert!(shard1.yes() >= shard1.no());
            }
            for (&k, &f) in &truth {
                let q = shard1.query(&k);
                prop_assert!(q.contains(f),
                    "key {}: truth {} outside [{}, {}]", k, f, q.lower_bound(), q.value);
            }
            // an unseen key still gets a sound (zero-containing) interval
            prop_assert!(shard1.query(&0xdead_beef).contains(0));
        }

        /// Merge is commutative on the answer level: both orders give the
        /// same certified interval for every key.
        #[test]
        fn prop_merge_union_commutes(
            ops1 in proptest::collection::vec((0u64..5, 1u64..10), 0..60),
            ops2 in proptest::collection::vec((0u64..5, 1u64..10), 0..60),
        ) {
            let mut a = EsBucket::new();
            for (k, v) in &ops1 { a.insert(k, *v); }
            let mut b = EsBucket::new();
            for (k, v) in &ops2 { b.insert(k, *v); }

            let mut ab = a.clone();
            ab.merge_union(&b);
            let mut ba = b.clone();
            ba.merge_union(&a);

            for k in 0u64..5 {
                prop_assert_eq!(ab.query(&k), ba.query(&k), "key {}", k);
            }
        }

        /// The candidate's YES−NO never exceeds its true sum, and YES never
        /// undershoots it.
        #[test]
        fn prop_candidate_bounds(ops in proptest::collection::vec((0u64..4, 1u64..10), 1..100)) {
            let mut bk = EsBucket::new();
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v) in ops {
                bk.insert(&k, v);
                *truth.entry(k).or_insert(0) += v;
                if let Some(&id) = bk.id() {
                    let f = truth[&id];
                    prop_assert!(bk.yes() >= f);
                    prop_assert!(bk.yes() - bk.no() <= f);
                }
            }
        }

        /// Per-key answers are monotone non-decreasing over the stream —
        /// inserting anything can only raise (or keep) any key's estimate:
        /// a matching insert raises YES; a colliding insert raises NO (the
        /// miss answer), and a replacement swap hands the old YES to NO.
        #[test]
        fn prop_answers_monotone(ops in proptest::collection::vec((0u64..5, 1u64..10), 1..150)) {
            let mut bk = EsBucket::new();
            let mut last: HashMap<u64, u64> = HashMap::new();
            for (k, v) in ops {
                bk.insert(&k, v);
                for key in 0u64..5 {
                    let q = bk.query(&key).value;
                    let prev = last.insert(key, q).unwrap_or(0);
                    prop_assert!(q >= prev,
                        "estimate of {key} dropped {prev} → {q}");
                }
            }
        }

        /// NO bounds the sum of every non-candidate key.
        #[test]
        fn prop_no_bounds_others(ops in proptest::collection::vec((0u64..4, 1u64..10), 1..100)) {
            let mut bk = EsBucket::new();
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v) in ops {
                bk.insert(&k, v);
                *truth.entry(k).or_insert(0) += v;
                for (&key, &f) in &truth {
                    if bk.id() != Some(&key) {
                        prop_assert!(f <= bk.no(),
                            "non-candidate {key} has f={f} > NO={}", bk.no());
                    }
                }
            }
        }
    }
}
