//! Multi-core ingestion on lock-free shards — a beyond-the-paper
//! extension.
//!
//! The paper demonstrates ReliableSketch on pipelined hardware (FPGA,
//! Tofino); on CPU servers the natural analogue is concurrent ingestion.
//! This module partitions the key space over `S` independent
//! [`ConcurrentReliable`] shards, each a complete lock-free ReliableSketch
//! over its sub-stream (see [`crate::atomic`] for the single-word CAS
//! bucket design), so the per-key `Λ` guarantee is preserved verbatim —
//! the shards simply split the memory budget, remainder included.
//!
//! ### The hot path
//!
//! Earlier revisions locked a `Mutex` per shard and paid a bounded-channel
//! send per item. Both are gone:
//!
//! * [`ShardedReliable::insert_shared`] routes one item to its shard and
//!   inserts with CAS only — any number of producer threads may call it
//!   through `&self` with no lock anywhere on the path.
//! * [`ShardedReliable::ingest_parallel`] runs two barrier-free phases
//!   over scoped threads: workers first partition chunk-affine slices of
//!   the input into per-shard batch buffers (pure local work, one routing
//!   hash per item), then apply whole shards — each by exactly one owner,
//!   flushing every chunk's buffer in chunk order via
//!   [`ConcurrentReliable::insert_batch`]. No per-item channel send, no
//!   mutex, and each shard is applied in stream order — which makes the
//!   result *bit-for-bit identical* to a sequential
//!   [`ShardedReliable::insert_shared`] replay of the same stream, for
//!   every shard and worker count. The root `concurrent_ingest` suite
//!   pins this equivalence.
//!
//! ### Phase-2 scheduling
//!
//! *Which* worker applies which shard is a pluggable
//! [`IngestPolicy`], exercised through
//! [`ShardedReliable::ingest_parallel_with`]:
//!
//! * `Static` — shards are claimed off a shared ticket in index order
//!   (the historical behaviour, and the default of `ingest_parallel`);
//! * `WorkStealing` — shard batches become weighted work units in
//!   per-worker queues (heaviest first; a [`ShardPlacement`] hint seeds
//!   owners inside NUMA-ish group bands) and idle workers steal whole
//!   pending units, so a skew-heated hot shard no longer convoys the
//!   batch tail. See [`crate::schedule`] for the scheduler and
//!   `docs/CONCURRENCY.md` for the performance model.
//!
//! Because a unit is never split, both policies produce bit-identical
//! sketches — the root `work_stealing` suite property-tests this across
//! policies, worker counts, and filtered/raw configurations.
//!
//! ### Seeds and memory
//!
//! Per-shard hash seeds are drawn from the [`SplitMix64`] stream of the
//! master seed (not a linear offset, which left shard families
//! correlated), and `memory_bytes` is split as evenly as possible with
//! the remainder spread over the first `memory_bytes % S` shards so the
//! budgets sum exactly to the configured total.
//!
//! ### Feature parity
//!
//! Shards run the paper's full §3.3 design: the mice filter (when
//! configured) is an atomic CU filter inside every shard, and two
//! same-configuration [`ShardedReliable`]s merge shard-wise via
//! [`rsk_api::Merge`] (see [`crate::merge`]) for distributed aggregation.
//!
//! # Examples
//!
//! Deterministic parallel ingestion — the two-phase path gives the same
//! answers as a sequential replay, filter included:
//!
//! ```
//! use rsk_core::concurrent::ShardedReliable;
//! use rsk_core::ReliableConfig;
//!
//! let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 997, 1)).collect();
//! let config = ReliableConfig { memory_bytes: 256 * 1024, seed: 9, ..Default::default() };
//!
//! let parallel = ShardedReliable::<u64>::new(config.clone(), 4);
//! parallel.ingest_parallel(&items, 4);
//!
//! let replay = ShardedReliable::<u64>::new(config, 4);
//! for (k, v) in &items {
//!     replay.insert_shared(k, *v);
//! }
//! for k in 0..997u64 {
//!     assert_eq!(parallel.query_shared(&k), replay.query_shared(&k));
//! }
//! let truth = items.iter().filter(|(key, _)| *key == 7).count() as u64;
//! assert!(parallel.query_shared(&7).contains(truth));
//! ```

use crate::atomic::ConcurrentReliable;
use crate::config::ReliableConfig;
use crate::schedule::{run_work_stealing, ShardPlacement, WorkUnit};
use rsk_api::{
    Algorithm, ConcurrentErrorSensing, ConcurrentSummary, ErrorSensing, Estimate, IngestPolicy,
    Key, MemoryFootprint, StreamSummary,
};
use rsk_hash::SplitMix64;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Key-partitioned lock-free ReliableSketch for shared (`&self`)
/// ingestion from many threads.
pub struct ShardedReliable<K: Key> {
    shards: Vec<ConcurrentReliable<K>>,
    router_seed: u32,
    placement: Option<ShardPlacement>,
    steals: AtomicU64,
}

impl<K: Key> ShardedReliable<K> {
    /// Split `config.memory_bytes` over `n_shards` lock-free sketches.
    ///
    /// The division distributes the remainder (`memory_bytes % n_shards`)
    /// one byte per leading shard, so no budget is silently dropped, and
    /// per-shard seeds come from a SplitMix64 stream over `config.seed`.
    ///
    /// Shards honor `config.mice_filter`: each builds its own
    /// [`AtomicMiceFilter`](crate::filter::AtomicMiceFilter) from its
    /// budget slice (see [`ConcurrentReliable::new`]), so the sharded
    /// path runs the paper's full filtered variant. Because
    /// [`Self::ingest_parallel`] applies each shard from a single owner,
    /// the filtered guarantees there are *exact*; only direct
    /// multi-producer [`Self::insert_shared`] racing on one key pays the
    /// bounded filter slack documented at
    /// [`ConcurrentReliable::contention_undershoot_bound`].
    ///
    /// # Panics
    /// Panics if `n_shards == 0`, if a per-shard budget is invalid, or if
    /// `config.lambda` yields a layer threshold above
    /// [`crate::atomic::ERR_MAX`] (= 4095) — the packed atomic bucket
    /// stores the error in 12 bits, unlike the unbounded `u64` fields of
    /// [`crate::ReliableSketch`].
    pub fn new(config: ReliableConfig, n_shards: usize) -> Self {
        let (configs, router_seed) = shard_configs(&config, n_shards);
        Self {
            shards: configs.into_iter().map(ConcurrentReliable::new).collect(),
            router_seed,
            placement: None,
            steals: AtomicU64::new(0),
        }
    }

    /// Like [`Self::new`], but with a [`ShardPlacement`] topology hint:
    /// the shard count is `placement.shards()`, each group's shard memory
    /// is constructed from a dedicated thread of that group (best-effort
    /// first-touch NUMA locality — no hard pinning, the crate forbids
    /// `unsafe`), and [`Self::ingest_parallel_with`] seeds each shard's
    /// phase-2 owner inside the group's worker band.
    ///
    /// Per-shard budgets and seeds are derived exactly as in
    /// [`Self::new`] *before* any thread spawns, so a placed sketch is
    /// bit-identical to an unplaced one with the same configuration —
    /// placement only moves memory and work, never answers.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsk_core::concurrent::ShardedReliable;
    /// use rsk_core::schedule::ShardPlacement;
    /// use rsk_core::ReliableConfig;
    ///
    /// let config = ReliableConfig { memory_bytes: 128 * 1024, seed: 5, ..Default::default() };
    /// let placed = ShardedReliable::<u64>::with_placement(
    ///     config.clone(),
    ///     ShardPlacement::contiguous(8, 2), // or ShardPlacement::detect(8)
    /// );
    /// let plain = ShardedReliable::<u64>::new(config, 8);
    /// placed.insert_shared(&7, 3);
    /// plain.insert_shared(&7, 3);
    /// assert_eq!(placed.query_shared(&7), plain.query_shared(&7));
    /// ```
    ///
    /// # Panics
    /// Panics under the same conditions as [`Self::new`].
    pub fn with_placement(config: ReliableConfig, placement: ShardPlacement) -> Self
    where
        K: Send + Sync,
    {
        let (configs, router_seed) = shard_configs(&config, placement.shards());
        // Construct each group's shards from one thread of that group:
        // with the OS's default local-allocation policy this first-touch
        // biases a group's bucket pages toward wherever its thread runs.
        let mut built: Vec<(usize, ConcurrentReliable<K>)> = std::thread::scope(|scope| {
            let placement = &placement;
            let handles: Vec<_> = (0..placement.groups())
                .map(|g| {
                    let group_configs: Vec<(usize, ReliableConfig)> = configs
                        .iter()
                        .enumerate()
                        .filter(|(s, _)| placement.group_of(*s) == g)
                        .map(|(s, c)| (s, c.clone()))
                        .collect();
                    scope.spawn(move || {
                        group_configs
                            .into_iter()
                            .map(|(s, c)| (s, ConcurrentReliable::new(c)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard construction panicked"))
                .collect()
        });
        built.sort_by_key(|(s, _)| *s);
        Self {
            shards: built.into_iter().map(|(_, sh)| sh).collect(),
            router_seed,
            placement: Some(placement),
            steals: AtomicU64::new(0),
        }
    }

    /// Reassemble a sketch from individually restored shards (the
    /// replication layer's full-snapshot path). Placement hints and the
    /// steal gauge do not travel: a replica starts unplaced.
    #[cfg(feature = "serde")]
    pub(crate) fn from_restored_shards(
        shards: Vec<ConcurrentReliable<K>>,
        router_seed: u32,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded sketch needs ≥ 1 shard");
        Self {
            shards,
            router_seed,
            placement: None,
            steals: AtomicU64::new(0),
        }
    }

    /// The topology hint this sketch was built with, if any.
    pub fn placement(&self) -> Option<&ShardPlacement> {
        self.placement.as_ref()
    }

    /// Work units stolen across all [`Self::ingest_parallel_with`] calls
    /// under [`IngestPolicy::WorkStealing`] — shards applied by a worker
    /// other than their seeded owner (load-balance gauge; 0 for the
    /// static policy and for perfectly balanced runs).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to (diagnostics and tests).
    #[inline]
    pub fn shard_of(&self, key: &K) -> usize {
        ((key.hash32(self.router_seed) as u64 * self.shards.len() as u64) >> 32) as usize
    }

    /// Direct access to shard `i` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &ConcurrentReliable<K> {
        &self.shards[i]
    }

    /// Mutable access to shard `i` (the shard-wise [`rsk_api::Merge`]).
    pub(crate) fn shard_mut(&mut self, i: usize) -> &mut ConcurrentReliable<K> {
        &mut self.shards[i]
    }

    /// The routing-hash seed (merge compatibility checks).
    pub(crate) fn router_seed(&self) -> u32 {
        self.router_seed
    }

    /// Lock-free insert through a shared reference.
    #[inline]
    pub fn insert_shared(&self, key: &K, value: u64) {
        self.shards[self.shard_of(key)].insert_concurrent(key, value);
    }

    /// Insert a batch from one caller: order-preserving shard partition,
    /// then each shard's sub-stream through
    /// [`ConcurrentReliable::insert_batch`] (which carries the `simd`
    /// lane hashing/prefetch/prescan machinery when the feature is on).
    /// Keys never share a shard across the partition boundary, so this
    /// is bit-identical to an in-order [`Self::insert_shared`] loop —
    /// the same argument that makes [`Self::ingest_parallel`]
    /// deterministic, pinned by `tests/simd_parity.rs`.
    pub fn insert_batch(&self, items: &[(K, u64)]) {
        let mut per_shard: Vec<Vec<(K, u64)>> = vec![Vec::new(); self.shards.len()];
        for &(k, v) in items {
            per_shard[self.shard_of(&k)].push((k, v));
        }
        for (shard, part) in per_shard.iter().enumerate() {
            if !part.is_empty() {
                self.shards[shard].insert_batch(part);
            }
        }
    }

    /// Drain an item stream through [`Self::insert_batch`] in batches of
    /// `batch_size` (clamped to ≥ 1), buffering only one batch at a time.
    /// Returns the number of items processed.
    pub fn ingest_batched<I>(&self, stream: I, batch_size: usize) -> usize
    where
        I: IntoIterator<Item = (K, u64)>,
    {
        let batch_size = batch_size.max(1);
        let mut buffer = Vec::with_capacity(batch_size);
        let mut total = 0usize;
        for item in stream {
            buffer.push(item);
            if buffer.len() == batch_size {
                self.insert_batch(&buffer);
                total += buffer.len();
                buffer.clear();
            }
        }
        self.insert_batch(&buffer);
        total + buffer.len()
    }

    /// Query with certified error through a shared reference.
    #[inline]
    pub fn query_shared(&self, key: &K) -> Estimate {
        self.shards[self.shard_of(key)].query_with_error(key)
    }

    /// Total insertion failures across shards.
    pub fn insertion_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.insertion_failures()).sum()
    }

    /// Total CAS retries across shards (contention gauge; 0 when every
    /// shard was only ever touched by one thread at a time).
    pub fn cas_retries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.array().stats().retries())
            .sum()
    }

    /// Ingest `items` with `n_workers` threads in two barrier-free
    /// phases: parallel shard-affine partitioning, then shard-owned batch
    /// application in stream order (see the module docs), claiming shards
    /// under [`IngestPolicy::Static`]. Deterministic: the result is
    /// identical to a sequential [`Self::insert_shared`] replay for every
    /// worker count.
    ///
    /// Returns the number of items processed.
    ///
    /// # Examples
    ///
    /// ```
    /// use rsk_core::concurrent::ShardedReliable;
    /// use rsk_core::ReliableConfig;
    ///
    /// let config = ReliableConfig { memory_bytes: 128 * 1024, seed: 3, ..Default::default() };
    /// let items: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 500, 1)).collect();
    ///
    /// let parallel = ShardedReliable::<u64>::new(config.clone(), 4);
    /// assert_eq!(parallel.ingest_parallel(&items, 4), items.len());
    ///
    /// // bit-identical to the one-item-at-a-time shared path
    /// let replay = ShardedReliable::<u64>::new(config, 4);
    /// items.iter().for_each(|(k, v)| replay.insert_shared(k, *v));
    /// assert_eq!(parallel.query_shared(&7), replay.query_shared(&7));
    /// ```
    pub fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize
    where
        K: Send + Sync,
    {
        self.ingest_parallel_with(items, n_workers, IngestPolicy::Static)
    }

    /// [`Self::ingest_parallel`] under an explicit scheduling policy.
    ///
    /// Both policies apply each shard's sub-stream from exactly one
    /// worker in stream order, so **the resulting sketch is bit-identical
    /// across policies and worker counts** — the policy only decides
    /// which worker applies which shard, i.e. the wall clock:
    ///
    /// * [`IngestPolicy::Static`] — workers pull shard indexes off a
    ///   shared ticket in shard order (the historical behaviour);
    /// * [`IngestPolicy::WorkStealing`] — shard batches become weighted
    ///   [work units](crate::schedule::WorkUnit) in per-worker queues
    ///   (seeded by the [`ShardPlacement`] hint when the sketch has one,
    ///   heaviest first), and idle workers steal whole pending units of
    ///   at least `steal_threshold` items. Under skewed shard loads this
    ///   removes the hot-shard convoy; see [`crate::schedule`] for the
    ///   makespan model. Steals are counted on [`Self::steals`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rsk_api::IngestPolicy;
    /// use rsk_core::concurrent::ShardedReliable;
    /// use rsk_core::ReliableConfig;
    ///
    /// // a heavily skewed stream: one key (= one shard) carries half the items
    /// let items: Vec<(u64, u64)> = (0..30_000u64)
    ///     .map(|i| (if i % 2 == 0 { 42 } else { i % 701 }, 1))
    ///     .collect();
    /// let config = ReliableConfig { memory_bytes: 256 * 1024, seed: 11, ..Default::default() };
    ///
    /// let stealing = ShardedReliable::<u64>::new(config.clone(), 8);
    /// stealing.ingest_parallel_with(&items, 4, IngestPolicy::work_stealing());
    ///
    /// let static_ = ShardedReliable::<u64>::new(config, 8);
    /// static_.ingest_parallel_with(&items, 4, IngestPolicy::Static);
    ///
    /// // scheduling freedom never changes answers
    /// for k in 0..701u64 {
    ///     assert_eq!(stealing.query_shared(&k), static_.query_shared(&k));
    /// }
    /// ```
    pub fn ingest_parallel_with(
        &self,
        items: &[(K, u64)],
        n_workers: usize,
        policy: IngestPolicy,
    ) -> usize
    where
        K: Send + Sync,
    {
        let n_workers = n_workers.max(1).min(items.len().max(1));
        let n_shards = self.shards.len();
        if n_workers == 1 {
            for (k, v) in items {
                self.insert_shared(k, *v);
            }
            return items.len();
        }

        // Phase 1: chunk-affine partitioning. Chunks are contiguous, so
        // concatenating one shard's buffers in chunk order reproduces that
        // shard's sub-stream in stream order.
        let chunk_len = items.len().div_ceil(n_workers).max(1);
        let partitions: Vec<Vec<Vec<(K, u64)>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|part| {
                    scope.spawn(move || {
                        let mut per_shard: Vec<Vec<(K, u64)>> = vec![Vec::new(); n_shards];
                        for &(k, v) in part {
                            per_shard[self.shard_of(&k)].push((k, v));
                        }
                        per_shard
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Phase 2: apply each shard's batches from exactly one worker in
        // chunk (= stream) order; flushes on distinct shards proceed in
        // parallel with no synchronization beyond the bucket CAS. Which
        // worker applies a shard is the policy's (and only the policy's)
        // business.
        let apply_shard = |shard: usize| {
            for chunk in &partitions {
                self.shards[shard].insert_batch(&chunk[shard]);
            }
        };
        match policy {
            IngestPolicy::Static => {
                let ticket = AtomicUsize::new(0);
                std::thread::scope(|scope| {
                    for _ in 0..n_workers.min(n_shards) {
                        scope.spawn(|| loop {
                            let shard = ticket.fetch_add(1, Ordering::Relaxed);
                            if shard >= n_shards {
                                break;
                            }
                            apply_shard(shard);
                        });
                    }
                });
            }
            IngestPolicy::WorkStealing { steal_threshold } => {
                let units: Vec<WorkUnit> = (0..n_shards)
                    .map(|shard| WorkUnit {
                        shard,
                        weight: partitions.iter().map(|chunk| chunk[shard].len()).sum(),
                    })
                    .collect();
                let owners: Vec<usize> = (0..n_shards)
                    .map(|shard| match &self.placement {
                        Some(p) => p.preferred_worker(shard, n_workers),
                        None => shard % n_workers,
                    })
                    .collect();
                let stats = run_work_stealing(&units, &owners, n_workers, steal_threshold, |u| {
                    apply_shard(units[u].shard)
                });
                self.steals.fetch_add(stats.steals, Ordering::Relaxed);
            }
        }
        items.len()
    }
}

impl<K: Key> StreamSummary<K> for ShardedReliable<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        self.insert_shared(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_shared(key).value
    }
}

impl<K: Key> ErrorSensing<K> for ShardedReliable<K> {
    #[inline]
    fn query_with_error(&self, key: &K) -> Estimate {
        self.query_shared(key)
    }
}

impl<K: Key + Send + Sync> ConcurrentErrorSensing<K> for ShardedReliable<K> {
    /// Route to the key's shard and answer with its certified interval —
    /// identical to [`ShardedReliable::query_shared`], exposed through
    /// the shared-reference trait so served deployments can hold the
    /// sharded sketch as a `dyn ConcurrentErrorSensing` tenant.
    #[inline]
    fn query_with_error_concurrent(&self, key: &K) -> Estimate {
        self.query_shared(key)
    }
}

impl<K: Key + Send + Sync> ConcurrentSummary<K> for ShardedReliable<K> {
    #[inline]
    fn insert_concurrent(&self, key: &K, value: u64) {
        self.insert_shared(key, value);
    }

    #[inline]
    fn query_concurrent(&self, key: &K) -> u64 {
        self.query_shared(key).value
    }

    fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize {
        ShardedReliable::ingest_parallel(self, items, n_workers)
    }

    fn ingest_parallel_policy(
        &self,
        items: &[(K, u64)],
        n_workers: usize,
        policy: IngestPolicy,
    ) -> usize {
        ShardedReliable::ingest_parallel_with(self, items, n_workers, policy)
    }
}

impl<K: Key + Send + Sync> ConcurrentErrorSensing<K> for ConcurrentReliable<K> {
    /// The lock-free certified read: walk the layers with plain atomic
    /// loads ([`ConcurrentReliable::query_with_error`]) and report the
    /// Maximum Possible Error alongside the estimate. Uncontended
    /// single-writer histories answer bit-for-bit like the sequential
    /// twin; racing writers relax containment by at most the documented
    /// [`contention_undershoot_bound`](ConcurrentReliable::contention_undershoot_bound).
    #[inline]
    fn query_with_error_concurrent(&self, key: &K) -> Estimate {
        self.query_with_error(key)
    }
}

impl<K: Key + Send + Sync> ConcurrentSummary<K> for ConcurrentReliable<K> {
    #[inline]
    fn insert_concurrent(&self, key: &K, value: u64) {
        ConcurrentReliable::insert_concurrent(self, key, value);
    }

    #[inline]
    fn query_concurrent(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }

    /// Chunked concurrent ingestion into one lock-free sketch. Unlike the
    /// sharded version this interleaves bucket elections and is therefore
    /// not deterministic, but the semantic guarantee (estimates bound the
    /// truth within `Λ`) is preserved under any interleaving.
    fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize {
        let n_workers = n_workers.max(1).min(items.len().max(1));
        let chunk_len = items.len().div_ceil(n_workers).max(1);
        std::thread::scope(|scope| {
            for part in items.chunks(chunk_len) {
                scope.spawn(move || self.insert_batch(part));
            }
        });
        items.len()
    }
}

impl<K: Key> MemoryFootprint for ShardedReliable<K> {
    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

impl<K: Key> Algorithm for ShardedReliable<K> {
    fn name(&self) -> String {
        format!("Ours(x{})", self.shards.len())
    }
}

impl crate::config::ReliableConfigBuilder {
    /// Build a lock-free [`ConcurrentReliable`] directly.
    ///
    /// # Panics
    /// Panics if the configuration fails validation, or if `Λ` exceeds
    /// the packed atomic error field (see [`ConcurrentReliable::new`]).
    pub fn build_concurrent<K: Key>(self) -> ConcurrentReliable<K> {
        ConcurrentReliable::new(self.build_config())
    }

    /// Build a key-partitioned [`ShardedReliable`] over `n_shards`
    /// lock-free shards directly.
    ///
    /// # Panics
    /// Panics if the configuration fails validation or a shard's budget
    /// slice is too small to construct (see [`ShardedReliable::new`]).
    pub fn build_sharded<K: Key>(self, n_shards: usize) -> ShardedReliable<K> {
        ShardedReliable::new(self.build_config(), n_shards)
    }
}

/// Salt separating the shard-routing hash from the per-layer families.
const SHARD_SALT: u32 = 0x05aa_bbcd;

/// Derive the per-shard configurations (budget split with the remainder
/// spread over leading shards, SplitMix64 seed stream) and the routing
/// seed — shared by [`ShardedReliable::new`] and
/// [`ShardedReliable::with_placement`] so placement can never perturb
/// the shard parameters.
fn shard_configs(config: &ReliableConfig, n_shards: usize) -> (Vec<ReliableConfig>, u32) {
    assert!(n_shards > 0, "need at least one shard");
    let base = config.memory_bytes / n_shards;
    let remainder = config.memory_bytes % n_shards;
    let mut seeds = SplitMix64::new(config.seed);
    let mut allotted = 0usize;
    let configs: Vec<_> = (0..n_shards)
        .map(|i| {
            let budget = base + usize::from(i < remainder);
            allotted += budget;
            ReliableConfig {
                memory_bytes: budget,
                seed: seeds.next_u64(),
                ..config.clone()
            }
        })
        .collect();
    assert_eq!(
        allotted, config.memory_bytes,
        "shard budgets must sum to the configured total"
    );
    (configs, seeds.next_u64() as u32 ^ SHARD_SALT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn config(mem: usize) -> ReliableConfig {
        ReliableConfig {
            memory_bytes: mem,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_matches_guarantee() {
        let sh = ShardedReliable::<u64>::new(config(256 * 1024), 4);
        assert_eq!(sh.shards(), 4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let k = i % 3000;
            sh.insert_shared(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        assert_eq!(sh.insertion_failures(), 0);
        for (&k, &f) in &truth {
            let est = sh.query_shared(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
            assert!(est.value - f <= 25);
        }
    }

    #[test]
    fn parallel_ingest_is_identical_to_sequential() {
        let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 1777, 1 + i % 3)).collect();

        let seq = ShardedReliable::<u64>::new(config(256 * 1024), 4);
        for (k, v) in &items {
            seq.insert_shared(k, *v);
        }
        for workers in [2usize, 4, 8] {
            let par = ShardedReliable::<u64>::new(config(256 * 1024), 4);
            assert_eq!(par.ingest_parallel(&items, workers), items.len());
            for k in 0..1777u64 {
                assert_eq!(
                    par.query_shared(&k),
                    seq.query_shared(&k),
                    "divergence at key {k} with {workers} workers"
                );
            }
            assert_eq!(par.insertion_failures(), seq.insertion_failures());
        }
    }

    #[test]
    fn memory_budget_sums_exactly_across_shards() {
        // a budget that does NOT divide evenly: the remainder must land in
        // the leading shards instead of being dropped
        let total = (1 << 20) + 7;
        let sh = ShardedReliable::<u64>::new(config(total), 8);
        let budgets: Vec<usize> = (0..8).map(|i| sh.shard(i).config().memory_bytes).collect();
        assert_eq!(budgets.iter().sum::<usize>(), total);
        assert!(budgets.iter().all(|&b| {
            let base = total / 8;
            b == base || b == base + 1
        }));
        let used = sh.memory_bytes();
        assert!(used <= total);
        assert!(
            used > total * 9 / 10,
            "shards should use most of the budget"
        );
        assert_eq!(sh.name(), "Ours(x8)");
    }

    #[test]
    fn shard_seeds_are_decorrelated() {
        // SplitMix64-derived seeds: no two shards share a seed, and the
        // same key maps to different layer-0 buckets in (almost) all shards
        let sh = ShardedReliable::<u64>::new(config(1 << 20), 8);
        let seeds: std::collections::HashSet<u64> =
            (0..8).map(|i| sh.shard(i).config().seed).collect();
        assert_eq!(seeds.len(), 8, "duplicate shard seeds");
        let key = 0xdead_beefu64;
        let indexes: std::collections::HashSet<usize> = (0..8)
            .map(|i| {
                let s = sh.shard(i);
                rsk_hash::HashFamily::new(s.geometry().depth(), s.config().seed).index(
                    0,
                    &key,
                    s.geometry().width(0),
                )
            })
            .collect();
        assert!(indexes.len() >= 6, "layer-0 placements look correlated");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedReliable::<u64>::new(config(1 << 20), 0);
    }

    #[test]
    #[should_panic(expected = "packed error field")]
    fn oversized_lambda_rejected() {
        // the atomic bucket stores NO in 12 bits: tolerances whose layer
        // thresholds exceed ERR_MAX are a documented construction panic
        let cfg = ReliableConfig {
            lambda: 100_000,
            ..config(1 << 20)
        };
        ShardedReliable::<u64>::new(cfg, 4);
    }
}
