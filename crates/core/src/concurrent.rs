//! Multi-core ingestion — a beyond-the-paper extension.
//!
//! The paper demonstrates ReliableSketch on pipelined hardware (FPGA,
//! Tofino); on CPU servers the natural analogue is *sharding*: partition
//! the key space over `S` independent sketches and give each its own lock.
//! Because every key maps to exactly one shard, each shard is a complete
//! ReliableSketch over its sub-stream and the per-key `Λ` guarantee is
//! preserved verbatim — the shards simply split the memory budget.
//!
//! [`ShardedReliable::ingest_parallel`] fans a stream out to worker
//! threads over crossbeam channels (one bounded channel per shard, so
//! there is no cross-shard synchronization on the hot path).

use crate::config::ReliableConfig;
use crate::sketch::ReliableSketch;
use crossbeam::channel;
use parking_lot::Mutex;
use rsk_api::{Algorithm, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary};

/// Key-partitioned ReliableSketch for shared (`&self`) ingestion.
pub struct ShardedReliable<K: Key> {
    shards: Vec<Mutex<ReliableSketch<K>>>,
    shard_seed: u32,
}

impl<K: Key> ShardedReliable<K> {
    /// Split `config.memory_bytes` evenly over `n_shards` sketches.
    ///
    /// # Panics
    /// Panics if `n_shards == 0` or the per-shard budget is invalid.
    pub fn new(config: ReliableConfig, n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        let per_shard = ReliableConfig {
            memory_bytes: config.memory_bytes / n_shards,
            ..config.clone()
        };
        let shards = (0..n_shards)
            .map(|i| {
                let mut c = per_shard.clone();
                c.seed = config.seed.wrapping_add(i as u64 * 0x9e37_79b9);
                Mutex::new(ReliableSketch::new(c))
            })
            .collect();
        Self {
            shards,
            shard_seed: (config.seed >> 32) as u32 ^ SHARD_SALT,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: &K) -> usize {
        ((key.hash32(self.shard_seed) as u64 * self.shards.len() as u64) >> 32) as usize
    }

    /// Insert through a shared reference (locks one shard).
    pub fn insert_shared(&self, key: &K, value: u64) {
        let s = self.shard_of(key);
        self.shards[s].lock().insert(key, value);
    }

    /// Query with error through a shared reference.
    pub fn query_shared(&self, key: &K) -> Estimate {
        let s = self.shard_of(key);
        self.shards[s].lock().query_with_error(key)
    }

    /// Total insertion failures across shards.
    pub fn insertion_failures(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().insertion_failures())
            .sum()
    }

    /// Ingest `items` with `n_workers` threads (one consumer per shard,
    /// producers round-robin the input slice).
    ///
    /// Returns the number of items processed.
    pub fn ingest_parallel(&self, items: &[(K, u64)], n_workers: usize) -> usize
    where
        K: Send + Sync,
    {
        let n_workers = n_workers.max(1);
        let n_shards = self.shards.len();
        // one channel per shard; senders shared by the splitter threads
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..n_shards)
            .map(|_| channel::bounded::<(K, u64)>(4096))
            .unzip();

        std::thread::scope(|scope| {
            // consumers: each owns one shard for the whole run
            for (shard, rx) in self.shards.iter().zip(rxs) {
                scope.spawn(move || {
                    let mut guard = shard.lock();
                    for (k, v) in rx {
                        guard.insert(&k, v);
                    }
                });
            }
            // producers: split the slice, route by shard hash
            let chunk = items.len().div_ceil(n_workers);
            for part in items.chunks(chunk.max(1)) {
                let txs = txs.clone();
                scope.spawn(move || {
                    for (k, v) in part {
                        let s = self.shard_of(k);
                        // receiver lives for the whole scope: send succeeds
                        let _ = txs[s].send((*k, *v));
                    }
                });
            }
            drop(txs); // close channels once producers finish
        });
        items.len()
    }
}

impl<K: Key> MemoryFootprint for ShardedReliable<K> {
    fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().memory_bytes()).sum()
    }
}

impl<K: Key> Algorithm for ShardedReliable<K> {
    fn name(&self) -> String {
        format!("Ours(x{})", self.shards.len())
    }
}

/// Salt separating the shard-routing hash from the per-layer families.
const SHARD_SALT: u32 = 0x05aa_bbcd;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn config(mem: usize) -> ReliableConfig {
        ReliableConfig {
            memory_bytes: mem,
            seed: 11,
            ..Default::default()
        }
    }

    #[test]
    fn sharded_matches_guarantee() {
        let sh = ShardedReliable::<u64>::new(config(256 * 1024), 4);
        assert_eq!(sh.shards(), 4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..50_000u64 {
            let k = i % 3000;
            sh.insert_shared(&k, 1);
            *truth.entry(k).or_insert(0) += 1;
        }
        assert_eq!(sh.insertion_failures(), 0);
        for (&k, &f) in &truth {
            let est = sh.query_shared(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
            assert!(est.value - f <= 25);
        }
    }

    #[test]
    fn parallel_ingest_equals_sequential() {
        let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 1777, 1)).collect();

        let par = ShardedReliable::<u64>::new(config(256 * 1024), 4);
        par.ingest_parallel(&items, 4);

        let seq = ShardedReliable::<u64>::new(config(256 * 1024), 4);
        for (k, v) in &items {
            seq.insert_shared(k, *v);
        }

        // same shard layout and deterministic per-shard insertion order is
        // NOT guaranteed under parallel ingest; the guarantee is semantic:
        // both answer within Λ of the truth.
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for (k, v) in &items {
            *truth.entry(*k).or_insert(0) += v;
        }
        for (&k, &f) in &truth {
            for s in [&par, &seq] {
                let est = s.query_shared(&k);
                assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
            }
        }
    }

    #[test]
    fn memory_splits_across_shards() {
        let total = 1 << 20;
        let sh = ShardedReliable::<u64>::new(config(total), 8);
        let used = sh.memory_bytes();
        assert!(used <= total);
        assert!(used > total / 2, "shards should use most of the budget");
        assert_eq!(sh.name(), "Ours(x8)");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        ShardedReliable::<u64>::new(config(1 << 20), 0);
    }
}
