//! Lock-free atomic bucket layers — the multi-core hot path.
//!
//! The paper scales ReliableSketch across FPGA/Tofino *pipeline stages*;
//! on CPUs the analogue is scaling across cores, and the lesson of "Fast
//! Concurrent Data Sketches" (Rinberg et al., PPoPP '20) is that lock-free
//! ingestion beats lock-based designs by an order of magnitude. This
//! module rebuilds the Error-Sensible bucket for that regime:
//!
//! * **One `AtomicU64` word per bucket.** The paper's §6.1.1 hardware
//!   layout (32-bit `YES`, 16-bit `NO`, 32-bit `ID` = 80 bits) does not
//!   fit a single CAS word, so the concurrent bucket stores a 24-bit key
//!   *fingerprint* instead of the full ID and packs
//!   `fingerprint(24) | count(28) | error(12)` into 64 bits. `error` is
//!   the bucket's `NO` field; the lock invariant `NO ≤ λ_i ≤ Λ` keeps it
//!   within 12 bits (enforced at construction).
//! * **CAS capture of the lock-in rule.** One insertion step — vote,
//!   lock-divert, or candidate replacement with the `YES`/`NO` swap — is
//!   computed as a pure function on the packed word (`step_word`) and
//!   committed with a single compare-and-swap, so every bucket transition
//!   is atomic and the per-bucket invariants (`YES ≥ NO` for candidates,
//!   `NO ≤ λ_i`) hold under any interleaving.
//! * **Relaxed counters for stats.** Items, CAS retries, failures and
//!   saturation events are `Relaxed` atomics off the decision path.
//!
//! ### What survives concurrency
//!
//! Each CAS is a linearization point, so a parallel execution is
//! equivalent to *some* sequential stream in which each `⟨key, value⟩`
//! insertion may be split into per-layer sub-insertions. ReliableSketch
//! is closed under such splits (weighted insertions already split across
//! the lock boundary), so the structural guarantees survive: estimates
//! never undershoot the truth, `MPE(e) ≤ Σ λ_i ≤ Λ` for every key, and a
//! locked bucket stays locked. What is *not* preserved under concurrent
//! interleaving is bit-for-bit determinism of the election outcomes —
//! that is restored one level up by
//! [`crate::concurrent::ShardedReliable::ingest_parallel`], which applies
//! each shard's sub-stream in stream order from a single owner.
//!
//! ### Feature parity with the sequential sketch
//!
//! The concurrent path implements the paper's *full* §3.3 design, not just
//! the "Raw" variant:
//!
//! * **Mice filter** — [`ConcurrentReliable`] honors
//!   [`crate::MiceFilterConfig`] with an [`crate::filter::AtomicMiceFilter`]
//!   (CU counters packed into `AtomicU64` lanes, one-CAS conditional
//!   increment), so mouse flows are absorbed before they burn first-layer
//!   buckets;
//! * **Emergency store** — failures are recorded under the configured
//!   policy behind a mutex only failures touch;
//! * **Windows** — [`crate::epoch::EpochedConcurrent`] rotates generations
//!   of this structure for bounded-history summaries;
//! * **Merging** — [`rsk_api::Merge`] is implemented for
//!   [`ConcurrentReliable`] and [`crate::concurrent::ShardedReliable`]
//!   (packed words are read out into
//!   [`crate::EsBucket`] unions — see [`crate::merge`]), and
//!   [`ConcurrentReliable::merge_from_sequential`] folds in a sequential
//!   [`crate::ReliableSketch`] twin for mixed distributed aggregation.
//!
//! ### Caveats vs. [`crate::ReliableSketch`]
//!
//! * Fingerprinting adds a `2⁻²⁴` per-colliding-pair chance of two keys
//!   aliasing inside one bucket (the paper's own 32-bit `ID` field makes
//!   the same trade against `u64` keys, at `2⁻³²`).
//! * `count` saturates at `2²⁸ − 1` per bucket; saturation events are
//!   counted in [`AtomicStats::saturations`].
//! * With a mice filter configured, racing inserts of one key may read
//!   the CU minimum across lanes mid-update; the per-key estimate can
//!   then trail the truth by at most
//!   [`ConcurrentReliable::contention_undershoot_bound`]
//!   (`(arrays − 1) × threshold`, 3 units at paper defaults). Uncontended
//!   execution — one producer, or one owner per shard as in
//!   [`crate::concurrent::ShardedReliable::ingest_parallel`] — is exact
//!   and bit-for-bit equal to the filtered sequential sketch.
//!
//! # Examples
//!
//! Shared-reference ingestion from four threads, with the certified
//! interval (§3.1's Maximum Possible Error) intact at the end:
//!
//! ```
//! use rsk_core::atomic::ConcurrentReliable;
//! use rsk_core::ReliableConfig;
//!
//! let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
//!     memory_bytes: 64 * 1024,
//!     seed: 7,
//!     ..Default::default() // paper defaults: Λ=25, 20% 2-bit mice filter
//! });
//! std::thread::scope(|s| {
//!     for t in 0..4u64 {
//!         let sk = &sk;
//!         s.spawn(move || {
//!             for i in 0..1000u64 {
//!                 sk.insert_concurrent(&(i % 10), 1 + t % 2);
//!             }
//!         });
//!     }
//! });
//! let est = sk.query_with_error(&3);
//! // 600 units of true mass; contention may hide at most the documented
//! // filter slack, and the MPE ceiling Λ = 25 survives any interleaving
//! assert!(est.value + sk.contention_undershoot_bound() >= 600);
//! assert!(est.max_possible_error <= 25);
//! ```

use crate::bucket::EsBucket;
use crate::config::ReliableConfig;
use crate::emergency::EmergencyStore;
use crate::filter::{AtomicMiceFilter, FILTER_SEED_SALT};
use crate::geometry::LayerGeometry;
use crate::simd;
use crate::topk::TopKSummary;
use parking_lot::Mutex;
use rsk_api::{
    Algorithm, CertifiedTopK, Clear, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary,
    TopK,
};
use rsk_hash::{splitmix64, HashFamily};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical size of one atomic bucket: a single 64-bit word.
pub const ATOMIC_BUCKET_BYTES: usize = 8;

/// Bits of the packed word holding the bucket error (`NO`).
const ERR_BITS: u32 = 12;
/// Bits of the packed word holding the candidate count (`YES`).
const COUNT_BITS: u32 = 28;

/// Largest representable `NO`; every layer threshold must stay below it.
pub const ERR_MAX: u64 = (1 << ERR_BITS) - 1;
/// Largest representable `YES`; additions saturate here.
pub const COUNT_MAX: u64 = (1 << COUNT_BITS) - 1;
/// Mask of the 24-bit candidate fingerprint.
pub const FP_MASK: u64 = (1 << (64 - ERR_BITS - COUNT_BITS)) - 1;

/// Bit offset of the fingerprint field within the packed word (the
/// shift the ×4 prescan applies to compare four fingerprints at once).
pub(crate) const FP_SHIFT: u32 = COUNT_BITS + ERR_BITS;

#[inline]
pub(crate) fn pack(fp: u64, count: u64, err: u64) -> u64 {
    debug_assert!(fp <= FP_MASK && count <= COUNT_MAX && err <= ERR_MAX);
    (fp << (COUNT_BITS + ERR_BITS)) | (count << ERR_BITS) | err
}

#[inline]
pub(crate) fn unpack(word: u64) -> (u64, u64, u64) {
    (
        word >> (COUNT_BITS + ERR_BITS),
        (word >> ERR_BITS) & COUNT_MAX,
        word & ERR_MAX,
    )
}

/// One Algorithm-1 layer step as a pure function on the packed word.
///
/// Returns `(new_word, leftover, saturated)`: the committed bucket state,
/// the value that must descend to the next layer, and whether the `count`
/// field clipped at [`COUNT_MAX`].
///
/// The three branches mirror [`crate::ReliableSketch::insert_traced`]:
/// matching candidates absorb fully (even when locked); a triggered lock
/// absorbs `λ − NO` and diverts the rest; otherwise the value votes `NO`
/// and replaces the candidate when `NO ≥ YES` (swapping the counters).
/// An empty bucket needs no special case — the replacement branch turns
/// `(0, 0, 0)` into `(fp, v, 0)` exactly like a first insertion.
#[inline]
pub(crate) fn step_word(word: u64, fp: u64, value: u64, lambda: u64) -> (u64, u64, bool) {
    let (bfp, yes, no) = unpack(word);
    if bfp == fp {
        let raised = yes.saturating_add(value);
        return (pack(fp, raised.min(COUNT_MAX), no), 0, raised > COUNT_MAX);
    }
    if no.saturating_add(value) > lambda && yes > lambda {
        let room = lambda.saturating_sub(no);
        return (pack(bfp, yes, no + room), value - room, false);
    }
    let votes = no.saturating_add(value);
    if votes >= yes {
        // replacement + swap: the old YES becomes the new NO; both
        // branches reaching here imply old YES ≤ λ ≤ ERR_MAX
        (pack(fp, votes.min(COUNT_MAX), yes), 0, votes > COUNT_MAX)
    } else {
        (pack(bfp, yes, votes), 0, false)
    }
}

/// Relaxed operation counters of an [`AtomicBucketArray`].
#[derive(Debug, Default)]
pub struct AtomicStats {
    items: AtomicU64,
    retries: AtomicU64,
    saturations: AtomicU64,
}

impl AtomicStats {
    /// Insert operations started.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// CAS attempts that lost a race and retried (contention gauge).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Bucket-count saturation events (estimates may undershoot past
    /// [`COUNT_MAX`] per bucket once this is nonzero).
    pub fn saturations(&self) -> u64 {
        self.saturations.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.items.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.saturations.store(0, Ordering::Relaxed);
    }

    /// Add a peer's counters (the stats half of [`rsk_api::Merge`]).
    pub(crate) fn absorb(&self, other: &Self) {
        self.items.fetch_add(other.items(), Ordering::Relaxed);
        self.retries.fetch_add(other.retries(), Ordering::Relaxed);
        self.saturations
            .fetch_add(other.saturations(), Ordering::Relaxed);
    }

    /// Count `n` foreign insert operations (merging a sequential peer).
    pub(crate) fn add_items(&self, n: u64) {
        self.items.fetch_add(n, Ordering::Relaxed);
    }
}

/// The layered lock-free bucket store: geometry-shaped `AtomicU64` words
/// plus relaxed statistics. Hashing and key handling live one level up in
/// [`ConcurrentReliable`]; this type deals in `(layer, index, fingerprint)`
/// coordinates only.
#[derive(Debug)]
pub struct AtomicBucketArray {
    words: Vec<AtomicU64>,
    /// One bit per bucket word, set on CAS commit: the replication
    /// layer's "touched since the last cut" map (see
    /// [`crate::replicate`]). Kept as its own word array so the hot path
    /// pays one relaxed load (and a `fetch_or` only on the first touch)
    /// per committed step.
    dirty: Vec<AtomicU64>,
    offsets: Vec<usize>,
    widths: Vec<usize>,
    lambdas: Vec<u64>,
    stats: AtomicStats,
}

impl AtomicBucketArray {
    /// Allocate zeroed buckets for `geometry`.
    ///
    /// # Panics
    /// Panics if any layer threshold exceeds [`ERR_MAX`] — the packed
    /// 12-bit error field cannot certify larger per-layer budgets.
    pub fn new(geometry: &LayerGeometry) -> Self {
        let widths = geometry.widths().to_vec();
        let lambdas = geometry.lambdas().to_vec();
        assert!(
            lambdas.iter().all(|&l| l <= ERR_MAX),
            "layer threshold exceeds the packed error field ({ERR_MAX})"
        );
        let mut offsets = Vec::with_capacity(widths.len());
        let mut total = 0usize;
        for &w in &widths {
            offsets.push(total);
            total += w;
        }
        let words = (0..total).map(|_| AtomicU64::new(0)).collect();
        let dirty = (0..total.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        Self {
            words,
            dirty,
            offsets,
            widths,
            lambdas,
            stats: AtomicStats::default(),
        }
    }

    /// Number of layers.
    #[inline]
    pub fn depth(&self) -> usize {
        self.widths.len()
    }

    /// Buckets in layer `i`.
    #[inline]
    pub fn width(&self, layer: usize) -> usize {
        self.widths[layer]
    }

    /// Lock threshold of layer `i`.
    #[inline]
    pub fn lambda(&self, layer: usize) -> u64 {
        self.lambdas[layer]
    }

    /// Total buckets across all layers.
    #[inline]
    pub fn total_buckets(&self) -> usize {
        self.words.len()
    }

    /// Operation statistics.
    pub fn stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// Record one insert operation (called once per item by the owner).
    #[inline]
    pub(crate) fn note_item(&self) {
        self.stats.items.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply one layer step for `fingerprint` at `(layer, index)` with a
    /// CAS loop; returns the leftover value that must descend.
    ///
    /// The transition function is `step_word`, or its mask-select
    /// (branchless) twin when the `simd` feature is on — the two are
    /// property-tested equal, so the committed word is the same either
    /// way; only the retry loop's control flow differs.
    #[inline]
    pub fn insert_step(&self, layer: usize, index: usize, fingerprint: u64, value: u64) -> u64 {
        let global = self.offsets[layer] + index;
        let cell = &self.words[global];
        let lambda = self.lambdas[layer];
        let mut current = cell.load(Ordering::Acquire);
        loop {
            let (next, leftover, saturated) =
                crate::simd::dispatch_step(current, fingerprint, value, lambda);
            match cell.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if saturated {
                        self.stats.saturations.fetch_add(1, Ordering::Relaxed);
                    }
                    self.mark_dirty(global);
                    return leftover;
                }
                Err(actual) => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    current = actual;
                }
            }
        }
    }

    /// The absorb fast path behind the ×4 fingerprint prescan: commit a
    /// matching-candidate addition at `(layer, index)` if — and only as
    /// long as — the bucket's fingerprint still equals `fingerprint` at
    /// CAS time. Returns `false` without touching the bucket when the
    /// prescan hint went stale (a racing replace), in which case the
    /// caller runs the full [`Self::insert_step`] walk; the committed
    /// transition is exactly [`step_word`]'s matching branch, so taking
    /// this path never changes the resulting word.
    #[inline]
    pub(crate) fn try_absorb(
        &self,
        layer: usize,
        index: usize,
        fingerprint: u64,
        value: u64,
    ) -> bool {
        let global = self.offsets[layer] + index;
        let cell = &self.words[global];
        let mut current = cell.load(Ordering::Acquire);
        loop {
            if current >> FP_SHIFT != fingerprint {
                return false;
            }
            let (_, yes, no) = unpack(current);
            let raised = yes.saturating_add(value);
            let next = pack(fingerprint, raised.min(COUNT_MAX), no);
            match cell.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if raised > COUNT_MAX {
                        self.stats.saturations.fetch_add(1, Ordering::Relaxed);
                    }
                    self.mark_dirty(global);
                    return true;
                }
                Err(actual) => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    current = actual;
                }
            }
        }
    }

    /// Pull the cache line of bucket `(layer, index)` toward L1 ahead of
    /// its apply step. A relaxed load discarded through `black_box` is
    /// the `unsafe`-free software prefetch (the crate forbids `unsafe`,
    /// so `core::arch` prefetch intrinsics are out); it reads shared
    /// memory but never writes, so it cannot perturb results.
    #[inline]
    pub(crate) fn prefetch(&self, layer: usize, index: usize) {
        core::hint::black_box(self.words[self.offsets[layer] + index].load(Ordering::Relaxed));
    }

    /// Relaxed load of the packed word at `(layer, index)` — the ×4
    /// prescan's source. Staleness is safe: hints are re-validated under
    /// CAS by [`Self::try_absorb`].
    #[inline]
    pub(crate) fn word_relaxed(&self, layer: usize, index: usize) -> u64 {
        self.words[self.offsets[layer] + index].load(Ordering::Relaxed)
    }

    /// Flag bucket `global` as touched since the last replication cut.
    /// Check-before-or keeps the steady state (bit already set) to one
    /// relaxed load; losing the `fetch_or` race is harmless — the bit
    /// only ever turns on between cuts.
    #[inline]
    fn mark_dirty(&self, global: usize) {
        let bit = 1u64 << (global & 63);
        let word = &self.dirty[global >> 6];
        if word.load(Ordering::Relaxed) & bit == 0 {
            word.fetch_or(bit, Ordering::Relaxed);
        }
    }

    /// Read bucket `(layer, index)` as `(fingerprint, yes, no)`.
    #[inline]
    pub fn read(&self, layer: usize, index: usize) -> (u64, u64, u64) {
        unpack(self.words[self.offsets[layer] + index].load(Ordering::Acquire))
    }

    /// Read every packed word out into fingerprint-space
    /// [`EsBucket`]s — the bridge into [`crate::merge`]'s union machinery.
    /// A zero word is an empty bucket (every insertion leaves a nonzero
    /// count behind, so the encoding is unambiguous).
    pub fn read_out(&self) -> Vec<Vec<EsBucket<u64>>> {
        (0..self.depth())
            .map(|layer| {
                (0..self.width(layer))
                    .map(|j| {
                        let word = self.words[self.offsets[layer] + j].load(Ordering::Acquire);
                        if word == 0 {
                            EsBucket::new()
                        } else {
                            let (fp, yes, no) = unpack(word);
                            EsBucket::from_parts(Some(fp), yes, no)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-layer indices of buckets touched since the last
    /// [`Self::clear_dirty`] (ascending within each layer). This is the
    /// work list a replication delta serializes.
    pub(crate) fn dirty_indices(&self) -> Vec<Vec<u32>> {
        let mut out: Vec<Vec<u32>> = self.widths.iter().map(|_| Vec::new()).collect();
        for (layer, (&off, &w)) in self.offsets.iter().zip(&self.widths).enumerate() {
            for j in 0..w {
                let global = off + j;
                if self.dirty[global >> 6].load(Ordering::Acquire) & (1u64 << (global & 63)) != 0 {
                    out[layer].push(j as u32);
                }
            }
        }
        out
    }

    /// Buckets currently flagged dirty (replication diagnostics).
    pub fn dirty_count(&self) -> usize {
        self.dirty
            .iter()
            .map(|w| w.load(Ordering::Relaxed).count_ones() as usize)
            .sum()
    }

    /// Drop every dirty flag — the replication cut point. Exclusive
    /// access guarantees no in-flight insertion can race the clear.
    pub(crate) fn clear_dirty(&mut self) {
        for w in &mut self.dirty {
            *w.get_mut() = 0;
        }
    }

    /// Overwrite bucket `(layer, index)` with explicit fields (replica
    /// restore/apply paths; exclusive access). The fields must fit the
    /// packed word — the caller validates against [`FP_MASK`],
    /// [`COUNT_MAX`] and [`ERR_MAX`] before reaching here.
    pub(crate) fn store_bucket(&mut self, layer: usize, index: usize, fp: u64, yes: u64, no: u64) {
        let global = self.offsets[layer] + index;
        *self.words[global].get_mut() = if yes == 0 && no == 0 && fp == 0 {
            0
        } else {
            pack(fp, yes, no)
        };
    }

    /// Zero every bucket word, keeping the operation statistics (used
    /// when merging seals the live words into an overlay).
    pub(crate) fn zero_words(&mut self) {
        for w in &mut self.words {
            *w.get_mut() = 0;
        }
    }

    /// Zero every bucket and reset statistics (requires exclusive access
    /// for a consistent result; concurrent readers only ever observe valid
    /// bucket words).
    pub fn reset(&mut self) {
        self.zero_words();
        self.clear_dirty();
        self.stats.reset();
    }
}

/// Sealed union of merged operands, in fingerprint space with unbounded
/// counters (merged `NO` fields can exceed the packed word's 12-bit error
/// field, so the union cannot live in the `AtomicU64` words themselves).
/// Populated only by the [`rsk_api::Merge`] impls; `None` — zero cost —
/// for ordinary sketches. Queries walk the overlay *and* the live atomic
/// words (which keep absorbing post-merge insertions) like two epoch
/// generations; `hints` mirrors [`crate::ReliableSketch`]'s divert flags.
#[derive(Debug)]
pub(crate) struct MergedOverlay {
    pub(crate) layers: Vec<Vec<EsBucket<u64>>>,
    pub(crate) hints: Vec<Vec<bool>>,
}

/// Salt separating the fingerprint hash from the per-layer index family.
const FP_SALT: u64 = 0xf19e_5a1e_0ff5_eeda;

/// The fingerprint-hash seed a sketch built from `seed` uses — shared
/// with [`crate::replicate::SlimSummary`], which must re-derive the same
/// fingerprints standalone from a configuration alone.
#[inline]
pub(crate) fn fp_seed_for(seed: u64) -> u32 {
    splitmix64(seed ^ FP_SALT) as u32
}

/// Lock-free ReliableSketch over an [`AtomicBucketArray`]: shared-`&self`
/// insertion from any number of threads, with the paper's §3.3 mice
/// filter (when configured) running lock-free in front of the bucket
/// layers and the configured emergency policy serviced off the hot path
/// behind a mutex that only failures touch.
///
/// # Examples
///
/// ```
/// use rsk_core::atomic::ConcurrentReliable;
/// use rsk_core::ReliableConfig;
///
/// // paper defaults: Λ = 25, 20% of memory on a 2-bit 2-array CU filter
/// let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
///     memory_bytes: 64 * 1024,
///     seed: 7,
///     ..Default::default()
/// });
/// assert!(sk.has_filter());
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let sk = &sk;
///         s.spawn(move || {
///             for i in 0..1000u64 {
///                 sk.insert_concurrent(&(i % 10), 1 + t % 2);
///             }
///         });
///     }
/// });
/// let est = sk.query_with_error(&3); // true sum: 600
/// assert!(est.value + sk.contention_undershoot_bound() >= 600);
/// assert!(est.max_possible_error <= 25); // MPE ≤ Λ under any schedule
/// ```
#[derive(Debug)]
pub struct ConcurrentReliable<K: Key> {
    config: ReliableConfig,
    geometry: LayerGeometry,
    hashes: HashFamily,
    fp_seed: u32,
    filter: Option<AtomicMiceFilter>,
    array: AtomicBucketArray,
    failures: AtomicU64,
    emergency: Mutex<EmergencyStore<K>>,
    /// The error-certified top-K layer ([`crate::topk`]). The mutex is
    /// touched only on the promotion path — when the mice filter passes
    /// value through (elephant traffic; every insert for the raw
    /// variant) — so mouse-dominated hot paths never contend on it; the
    /// bucket transitions that feed monitored counts were each committed
    /// by the existing one-CAS step before the offer is taken.
    topk: Option<Mutex<TopKSummary<K>>>,
    merged: Option<MergedOverlay>,
    /// Bumped whenever the sealed overlay mutates (every merge funnels
    /// through [`Self::seal_into_overlay`]); lets a replication cut detect
    /// that live-word dirty bits no longer tell the whole story and fall
    /// back to a full snapshot.
    merge_epoch: u64,
    /// Baselines recorded at the last replication cut (see
    /// [`crate::replicate`]); `None` until the sketch first ships a delta.
    #[cfg(feature = "serde")]
    cut: Option<crate::replicate::ReplicaCut>,
}

impl<K: Key> ConcurrentReliable<K> {
    /// Build from a configuration, honoring `config.mice_filter`: the
    /// filter takes its configured fraction of `memory_bytes` as packed
    /// atomic CU lanes, and the remaining budget buys
    /// `layer_bytes / ATOMIC_BUCKET_BYTES` single-word buckets shaped
    /// against the residual tolerance `Λ − threshold` (exactly like
    /// [`crate::ReliableSketch::new`]). With `mice_filter: None` this is
    /// the paper's "Raw" variant and the whole budget goes to buckets.
    ///
    /// # Panics
    /// Panics on invalid configurations, or when `Λ` yields a layer
    /// threshold above [`ERR_MAX`] (the packed error field is 12 bits
    /// wide, a narrower domain than [`crate::ReliableSketch`]'s unbounded
    /// `u64` counters — tolerances up to `Λ = 4095` are always safe).
    pub fn new(config: ReliableConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid ReliableConfig: {e}"));
        let buckets = (config.layer_bytes() / ATOMIC_BUCKET_BYTES).max(1);
        let geometry = LayerGeometry::derive(
            buckets,
            config.layer_lambda(),
            config.r_w,
            config.r_lambda,
            config.depth,
            config.lambda_floor_one,
        );
        Self::with_geometry(config, geometry)
    }

    /// Build with an explicit layer schedule (tests and ablations; also
    /// how the differential suite pins this variant to the exact geometry
    /// of a [`crate::ReliableSketch`] twin). The mice filter is still
    /// derived from `config`, identically to the sequential constructor,
    /// so twins share filter shape and hash seeds too.
    pub fn with_geometry(config: ReliableConfig, geometry: LayerGeometry) -> Self {
        let filter = config.mice_filter.as_ref().and_then(|fc| {
            AtomicMiceFilter::new(
                config.filter_bytes(),
                fc.arrays,
                fc.counter_bits,
                config.filter_threshold().max(1),
                config.seed ^ FILTER_SEED_SALT,
            )
        });
        let array = AtomicBucketArray::new(&geometry);
        let hashes = HashFamily::new(geometry.depth(), config.seed);
        let fp_seed = splitmix64(config.seed ^ FP_SALT) as u32;
        let emergency = Mutex::new(EmergencyStore::new(config.emergency));
        Self {
            config,
            geometry,
            hashes,
            fp_seed,
            filter,
            array,
            failures: AtomicU64::new(0),
            emergency,
            topk: None,
            merged: None,
            merge_epoch: 0,
            #[cfg(feature = "serde")]
            cut: None,
        }
    }

    /// The configuration this sketch was built from.
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The materialized layer geometry.
    pub fn geometry(&self) -> &LayerGeometry {
        &self.geometry
    }

    /// The underlying bucket store (contention and saturation stats).
    pub fn array(&self) -> &AtomicBucketArray {
        &self.array
    }

    /// Does the mice filter exist (false for the paper's "Raw" variant)?
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// The lock-free mice filter, if configured.
    pub fn filter(&self) -> Option<&AtomicMiceFilter> {
        self.filter.as_ref()
    }

    /// Per-key bound on how far a contended filtered estimate may trail
    /// the truth: the filter's
    /// [`contention_undershoot_bound`](AtomicMiceFilter::contention_undershoot_bound),
    /// or 0 for the raw variant and on uncontended/single-owner paths
    /// (which are exact).
    pub fn contention_undershoot_bound(&self) -> u64 {
        self.filter
            .as_ref()
            .map_or(0, AtomicMiceFilter::contention_undershoot_bound)
    }

    /// Attach the error-certified top-K layer ([`crate::topk`]),
    /// mirroring [`crate::ReliableSketch::enable_top_k`]: offers happen
    /// only when the atomic mice filter passes value through, so the
    /// guarding mutex sees elephant traffic only. Enable *before*
    /// ingesting. Under producer contention a claim's seed estimate may
    /// trail the racing truth by the documented
    /// [`Self::contention_undershoot_bound`]; single-owner histories are
    /// bit-for-bit equal to the sequential twin's summary.
    pub fn enable_top_k(&mut self, capacity: usize) {
        let threshold = self.filter.as_ref().map_or(0, AtomicMiceFilter::threshold);
        self.topk = Some(Mutex::new(TopKSummary::new(capacity, threshold)));
    }

    /// Builder-style [`Self::enable_top_k`].
    #[must_use]
    pub fn with_top_k(mut self, capacity: usize) -> Self {
        self.enable_top_k(capacity);
        self
    }

    /// Clone of the attached top-K summary, if enabled (read under its
    /// mutex; the merge and epoch layers use this to union summaries).
    pub fn top_k_summary(&self) -> Option<TopKSummary<K>> {
        self.topk.as_ref().map(|tk| tk.lock().clone())
    }

    /// The top-K mutex itself (merge plumbing).
    pub(crate) fn topk_cell(&self) -> Option<&Mutex<TopKSummary<K>>> {
        self.topk.as_ref()
    }

    /// Drop the top-K layer — replica apply paths call this because a
    /// restored bucket image carries no promotion history, so any
    /// existing summary would certify a stream it never witnessed.
    pub(crate) fn invalidate_top_k(&mut self) {
        self.topk = None;
    }

    /// Has this sketch absorbed another via [`rsk_api::Merge`] (or
    /// [`Self::merge_from_sequential`])? Merged sketches keep the
    /// certified-interval guarantee but the `MPE ≤ Λ` ceiling becomes
    /// data-dependent, exactly as for [`crate::ReliableSketch::is_merged`].
    pub fn is_merged(&self) -> bool {
        self.merged.is_some()
    }

    /// Insert operations that overflowed every layer.
    pub fn insertion_failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Total value dropped by failures (nonzero only with
    /// [`crate::EmergencyPolicy::Disabled`]).
    pub fn dropped_value(&self) -> u64 {
        self.emergency.lock().dropped_value()
    }

    /// 24-bit candidate fingerprint of `key`.
    #[inline]
    pub(crate) fn fingerprint(&self, key: &K) -> u64 {
        key.hash32(self.fp_seed) as u64 & FP_MASK
    }

    /// Lock-free insertion through a shared reference.
    #[inline]
    pub fn insert_concurrent(&self, key: &K, value: u64) {
        if value == 0 {
            return;
        }
        let fp = self.fingerprint(key);
        let idx0 = self.hashes.index(0, key, self.geometry.width(0));
        self.insert_prehashed(key, value, fp, idx0);
    }

    /// The walk after the batch-amortized prefix (fingerprint and layer-0
    /// index already computed). The mice filter — when configured — runs
    /// first, exactly like the sequential Algorithm-1 front end: only the
    /// value it passes through descends into the bucket layers.
    #[inline]
    fn insert_prehashed(&self, key: &K, value: u64, fp: u64, idx0: usize) {
        self.array.note_item();
        self.insert_filtered(key, value, fp, idx0);
    }

    /// [`Self::insert_prehashed`] minus the item accounting (the batched
    /// fast path notes the item before its prescan dispatch).
    #[inline]
    fn insert_filtered(&self, key: &K, value: u64, fp: u64, idx0: usize) {
        let mut v = value;
        if let Some(f) = &self.filter {
            v = f.insert(key, v);
            if v == 0 {
                return; // absorbed: a mouse never touches a bucket
            }
        }
        let passed = v;
        self.descend(key, v, fp, idx0);
        // elephant promotion: offer the passed value to the top-K layer
        // after every CAS of this insert committed, so an unmonitored
        // key's claim is seeded from the certified post-insert estimate
        if let Some(tk) = &self.topk {
            tk.lock().offer(key, passed, || self.query_with_error(key));
        }
    }

    /// The bucket-layer walk proper: descend from layer 0 until the value
    /// is absorbed, recording an emergency entry when every layer locks.
    #[inline]
    fn descend(&self, key: &K, value: u64, fp: u64, idx0: usize) {
        let mut v = self.array.insert_step(0, idx0, fp, value);
        let mut layer = 1;
        while v > 0 && layer < self.geometry.depth() {
            let j = self.hashes.index(layer, key, self.geometry.width(layer));
            v = self.array.insert_step(layer, j, fp, v);
            layer += 1;
        }
        if v > 0 {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.emergency.lock().record(key, v);
        }
    }

    /// Insert a batch, amortizing fingerprint and layer-0 hashing over a
    /// tight precompute loop per 64-item chunk. Semantically identical to
    /// calling [`Self::insert_concurrent`] per item in order.
    ///
    /// With the `simd` feature on, the prefix hashes four lanes at a
    /// time, upcoming layer-0 lines are software-prefetched
    /// [`crate::simd::PREFETCH_DISTANCE`] items ahead, and — on the raw,
    /// un-monitored configuration — a ×4 packed-word prescan dispatches
    /// matching-candidate lanes straight to the one-CAS absorb fast path
    /// (stale hints fall back to the full walk under CAS, so results are
    /// bit-identical to the scalar path; `tests/simd_parity.rs` pins
    /// this). Items are always applied in stream order.
    pub fn insert_batch(&self, items: &[(K, u64)]) {
        const CHUNK: usize = 64;
        let w0 = self.geometry.width(0);
        let mut idx0 = [0usize; CHUNK];
        let mut fps = [0u64; CHUNK];
        // The prescan only pays off when every nonzero item walks the
        // buckets directly; filter/top-K front-ends keep the per-item
        // path (their hashing still rides the ×4 prefix).
        let prescan = simd::ENABLED && self.filter.is_none() && self.topk.is_none();
        for chunk in items.chunks(CHUNK) {
            let n = chunk.len();
            simd::layer0_prefix(
                &self.hashes,
                self.fp_seed,
                FP_MASK,
                w0,
                chunk,
                &mut idx0[..n],
                &mut fps[..n],
            );
            let mut s = 0;
            if prescan {
                while s + simd::LANES <= n {
                    if s + simd::PREFETCH_DISTANCE + simd::LANES <= n {
                        for d in 0..simd::LANES {
                            self.array
                                .prefetch(0, idx0[s + simd::PREFETCH_DISTANCE + d]);
                        }
                    }
                    let words = core::array::from_fn(|l| self.array.word_relaxed(0, idx0[s + l]));
                    let lane_fps = core::array::from_fn(|l| fps[s + l]);
                    let hit = simd::fp_match_x4(words, lane_fps, FP_SHIFT);
                    // in-order apply: lane l of this group is item s + l
                    for l in 0..simd::LANES {
                        let (k, v) = chunk[s + l];
                        if v == 0 {
                            continue;
                        }
                        self.array.note_item();
                        if !(hit[l] && self.array.try_absorb(0, idx0[s + l], fps[s + l], v)) {
                            self.insert_filtered(&k, v, fps[s + l], idx0[s + l]);
                        }
                    }
                    s += simd::LANES;
                }
            }
            for (i, &(k, v)) in chunk.iter().enumerate().skip(s) {
                if simd::ENABLED && i + simd::PREFETCH_DISTANCE < n {
                    self.array.prefetch(0, idx0[i + simd::PREFETCH_DISTANCE]);
                }
                if v > 0 {
                    self.insert_prehashed(&k, v, fps[i], idx0[i]);
                }
            }
        }
    }

    /// Drain an item stream through [`Self::insert_batch`] in batches of
    /// `batch_size` (clamped to ≥ 1), buffering only one batch at a time.
    /// Returns the number of items processed.
    pub fn ingest_batched<I>(&self, stream: I, batch_size: usize) -> usize
    where
        I: IntoIterator<Item = (K, u64)>,
    {
        let batch_size = batch_size.max(1);
        let mut buffer = Vec::with_capacity(batch_size);
        let mut total = 0usize;
        for item in stream {
            buffer.push(item);
            if buffer.len() == batch_size {
                self.insert_batch(&buffer);
                total += buffer.len();
                buffer.clear();
            }
        }
        self.insert_batch(&buffer);
        total + buffer.len()
    }

    /// Algorithm-2 point query with its certified error interval. The
    /// filter contribution (a `NO` in disguise) joins both the estimate
    /// and the MPE; an unsaturated key never descended, so the walk stops
    /// at the filter. After a merge, the sealed overlay is walked in
    /// addition to the live words (two generations of one stream).
    pub fn query_with_error(&self, key: &K) -> Estimate {
        let fp = self.fingerprint(key);
        let mut est = 0u64;
        let mut mpe = 0u64;
        let mut descend = true;
        if let Some(f) = &self.filter {
            let (c, saturated) = f.query(key);
            est += c;
            mpe += c;
            descend = saturated;
        }
        if descend {
            if let Some(overlay) = &self.merged {
                for i in 0..self.geometry.depth() {
                    let j = self.hashes.index(i, key, self.geometry.width(i));
                    let b = &overlay.layers[i][j];
                    let matches = b.id() == Some(&fp);
                    est += if matches { b.yes() } else { b.no() };
                    mpe += b.no();
                    // stop conditions are suppressed on merge-flagged
                    // buckets, from which a key may have descended in
                    // some operand (see crate::merge)
                    if !overlay.hints[i][j]
                        && (b.no() < self.array.lambda(i) || b.yes() == b.no() || matches)
                    {
                        break;
                    }
                }
            }
            for i in 0..self.geometry.depth() {
                let j = self.hashes.index(i, key, self.geometry.width(i));
                let (bfp, yes, no) = self.array.read(i, j);
                let matches = bfp == fp;
                est += if matches { yes } else { no };
                mpe += no;
                if no < self.array.lambda(i) || yes == no || matches {
                    break;
                }
            }
        }
        if self.failures.load(Ordering::Relaxed) > 0 {
            let (ev, eo) = self.emergency.lock().query(key);
            est += ev;
            mpe += eo;
        }
        Estimate {
            value: est,
            max_possible_error: mpe,
        }
    }

    /// Worst-case MPE this structure can report for any key:
    /// `filter_threshold + Σ λ_i ≤ Λ` (the same split as
    /// [`crate::ReliableSketch::mpe_ceiling`]; the ceiling becomes
    /// data-dependent after a merge — check [`Self::is_merged`]).
    pub fn mpe_ceiling(&self) -> u64 {
        self.config.filter_threshold() + self.geometry.total_lambda()
    }

    // ---- crate-internal access for the merge module ----

    /// The operand view a peer reads while merging: the effective sealed
    /// layers (overlay ∪ live words, unioned on the fly when both exist)
    /// with their divert hints.
    pub(crate) fn effective_layers(&self) -> (Vec<Vec<EsBucket<u64>>>, Vec<Vec<bool>>) {
        let readout = self.array.read_out();
        match &self.merged {
            None => (readout, Vec::new()),
            Some(overlay) => {
                let mut layers = overlay.layers.clone();
                let mut hints = overlay.hints.clone();
                crate::merge::union_layers(
                    &mut layers,
                    &mut hints,
                    &readout,
                    &[],
                    self.geometry.lambdas(),
                );
                (layers, hints)
            }
        }
    }

    /// Seal the live atomic words into the merged overlay (creating it on
    /// first use) and zero them, so post-merge insertions accumulate in a
    /// fresh generation. Operation statistics survive.
    pub(crate) fn seal_into_overlay(&mut self) {
        self.merge_epoch += 1;
        let readout = self.array.read_out();
        match &mut self.merged {
            Some(overlay) => {
                crate::merge::union_layers(
                    &mut overlay.layers,
                    &mut overlay.hints,
                    &readout,
                    &[],
                    self.geometry.lambdas(),
                );
            }
            None => {
                let hints = readout.iter().map(|l| vec![false; l.len()]).collect();
                self.merged = Some(MergedOverlay {
                    layers: readout,
                    hints,
                });
            }
        }
        self.array.zero_words();
    }

    /// Mutable merge state: filter, overlay, emergency store, failure
    /// counter (the concurrent analogue of
    /// [`crate::ReliableSketch`]'s `merge_parts`).
    #[allow(clippy::type_complexity)]
    pub(crate) fn merge_parts(
        &mut self,
    ) -> (
        &mut Option<AtomicMiceFilter>,
        &mut Option<MergedOverlay>,
        &Mutex<EmergencyStore<K>>,
        &AtomicU64,
    ) {
        (
            &mut self.filter,
            &mut self.merged,
            &self.emergency,
            &self.failures,
        )
    }

    /// Shared peer state read during a merge.
    pub(crate) fn peer_filter(&self) -> Option<&AtomicMiceFilter> {
        self.filter.as_ref()
    }

    /// Clone of the peer's emergency store (read under its mutex).
    pub(crate) fn peer_emergency(&self) -> EmergencyStore<K> {
        self.emergency.lock().clone()
    }

    // ---- crate-internal access for the replication layer ----

    /// The sealed merge overlay, if any (replication capture).
    pub(crate) fn overlay(&self) -> Option<&MergedOverlay> {
        self.merged.as_ref()
    }

    /// Overlay mutation counter (see the `merge_epoch` field).
    pub(crate) fn merge_epoch(&self) -> u64 {
        self.merge_epoch
    }

    /// Exclusive access to the bucket store (replica restore/apply).
    #[cfg(feature = "serde")]
    pub(crate) fn array_mut(&mut self) -> &mut AtomicBucketArray {
        &mut self.array
    }

    /// Overwrite the failure counter (replica restore/apply).
    #[cfg(feature = "serde")]
    pub(crate) fn set_failures(&mut self, failures: u64) {
        *self.failures.get_mut() = failures;
    }

    /// The baselines recorded at the last replication cut.
    #[cfg(feature = "serde")]
    pub(crate) fn replica_cut(&self) -> Option<&crate::replicate::ReplicaCut> {
        self.cut.as_ref()
    }

    /// Record a replication cut: clear the dirty map and remember the
    /// baselines the next delta diffs against.
    #[cfg(feature = "serde")]
    pub(crate) fn set_replica_cut(&mut self, cut: crate::replicate::ReplicaCut) {
        self.array.clear_dirty();
        self.cut = Some(cut);
    }
}

impl<K: Key> StreamSummary<K> for ConcurrentReliable<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        self.insert_concurrent(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }
}

impl<K: Key> ErrorSensing<K> for ConcurrentReliable<K> {
    #[inline]
    fn query_with_error(&self, key: &K) -> Estimate {
        ConcurrentReliable::query_with_error(self, key)
    }
}

impl<K: Key> MemoryFootprint for ConcurrentReliable<K> {
    fn memory_bytes(&self) -> usize {
        let filter = self
            .filter
            .as_ref()
            .map_or(0, AtomicMiceFilter::memory_bytes);
        let overlay = self.merged.as_ref().map_or(0, |_| {
            self.array.total_buckets() * crate::config::BUCKET_BYTES
        });
        let topk = self.topk.as_ref().map_or(0, |tk| tk.lock().memory_bytes());
        filter
            + self.array.total_buckets() * ATOMIC_BUCKET_BYTES
            + overlay
            + topk
            + self.emergency.lock().memory_bytes()
    }
}

impl<K: Key> TopK<K> for ConcurrentReliable<K> {
    fn certified_top_k(&self, k: usize) -> CertifiedTopK<K> {
        self.topk
            .as_ref()
            .map_or_else(CertifiedTopK::vacuous, |tk| tk.lock().certified_top_k(k))
    }

    fn top_k_capacity(&self) -> Option<usize> {
        self.topk.as_ref().map(|tk| tk.lock().capacity())
    }
}

impl<K: Key> Algorithm for ConcurrentReliable<K> {
    fn name(&self) -> String {
        if self.has_filter() {
            "OursAtomic".into()
        } else {
            "OursAtomic(Raw)".into()
        }
    }
}

impl<K: Key> Clear for ConcurrentReliable<K> {
    fn clear(&mut self) {
        if let Some(f) = &mut self.filter {
            f.clear();
        }
        self.array.reset();
        self.failures.store(0, Ordering::Relaxed);
        self.emergency.lock().clear();
        if let Some(tk) = &self.topk {
            tk.lock().clear();
        }
        self.merged = None;
        self.merge_epoch = 0;
        #[cfg(feature = "serde")]
        {
            self.cut = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Depth, EmergencyPolicy, MiceFilterConfig};
    use crate::sketch::ReliableSketch;
    use proptest::prelude::*;

    #[test]
    fn word_roundtrip() {
        for (fp, count, err) in [(0, 0, 0), (1, 2, 3), (FP_MASK, COUNT_MAX, ERR_MAX)] {
            assert_eq!(unpack(pack(fp, count, err)), (fp, count, err));
        }
    }

    #[test]
    fn step_word_matches_bucket_election() {
        // Figure 2's worked example on the packed word (λ large: no lock)
        let mut w = 0u64;
        let (a, b) = (1u64, 2u64);
        let step = |w: &mut u64, fp, v| {
            let (next, left, _) = step_word(*w, fp, v, ERR_MAX);
            *w = next;
            left
        };
        assert_eq!(step(&mut w, a, 2), 0);
        assert_eq!(unpack(w), (a, 2, 0));
        assert_eq!(step(&mut w, a, 3), 0);
        assert_eq!(unpack(w), (a, 5, 0));
        assert_eq!(step(&mut w, b, 10), 0); // NO 10 ≥ YES 5 → replace + swap
        assert_eq!(unpack(w), (b, 10, 5));
    }

    #[test]
    fn step_word_lock_diverts() {
        // λ = 4, bucket captured by fp 1 with YES 10, NO 3: a colliding 5
        // absorbs 1 (to NO = λ) and diverts 4
        let w = pack(1, 10, 3);
        let (next, left, _) = step_word(w, 2, 5, 4);
        assert_eq!(unpack(next), (1, 10, 4));
        assert_eq!(left, 4);
        // a matching key is absorbed fully even when locked
        let (next, left, _) = step_word(next, 1, 7, 4);
        assert_eq!(unpack(next), (1, 17, 4));
        assert_eq!(left, 0);
    }

    #[test]
    fn step_word_count_saturates() {
        let w = pack(3, COUNT_MAX - 1, 0);
        let (next, left, sat) = step_word(w, 3, 10, ERR_MAX);
        assert_eq!(unpack(next), (3, COUNT_MAX, 0));
        assert_eq!(left, 0);
        assert!(sat);
    }

    #[test]
    fn array_rejects_oversized_lambda() {
        let geometry = LayerGeometry::custom(vec![4], vec![ERR_MAX + 1]).unwrap();
        let r = std::panic::catch_unwind(|| AtomicBucketArray::new(&geometry));
        assert!(r.is_err());
    }

    fn twin_pair_with(
        geometry: &LayerGeometry,
        filter: Option<MiceFilterConfig>,
        seed: u64,
    ) -> (ConcurrentReliable<u64>, ReliableSketch<u64>) {
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * ATOMIC_BUCKET_BYTES,
            lambda: geometry.total_lambda().max(1),
            depth: Depth::Fixed(geometry.depth()),
            mice_filter: filter,
            emergency: EmergencyPolicy::ExactTable,
            seed,
            ..Default::default()
        };
        let atomic = ConcurrentReliable::with_geometry(config.clone(), geometry.clone());
        let classic = ReliableSketch::with_geometry(config, geometry.clone());
        (atomic, classic)
    }

    fn twin_pair(
        geometry: &LayerGeometry,
        seed: u64,
    ) -> (ConcurrentReliable<u64>, ReliableSketch<u64>) {
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * ATOMIC_BUCKET_BYTES,
            lambda: geometry.total_lambda().max(1),
            depth: Depth::Fixed(geometry.depth()),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            seed,
            ..Default::default()
        };
        let atomic = ConcurrentReliable::with_geometry(config.clone(), geometry.clone());
        let classic = ReliableSketch::with_geometry(config, geometry.clone());
        (atomic, classic)
    }

    #[test]
    fn single_thread_equals_classic_sketch() {
        let geometry = LayerGeometry::derive(2_000, 25, 2.0, 2.5, Depth::Auto, false);
        let (atomic, mut classic) = twin_pair(&geometry, 9);
        let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 1_111, 1 + i % 3)).collect();
        for &(k, v) in &items {
            atomic.insert_concurrent(&k, v);
            classic.insert(&k, v);
        }
        for k in 0..1_111u64 {
            let a = atomic.query_with_error(&k);
            let c = rsk_api::ErrorSensing::query_with_error(&classic, &k);
            assert_eq!(
                (a.value, a.max_possible_error),
                (c.value, c.max_possible_error)
            );
        }
        assert_eq!(atomic.insertion_failures(), classic.insertion_failures());
    }

    #[test]
    fn insert_batch_equals_item_loop() {
        let geometry = LayerGeometry::derive(1_000, 25, 2.0, 2.5, Depth::Auto, false);
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * ATOMIC_BUCKET_BYTES,
            seed: 4,
            ..Default::default()
        };
        let batched = ConcurrentReliable::<u64>::with_geometry(config.clone(), geometry.clone());
        let looped = ConcurrentReliable::<u64>::with_geometry(config, geometry);
        let items: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 500, 1 + i % 7)).collect();
        batched.insert_batch(&items);
        for &(k, v) in &items {
            looped.insert_concurrent(&k, v);
        }
        for k in 0..500u64 {
            assert_eq!(batched.query_with_error(&k), looped.query_with_error(&k));
        }
        assert_eq!(
            batched.array().stats().items(),
            looped.array().stats().items()
        );
    }

    #[test]
    fn filtered_single_thread_equals_classic_sketch() {
        // the acceptance differential: the full filtered variant, one
        // producer, is query-equivalent to the filtered sequential sketch
        let geometry = LayerGeometry::derive(2_000, 22, 2.0, 2.5, Depth::Auto, false);
        let (atomic, mut classic) = twin_pair_with(
            &geometry,
            Some(MiceFilterConfig {
                counter_bits: 8,
                ..Default::default()
            }),
            31,
        );
        assert!(atomic.has_filter() && classic.has_filter());
        // heavy mouse tail plus a few elephants: both sides of the filter
        // boundary are exercised
        let items: Vec<(u64, u64)> = (0..60_000u64)
            .map(|i| {
                if i % 5 == 0 {
                    (i % 40, 3)
                } else {
                    (1_000 + i % 9_000, 1)
                }
            })
            .collect();
        for &(k, v) in &items {
            atomic.insert_concurrent(&k, v);
            classic.insert(&k, v);
        }
        for k in (0..40u64).chain(1_000..10_000) {
            let a = atomic.query_with_error(&k);
            let c = rsk_api::ErrorSensing::query_with_error(&classic, &k);
            assert_eq!(
                (a.value, a.max_possible_error),
                (c.value, c.max_possible_error),
                "filtered divergence at key {k}"
            );
        }
        assert_eq!(atomic.insertion_failures(), classic.insertion_failures());
        assert_eq!(atomic.mpe_ceiling(), classic.mpe_ceiling());
    }

    #[test]
    fn filtered_contention_respects_relaxed_bound() {
        // 8 producers hammer the same mice keys through the shared-`&self`
        // path: estimates may trail the truth by at most the documented
        // filter slack, and the MPE ceiling survives any interleaving.
        let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 256 * 1024,
            emergency: EmergencyPolicy::ExactTable,
            seed: 41,
            ..Default::default()
        });
        assert!(sk.has_filter());
        let slack = sk.contention_undershoot_bound();
        assert!(slack > 0, "default 2-array filter has nonzero slack");
        let (threads, per_thread, keys) = (8u64, 8_000u64, 500u64);
        std::thread::scope(|s| {
            for t in 0..threads {
                let sk = &sk;
                s.spawn(move || {
                    for i in 0..per_thread {
                        sk.insert_concurrent(&((t + i) % keys), 1 + i % 2);
                    }
                });
            }
        });
        assert_eq!(sk.insertion_failures(), 0);
        // every key's true mass: each thread contributes per_thread/keys
        // values from the 1,2 cycle — recompute exactly
        let mut truth = vec![0u64; keys as usize];
        for t in 0..threads {
            for i in 0..per_thread {
                truth[((t + i) % keys) as usize] += 1 + i % 2;
            }
        }
        for (k, &f) in truth.iter().enumerate() {
            let est = sk.query_with_error(&(k as u64));
            assert!(
                est.value + slack >= f,
                "key {k}: {est:?} trails truth {f} beyond the filter slack {slack}"
            );
            assert!(
                est.value <= f + est.max_possible_error,
                "key {k}: overshoot beyond the certified MPE"
            );
            assert!(est.max_possible_error <= sk.mpe_ceiling());
        }
    }

    #[test]
    fn concurrent_inserts_keep_the_guarantee() {
        // raw variant: the bucket CAS path alone is strictly linearizable
        // — no undershoot under any contention
        let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 256 * 1024,
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            seed: 3,
            ..Default::default()
        });
        let n_threads = 8u64;
        let per_thread = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let sk = &sk;
                s.spawn(move || {
                    for i in 0..per_thread {
                        sk.insert_concurrent(&((t * per_thread + i) % 2_000), 1);
                    }
                });
            }
        });
        let total = n_threads * per_thread;
        let mut recovered = 0u64;
        for k in 0..2_000u64 {
            let est = sk.query_with_error(&k);
            let truth = total / 2_000;
            assert!(est.value >= truth, "undershoot at {k}: {est:?}");
            assert!(est.max_possible_error <= 25, "MPE blew past Λ at {k}");
            assert!(est.contains(truth), "key {k}: {truth} ∉ {est:?}");
            recovered += est.value - est.max_possible_error.min(est.value);
        }
        assert!(recovered <= total, "lower bounds must not exceed the mass");
    }

    #[test]
    fn clear_resets_everything() {
        let mut sk = ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 16 * 1024,
            seed: 5,
            ..Default::default()
        });
        for i in 0..5_000u64 {
            sk.insert_concurrent(&(i % 100), 2);
        }
        Clear::clear(&mut sk);
        for k in 0..100u64 {
            assert_eq!(sk.query_with_error(&k).value, 0);
        }
        assert_eq!(sk.array().stats().items(), 0);
        assert_eq!(sk.insertion_failures(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Single-threaded, the atomic path is bit-for-bit the classic
        /// sketch (same geometry, seed and emergency policy) on arbitrary
        /// streams, with and without the mice filter — fingerprint
        /// collisions aside, which the key range here makes vanishingly
        /// unlikely.
        #[test]
        fn prop_atomic_equals_classic(
            ops in proptest::collection::vec((0u64..300, 1u64..8), 1..1500),
            seed in 0u64..32,
            filtered in proptest::bool::ANY,
        ) {
            let geometry = LayerGeometry::derive(256, 25, 2.0, 2.5, Depth::Fixed(5), false);
            let filter = filtered.then(|| MiceFilterConfig {
                counter_bits: 8,
                ..Default::default()
            });
            let (atomic, mut classic) = twin_pair_with(&geometry, filter, seed);
            for &(k, v) in &ops {
                atomic.insert_concurrent(&k, v);
                classic.insert(&k, v);
            }
            for k in 0..300u64 {
                let a = atomic.query_with_error(&k);
                let c = rsk_api::ErrorSensing::query_with_error(&classic, &k);
                prop_assert_eq!((a.value, a.max_possible_error), (c.value, c.max_possible_error), "key {}", k);
            }
        }

        /// The packed-word lock invariant: NO never exceeds λ after any
        /// step, and value is conserved (absorbed + leftover = inserted).
        #[test]
        fn prop_step_word_invariants(
            ops in proptest::collection::vec((0u64..6, 1u64..40), 1..200),
            lambda in 1u64..64,
        ) {
            let mut w = 0u64;
            for (fp, v) in ops {
                let (yes0, no0) = { let (_, y, n) = unpack(w); (y, n) };
                let (next, left, sat) = step_word(w, fp, v, lambda);
                let (_, yes1, no1) = unpack(next);
                prop_assert!(no1 <= lambda.max(no0), "NO {} above λ {}", no1, lambda);
                prop_assert!(yes1 >= no1 || no1 <= lambda);
                if !sat {
                    prop_assert_eq!(yes1 + no1 + left, yes0 + no0 + v, "value not conserved");
                }
                w = next;
            }
        }
    }
}
