//! Lock-free atomic bucket layers — the multi-core hot path.
//!
//! The paper scales ReliableSketch across FPGA/Tofino *pipeline stages*;
//! on CPUs the analogue is scaling across cores, and the lesson of "Fast
//! Concurrent Data Sketches" (Rinberg et al., PPoPP '20) is that lock-free
//! ingestion beats lock-based designs by an order of magnitude. This
//! module rebuilds the Error-Sensible bucket for that regime:
//!
//! * **One `AtomicU64` word per bucket.** The paper's §6.1.1 hardware
//!   layout (32-bit `YES`, 16-bit `NO`, 32-bit `ID` = 80 bits) does not
//!   fit a single CAS word, so the concurrent bucket stores a 24-bit key
//!   *fingerprint* instead of the full ID and packs
//!   `fingerprint(24) | count(28) | error(12)` into 64 bits. `error` is
//!   the bucket's `NO` field; the lock invariant `NO ≤ λ_i ≤ Λ` keeps it
//!   within 12 bits (enforced at construction).
//! * **CAS capture of the lock-in rule.** One insertion step — vote,
//!   lock-divert, or candidate replacement with the `YES`/`NO` swap — is
//!   computed as a pure function on the packed word ([`step_word`]) and
//!   committed with a single compare-and-swap, so every bucket transition
//!   is atomic and the per-bucket invariants (`YES ≥ NO` for candidates,
//!   `NO ≤ λ_i`) hold under any interleaving.
//! * **Relaxed counters for stats.** Items, CAS retries, failures and
//!   saturation events are `Relaxed` atomics off the decision path.
//!
//! ### What survives concurrency
//!
//! Each CAS is a linearization point, so a parallel execution is
//! equivalent to *some* sequential stream in which each `⟨key, value⟩`
//! insertion may be split into per-layer sub-insertions. ReliableSketch
//! is closed under such splits (weighted insertions already split across
//! the lock boundary), so the structural guarantees survive: estimates
//! never undershoot the truth, `MPE(e) ≤ Σ λ_i ≤ Λ` for every key, and a
//! locked bucket stays locked. What is *not* preserved under concurrent
//! interleaving is bit-for-bit determinism of the election outcomes —
//! that is restored one level up by
//! [`crate::concurrent::ShardedReliable::ingest_parallel`], which applies
//! each shard's sub-stream in stream order from a single owner.
//!
//! ### Caveats vs. [`crate::ReliableSketch`]
//!
//! * Fingerprinting adds a `2⁻²⁴` per-colliding-pair chance of two keys
//!   aliasing inside one bucket (the paper's own 32-bit `ID` field makes
//!   the same trade against `u64` keys, at `2⁻³²`).
//! * `count` saturates at `2²⁸ − 1` per bucket; saturation events are
//!   counted in [`AtomicStats::saturations`].
//! * The mice filter is not replicated (this is the paper's "Raw"
//!   variant); an atomic CU filter is an open item in ROADMAP.md.

use crate::config::ReliableConfig;
use crate::emergency::EmergencyStore;
use crate::geometry::LayerGeometry;
use parking_lot::Mutex;
use rsk_api::{Algorithm, Clear, ErrorSensing, Estimate, Key, MemoryFootprint, StreamSummary};
use rsk_hash::{splitmix64, HashFamily};
use std::sync::atomic::{AtomicU64, Ordering};

/// Physical size of one atomic bucket: a single 64-bit word.
pub const ATOMIC_BUCKET_BYTES: usize = 8;

/// Bits of the packed word holding the bucket error (`NO`).
const ERR_BITS: u32 = 12;
/// Bits of the packed word holding the candidate count (`YES`).
const COUNT_BITS: u32 = 28;

/// Largest representable `NO`; every layer threshold must stay below it.
pub const ERR_MAX: u64 = (1 << ERR_BITS) - 1;
/// Largest representable `YES`; additions saturate here.
pub const COUNT_MAX: u64 = (1 << COUNT_BITS) - 1;
/// Mask of the 24-bit candidate fingerprint.
pub const FP_MASK: u64 = (1 << (64 - ERR_BITS - COUNT_BITS)) - 1;

#[inline]
fn pack(fp: u64, count: u64, err: u64) -> u64 {
    debug_assert!(fp <= FP_MASK && count <= COUNT_MAX && err <= ERR_MAX);
    (fp << (COUNT_BITS + ERR_BITS)) | (count << ERR_BITS) | err
}

#[inline]
fn unpack(word: u64) -> (u64, u64, u64) {
    (
        word >> (COUNT_BITS + ERR_BITS),
        (word >> ERR_BITS) & COUNT_MAX,
        word & ERR_MAX,
    )
}

/// One Algorithm-1 layer step as a pure function on the packed word.
///
/// Returns `(new_word, leftover, saturated)`: the committed bucket state,
/// the value that must descend to the next layer, and whether the `count`
/// field clipped at [`COUNT_MAX`].
///
/// The three branches mirror [`crate::ReliableSketch::insert_traced`]:
/// matching candidates absorb fully (even when locked); a triggered lock
/// absorbs `λ − NO` and diverts the rest; otherwise the value votes `NO`
/// and replaces the candidate when `NO ≥ YES` (swapping the counters).
/// An empty bucket needs no special case — the replacement branch turns
/// `(0, 0, 0)` into `(fp, v, 0)` exactly like a first insertion.
#[inline]
pub(crate) fn step_word(word: u64, fp: u64, value: u64, lambda: u64) -> (u64, u64, bool) {
    let (bfp, yes, no) = unpack(word);
    if bfp == fp {
        let raised = yes.saturating_add(value);
        return (pack(fp, raised.min(COUNT_MAX), no), 0, raised > COUNT_MAX);
    }
    if no.saturating_add(value) > lambda && yes > lambda {
        let room = lambda.saturating_sub(no);
        return (pack(bfp, yes, no + room), value - room, false);
    }
    let votes = no.saturating_add(value);
    if votes >= yes {
        // replacement + swap: the old YES becomes the new NO; both
        // branches reaching here imply old YES ≤ λ ≤ ERR_MAX
        (pack(fp, votes.min(COUNT_MAX), yes), 0, votes > COUNT_MAX)
    } else {
        (pack(bfp, yes, votes), 0, false)
    }
}

/// Relaxed operation counters of an [`AtomicBucketArray`].
#[derive(Debug, Default)]
pub struct AtomicStats {
    items: AtomicU64,
    retries: AtomicU64,
    saturations: AtomicU64,
}

impl AtomicStats {
    /// Insert operations started.
    pub fn items(&self) -> u64 {
        self.items.load(Ordering::Relaxed)
    }

    /// CAS attempts that lost a race and retried (contention gauge).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Bucket-count saturation events (estimates may undershoot past
    /// [`COUNT_MAX`] per bucket once this is nonzero).
    pub fn saturations(&self) -> u64 {
        self.saturations.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.items.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.saturations.store(0, Ordering::Relaxed);
    }
}

/// The layered lock-free bucket store: geometry-shaped `AtomicU64` words
/// plus relaxed statistics. Hashing and key handling live one level up in
/// [`ConcurrentReliable`]; this type deals in `(layer, index, fingerprint)`
/// coordinates only.
#[derive(Debug)]
pub struct AtomicBucketArray {
    words: Vec<AtomicU64>,
    offsets: Vec<usize>,
    widths: Vec<usize>,
    lambdas: Vec<u64>,
    stats: AtomicStats,
}

impl AtomicBucketArray {
    /// Allocate zeroed buckets for `geometry`.
    ///
    /// # Panics
    /// Panics if any layer threshold exceeds [`ERR_MAX`] — the packed
    /// 12-bit error field cannot certify larger per-layer budgets.
    pub fn new(geometry: &LayerGeometry) -> Self {
        let widths = geometry.widths().to_vec();
        let lambdas = geometry.lambdas().to_vec();
        assert!(
            lambdas.iter().all(|&l| l <= ERR_MAX),
            "layer threshold exceeds the packed error field ({ERR_MAX})"
        );
        let mut offsets = Vec::with_capacity(widths.len());
        let mut total = 0usize;
        for &w in &widths {
            offsets.push(total);
            total += w;
        }
        let words = (0..total).map(|_| AtomicU64::new(0)).collect();
        Self {
            words,
            offsets,
            widths,
            lambdas,
            stats: AtomicStats::default(),
        }
    }

    /// Number of layers.
    #[inline]
    pub fn depth(&self) -> usize {
        self.widths.len()
    }

    /// Buckets in layer `i`.
    #[inline]
    pub fn width(&self, layer: usize) -> usize {
        self.widths[layer]
    }

    /// Lock threshold of layer `i`.
    #[inline]
    pub fn lambda(&self, layer: usize) -> u64 {
        self.lambdas[layer]
    }

    /// Total buckets across all layers.
    #[inline]
    pub fn total_buckets(&self) -> usize {
        self.words.len()
    }

    /// Operation statistics.
    pub fn stats(&self) -> &AtomicStats {
        &self.stats
    }

    /// Record one insert operation (called once per item by the owner).
    #[inline]
    pub(crate) fn note_item(&self) {
        self.stats.items.fetch_add(1, Ordering::Relaxed);
    }

    /// Apply one layer step for `fingerprint` at `(layer, index)` with a
    /// CAS loop; returns the leftover value that must descend.
    #[inline]
    pub fn insert_step(&self, layer: usize, index: usize, fingerprint: u64, value: u64) -> u64 {
        let cell = &self.words[self.offsets[layer] + index];
        let lambda = self.lambdas[layer];
        let mut current = cell.load(Ordering::Acquire);
        loop {
            let (next, leftover, saturated) = step_word(current, fingerprint, value, lambda);
            match cell.compare_exchange_weak(current, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    if saturated {
                        self.stats.saturations.fetch_add(1, Ordering::Relaxed);
                    }
                    return leftover;
                }
                Err(actual) => {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    current = actual;
                }
            }
        }
    }

    /// Read bucket `(layer, index)` as `(fingerprint, yes, no)`.
    #[inline]
    pub fn read(&self, layer: usize, index: usize) -> (u64, u64, u64) {
        unpack(self.words[self.offsets[layer] + index].load(Ordering::Acquire))
    }

    /// Zero every bucket and reset statistics (requires exclusive access
    /// for a consistent result; concurrent readers only ever observe valid
    /// bucket words).
    pub fn reset(&mut self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
        self.stats.reset();
    }
}

/// Salt separating the fingerprint hash from the per-layer index family.
const FP_SALT: u64 = 0xf19e_5a1e_0ff5_eeda;

/// Lock-free ReliableSketch over an [`AtomicBucketArray`]: shared-`&self`
/// insertion from any number of threads, the paper's "Raw" (no mice
/// filter) semantics, with the configured emergency policy serviced off
/// the hot path behind a mutex that only failures touch.
///
/// ```
/// use rsk_core::atomic::ConcurrentReliable;
/// use rsk_core::ReliableConfig;
///
/// let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
///     memory_bytes: 64 * 1024,
///     seed: 7,
///     ..Default::default()
/// });
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let sk = &sk;
///         s.spawn(move || {
///             for i in 0..1000u64 {
///                 sk.insert_concurrent(&(i % 10), 1 + t % 2);
///             }
///         });
///     }
/// });
/// let est = sk.query_with_error(&3);
/// assert!(est.value >= 400); // all four threads' mass is visible
/// assert!(est.max_possible_error <= 25);
/// ```
#[derive(Debug)]
pub struct ConcurrentReliable<K: Key> {
    config: ReliableConfig,
    geometry: LayerGeometry,
    hashes: HashFamily,
    fp_seed: u32,
    array: AtomicBucketArray,
    failures: AtomicU64,
    emergency: Mutex<EmergencyStore<K>>,
}

impl<K: Key> ConcurrentReliable<K> {
    /// Build from a configuration. The mice filter (if configured) is
    /// ignored — the concurrent data path is the paper's "Raw" variant —
    /// so the whole `memory_bytes` budget buys
    /// `memory_bytes / ATOMIC_BUCKET_BYTES` single-word buckets.
    ///
    /// # Panics
    /// Panics on invalid configurations, or when `Λ` yields a layer
    /// threshold above [`ERR_MAX`] (the packed error field is 12 bits
    /// wide, a narrower domain than [`crate::ReliableSketch`]'s unbounded
    /// `u64` counters — tolerances up to `Λ = 4095` are always safe).
    pub fn new(config: ReliableConfig) -> Self {
        let raw = ReliableConfig {
            mice_filter: None,
            ..config
        };
        raw.validate()
            .unwrap_or_else(|e| panic!("invalid ReliableConfig: {e}"));
        let buckets = (raw.memory_bytes / ATOMIC_BUCKET_BYTES).max(1);
        let geometry = LayerGeometry::derive(
            buckets,
            raw.lambda,
            raw.r_w,
            raw.r_lambda,
            raw.depth,
            raw.lambda_floor_one,
        );
        Self::with_geometry(raw, geometry)
    }

    /// Build with an explicit layer schedule (tests and ablations; also
    /// how the differential suite pins this variant to the exact geometry
    /// of a [`crate::ReliableSketch`] twin).
    pub fn with_geometry(config: ReliableConfig, geometry: LayerGeometry) -> Self {
        let array = AtomicBucketArray::new(&geometry);
        let hashes = HashFamily::new(geometry.depth(), config.seed);
        let fp_seed = splitmix64(config.seed ^ FP_SALT) as u32;
        let emergency = Mutex::new(EmergencyStore::new(config.emergency));
        Self {
            config,
            geometry,
            hashes,
            fp_seed,
            array,
            failures: AtomicU64::new(0),
            emergency,
        }
    }

    /// The configuration this sketch was built from (mice filter stripped).
    pub fn config(&self) -> &ReliableConfig {
        &self.config
    }

    /// The materialized layer geometry.
    pub fn geometry(&self) -> &LayerGeometry {
        &self.geometry
    }

    /// The underlying bucket store (contention and saturation stats).
    pub fn array(&self) -> &AtomicBucketArray {
        &self.array
    }

    /// Insert operations that overflowed every layer.
    pub fn insertion_failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Total value dropped by failures (nonzero only with
    /// [`crate::EmergencyPolicy::Disabled`]).
    pub fn dropped_value(&self) -> u64 {
        self.emergency.lock().dropped_value()
    }

    /// 24-bit candidate fingerprint of `key`.
    #[inline]
    fn fingerprint(&self, key: &K) -> u64 {
        key.hash32(self.fp_seed) as u64 & FP_MASK
    }

    /// Lock-free insertion through a shared reference.
    #[inline]
    pub fn insert_concurrent(&self, key: &K, value: u64) {
        if value == 0 {
            return;
        }
        let fp = self.fingerprint(key);
        let idx0 = self.hashes.index(0, key, self.geometry.width(0));
        self.insert_prehashed(key, value, fp, idx0);
    }

    /// The walk after the batch-amortized prefix (fingerprint and layer-0
    /// index already computed).
    #[inline]
    fn insert_prehashed(&self, key: &K, value: u64, fp: u64, idx0: usize) {
        self.array.note_item();
        let mut v = self.array.insert_step(0, idx0, fp, value);
        let mut layer = 1;
        while v > 0 && layer < self.geometry.depth() {
            let j = self.hashes.index(layer, key, self.geometry.width(layer));
            v = self.array.insert_step(layer, j, fp, v);
            layer += 1;
        }
        if v > 0 {
            self.failures.fetch_add(1, Ordering::Relaxed);
            self.emergency.lock().record(key, v);
        }
    }

    /// Insert a batch, amortizing fingerprint and layer-0 hashing over a
    /// tight precompute loop per 64-item chunk. Semantically identical to
    /// calling [`Self::insert_concurrent`] per item in order.
    pub fn insert_batch(&self, items: &[(K, u64)]) {
        const CHUNK: usize = 64;
        let w0 = self.geometry.width(0);
        let mut idx0 = [0usize; CHUNK];
        let mut fps = [0u64; CHUNK];
        for chunk in items.chunks(CHUNK) {
            for (s, (k, _)) in chunk.iter().enumerate() {
                idx0[s] = self.hashes.index(0, k, w0);
                fps[s] = self.fingerprint(k);
            }
            for (s, &(k, v)) in chunk.iter().enumerate() {
                if v > 0 {
                    self.insert_prehashed(&k, v, fps[s], idx0[s]);
                }
            }
        }
    }

    /// Algorithm-2 point query with its certified error interval.
    pub fn query_with_error(&self, key: &K) -> Estimate {
        let fp = self.fingerprint(key);
        let mut est = 0u64;
        let mut mpe = 0u64;
        for i in 0..self.geometry.depth() {
            let j = self.hashes.index(i, key, self.geometry.width(i));
            let (bfp, yes, no) = self.array.read(i, j);
            let matches = bfp == fp;
            est += if matches { yes } else { no };
            mpe += no;
            if no < self.array.lambda(i) || yes == no || matches {
                break;
            }
        }
        if self.failures.load(Ordering::Relaxed) > 0 {
            let (ev, eo) = self.emergency.lock().query(key);
            est += ev;
            mpe += eo;
        }
        Estimate {
            value: est,
            max_possible_error: mpe,
        }
    }

    /// Worst-case MPE this structure can report: `Σ λ_i ≤ Λ`.
    pub fn mpe_ceiling(&self) -> u64 {
        self.geometry.total_lambda()
    }
}

impl<K: Key> StreamSummary<K> for ConcurrentReliable<K> {
    #[inline]
    fn insert(&mut self, key: &K, value: u64) {
        self.insert_concurrent(key, value);
    }

    #[inline]
    fn query(&self, key: &K) -> u64 {
        self.query_with_error(key).value
    }
}

impl<K: Key> ErrorSensing<K> for ConcurrentReliable<K> {
    #[inline]
    fn query_with_error(&self, key: &K) -> Estimate {
        ConcurrentReliable::query_with_error(self, key)
    }
}

impl<K: Key> MemoryFootprint for ConcurrentReliable<K> {
    fn memory_bytes(&self) -> usize {
        self.array.total_buckets() * ATOMIC_BUCKET_BYTES + self.emergency.lock().memory_bytes()
    }
}

impl<K: Key> Algorithm for ConcurrentReliable<K> {
    fn name(&self) -> String {
        "OursAtomic".into()
    }
}

impl<K: Key> Clear for ConcurrentReliable<K> {
    fn clear(&mut self) {
        self.array.reset();
        self.failures.store(0, Ordering::Relaxed);
        self.emergency.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Depth, EmergencyPolicy};
    use crate::sketch::ReliableSketch;
    use proptest::prelude::*;

    #[test]
    fn word_roundtrip() {
        for (fp, count, err) in [(0, 0, 0), (1, 2, 3), (FP_MASK, COUNT_MAX, ERR_MAX)] {
            assert_eq!(unpack(pack(fp, count, err)), (fp, count, err));
        }
    }

    #[test]
    fn step_word_matches_bucket_election() {
        // Figure 2's worked example on the packed word (λ large: no lock)
        let mut w = 0u64;
        let (a, b) = (1u64, 2u64);
        let step = |w: &mut u64, fp, v| {
            let (next, left, _) = step_word(*w, fp, v, ERR_MAX);
            *w = next;
            left
        };
        assert_eq!(step(&mut w, a, 2), 0);
        assert_eq!(unpack(w), (a, 2, 0));
        assert_eq!(step(&mut w, a, 3), 0);
        assert_eq!(unpack(w), (a, 5, 0));
        assert_eq!(step(&mut w, b, 10), 0); // NO 10 ≥ YES 5 → replace + swap
        assert_eq!(unpack(w), (b, 10, 5));
    }

    #[test]
    fn step_word_lock_diverts() {
        // λ = 4, bucket captured by fp 1 with YES 10, NO 3: a colliding 5
        // absorbs 1 (to NO = λ) and diverts 4
        let w = pack(1, 10, 3);
        let (next, left, _) = step_word(w, 2, 5, 4);
        assert_eq!(unpack(next), (1, 10, 4));
        assert_eq!(left, 4);
        // a matching key is absorbed fully even when locked
        let (next, left, _) = step_word(next, 1, 7, 4);
        assert_eq!(unpack(next), (1, 17, 4));
        assert_eq!(left, 0);
    }

    #[test]
    fn step_word_count_saturates() {
        let w = pack(3, COUNT_MAX - 1, 0);
        let (next, left, sat) = step_word(w, 3, 10, ERR_MAX);
        assert_eq!(unpack(next), (3, COUNT_MAX, 0));
        assert_eq!(left, 0);
        assert!(sat);
    }

    #[test]
    fn array_rejects_oversized_lambda() {
        let geometry = LayerGeometry::custom(vec![4], vec![ERR_MAX + 1]).unwrap();
        let r = std::panic::catch_unwind(|| AtomicBucketArray::new(&geometry));
        assert!(r.is_err());
    }

    fn twin_pair(
        geometry: &LayerGeometry,
        seed: u64,
    ) -> (ConcurrentReliable<u64>, ReliableSketch<u64>) {
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * ATOMIC_BUCKET_BYTES,
            lambda: geometry.total_lambda().max(1),
            depth: Depth::Fixed(geometry.depth()),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            seed,
            ..Default::default()
        };
        let atomic = ConcurrentReliable::with_geometry(config.clone(), geometry.clone());
        let classic = ReliableSketch::with_geometry(config, geometry.clone());
        (atomic, classic)
    }

    #[test]
    fn single_thread_equals_classic_sketch() {
        let geometry = LayerGeometry::derive(2_000, 25, 2.0, 2.5, Depth::Auto, false);
        let (atomic, mut classic) = twin_pair(&geometry, 9);
        let items: Vec<(u64, u64)> = (0..40_000u64).map(|i| (i % 1_111, 1 + i % 3)).collect();
        for &(k, v) in &items {
            atomic.insert_concurrent(&k, v);
            classic.insert(&k, v);
        }
        for k in 0..1_111u64 {
            let a = atomic.query_with_error(&k);
            let c = rsk_api::ErrorSensing::query_with_error(&classic, &k);
            assert_eq!(
                (a.value, a.max_possible_error),
                (c.value, c.max_possible_error)
            );
        }
        assert_eq!(atomic.insertion_failures(), classic.insertion_failures());
    }

    #[test]
    fn insert_batch_equals_item_loop() {
        let geometry = LayerGeometry::derive(1_000, 25, 2.0, 2.5, Depth::Auto, false);
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * ATOMIC_BUCKET_BYTES,
            seed: 4,
            ..Default::default()
        };
        let batched = ConcurrentReliable::<u64>::with_geometry(config.clone(), geometry.clone());
        let looped = ConcurrentReliable::<u64>::with_geometry(config, geometry);
        let items: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 500, 1 + i % 7)).collect();
        batched.insert_batch(&items);
        for &(k, v) in &items {
            looped.insert_concurrent(&k, v);
        }
        for k in 0..500u64 {
            assert_eq!(batched.query_with_error(&k), looped.query_with_error(&k));
        }
        assert_eq!(
            batched.array().stats().items(),
            looped.array().stats().items()
        );
    }

    #[test]
    fn concurrent_inserts_keep_the_guarantee() {
        let sk = ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 256 * 1024,
            emergency: EmergencyPolicy::ExactTable,
            seed: 3,
            ..Default::default()
        });
        let n_threads = 8u64;
        let per_thread = 20_000u64;
        std::thread::scope(|s| {
            for t in 0..n_threads {
                let sk = &sk;
                s.spawn(move || {
                    for i in 0..per_thread {
                        sk.insert_concurrent(&((t * per_thread + i) % 2_000), 1);
                    }
                });
            }
        });
        let total = n_threads * per_thread;
        let mut recovered = 0u64;
        for k in 0..2_000u64 {
            let est = sk.query_with_error(&k);
            let truth = total / 2_000;
            assert!(est.value >= truth, "undershoot at {k}: {est:?}");
            assert!(est.max_possible_error <= 25, "MPE blew past Λ at {k}");
            assert!(est.contains(truth), "key {k}: {truth} ∉ {est:?}");
            recovered += est.value - est.max_possible_error.min(est.value);
        }
        assert!(recovered <= total, "lower bounds must not exceed the mass");
    }

    #[test]
    fn clear_resets_everything() {
        let mut sk = ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 16 * 1024,
            seed: 5,
            ..Default::default()
        });
        for i in 0..5_000u64 {
            sk.insert_concurrent(&(i % 100), 2);
        }
        Clear::clear(&mut sk);
        for k in 0..100u64 {
            assert_eq!(sk.query_with_error(&k).value, 0);
        }
        assert_eq!(sk.array().stats().items(), 0);
        assert_eq!(sk.insertion_failures(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Single-threaded, the atomic path is bit-for-bit the classic
        /// sketch (same geometry, seed and emergency policy) on arbitrary
        /// streams — fingerprint collisions aside, which the key range
        /// here makes vanishingly unlikely.
        #[test]
        fn prop_atomic_equals_classic(
            ops in proptest::collection::vec((0u64..300, 1u64..8), 1..1500),
            seed in 0u64..32,
        ) {
            let geometry = LayerGeometry::derive(256, 25, 2.0, 2.5, Depth::Fixed(5), false);
            let (atomic, mut classic) = twin_pair(&geometry, seed);
            for &(k, v) in &ops {
                atomic.insert_concurrent(&k, v);
                classic.insert(&k, v);
            }
            for k in 0..300u64 {
                let a = atomic.query_with_error(&k);
                let c = rsk_api::ErrorSensing::query_with_error(&classic, &k);
                prop_assert_eq!((a.value, a.max_possible_error), (c.value, c.max_possible_error), "key {}", k);
            }
        }

        /// The packed-word lock invariant: NO never exceeds λ after any
        /// step, and value is conserved (absorbed + leftover = inserted).
        #[test]
        fn prop_step_word_invariants(
            ops in proptest::collection::vec((0u64..6, 1u64..40), 1..200),
            lambda in 1u64..64,
        ) {
            let mut w = 0u64;
            for (fp, v) in ops {
                let (yes0, no0) = { let (_, y, n) = unpack(w); (y, n) };
                let (next, left, sat) = step_word(w, fp, v, lambda);
                let (_, yes1, no1) = unpack(next);
                prop_assert!(no1 <= lambda.max(no0), "NO {} above λ {}", no1, lambda);
                prop_assert!(yes1 >= no1 || no1 <= lambda);
                if !sat {
                    prop_assert_eq!(yes1 + no1 + left, yes0 + no0 + v, "value not conserved");
                }
                w = next;
            }
        }
    }
}
