//! Error-certified top-K heavy hitters over elephant promotion.
//!
//! A capacity-bounded StreamSummary (Metwally et al.'s Space-Saving
//! layout: a doubly-linked list of *count buckets*, each holding the
//! doubly-linked list of its entries) grafted onto ReliableSketch's mice
//! filter: a key is *offered* to the summary exactly when the filter
//! passes value through (elephant promotion) — or on every insert for
//! the raw, filter-less variants. The crucial twist over plain
//! Space-Saving is what an entry stores:
//!
//! * `count` is seeded from the sketch's own post-insert estimate
//!   `f̂(e)` — an upper bound on the key's true sum — and from then on
//!   tracks every passed value exactly, so it *stays* an upper bound;
//! * `error` is the sketch's certified per-key Maximum Possible Error at
//!   claim time, so `truth ∈ [count − error, count]` for every entry —
//!   error bars plain Space-Saving cannot produce.
//!
//! Monitored-key updates are O(1) for unit increments (the classic
//! bucket hop); weighted increments walk at most the count buckets they
//! cross. Admission and eviction are O(1) amortized: a newly promoted
//! elephant's seed estimate sits near the filter threshold, i.e. near
//! the bottom of the bucket list.
//!
//! ## The recall certificate
//!
//! [`TopKSummary::miss_bound`] is an upper bound on the true sum of any
//! key the summary does **not** track, maintained from three monotone
//! sources: the promotion threshold (an untracked key may have absorbed
//! at most that much in the filter), the minimum monitored count once
//! the summary is full (rejected and evicted keys were at or below it),
//! and a floor raised by [`TopKSummary::merge_from`] (absent-side
//! charges). Together with the (k+1)-th tracked count this yields
//! [`rsk_api::CertifiedTopK::guaranteed_floor`]: any key whose true sum
//! clears the floor is provably reported. `tests/topk_oracle.rs` races
//! this certificate against the exact oracle on zipf, churn and
//! adversarial streams.

use rsk_api::{CertifiedTopK, Estimate, Key, MergeError, TopKEntry};
use std::collections::HashMap;

/// Slab null pointer.
const NIL: usize = usize::MAX;

/// Model bytes per summary slot (key 8, count 8, error 4, links 4) —
/// what an entry costs in the paper-style accounting of
/// [`rsk_api::MemoryFootprint`].
pub const TOPK_ENTRY_BYTES: usize = 24;

/// One count bucket: all entries sharing `count`, in a doubly-linked
/// list of buckets ordered by ascending count.
#[derive(Debug, Clone)]
struct BucketNode {
    count: u64,
    /// First entry slot of this bucket's entry list.
    head: usize,
    /// Bucket with the next-lower count.
    prev: usize,
    /// Bucket with the next-higher count.
    next: usize,
}

/// One monitored key.
#[derive(Debug, Clone)]
struct EntryNode<K> {
    key: K,
    error: u64,
    bucket: usize,
    prev: usize,
    next: usize,
}

/// The count-bucket doubly-linked-list summary (see the module docs).
///
/// # Examples
///
/// ```
/// use rsk_core::topk::TopKSummary;
/// use rsk_api::Estimate;
///
/// let mut tk = TopKSummary::<u64>::new(2, 0);
/// tk.offer(&7, 10, || Estimate::exact(10));
/// tk.offer(&8, 3, || Estimate::exact(3));
/// tk.offer(&7, 5, || unreachable!("monitored keys never re-query"));
/// let ans = tk.certified_top_k(2);
/// assert_eq!(ans.entries[0].key, 7);
/// assert_eq!(ans.entries[0].count, 15);
/// assert!(ans.entries[0].contains(15));
/// ```
#[derive(Debug, Clone)]
pub struct TopKSummary<K: Key> {
    capacity: usize,
    /// Promotion threshold of the mice filter in front (0 when raw).
    threshold: u64,
    /// Monotone floor raised by merges (absent-side charges and
    /// truncation); 0 for a summary that only ever ingested.
    floor: u64,
    entries: Vec<EntryNode<K>>,
    free_entries: Vec<usize>,
    buckets: Vec<BucketNode>,
    free_buckets: Vec<usize>,
    /// Bucket with the smallest count (NIL when empty).
    lowest: usize,
    /// Bucket with the largest count (NIL when empty).
    highest: usize,
    index: HashMap<K, usize>,
}

impl<K: Key> TopKSummary<K> {
    /// An empty summary monitoring at most `capacity` keys (clamped to
    /// ≥ 1), promoted past `threshold` (the mice-filter saturation
    /// point; pass 0 for raw sketches that offer every insert).
    pub fn new(capacity: usize, threshold: u64) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            threshold,
            floor: 0,
            entries: Vec::with_capacity(capacity),
            free_entries: Vec::new(),
            buckets: Vec::with_capacity(capacity.min(64)),
            free_buckets: Vec::new(),
            lowest: NIL,
            highest: NIL,
            index: HashMap::with_capacity(capacity),
        }
    }

    /// Maximum number of monitored keys.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently monitored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Is nothing monitored yet?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Is every slot taken (evictions from here on)?
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Is `key` currently monitored?
    #[inline]
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Smallest monitored count (0 when empty).
    #[inline]
    pub fn min_count(&self) -> u64 {
        if self.lowest == NIL {
            0
        } else {
            self.buckets[self.lowest].count
        }
    }

    /// Certified upper bound on the true sum of any key **not** in the
    /// summary. Monotone nondecreasing over the summary's lifetime, so
    /// the certificate covers keys evicted or rejected at any point in
    /// the past.
    pub fn miss_bound(&self) -> u64 {
        let mut mb = self.floor.max(self.threshold);
        if self.is_full() {
            mb = mb.max(self.min_count());
        }
        mb
    }

    /// Offer `passed` units of a key that just cleared the promotion
    /// boundary. Monitored keys take the O(1) bucket hop; unmonitored
    /// keys are seeded from `estimate` — the sketch's *post-insert*
    /// certified estimate, whose `value` covers the key's full mass
    /// (filter residue included) and whose MPE becomes the entry's
    /// permanent error bar. `estimate` is only invoked on that claim
    /// path, never for already-monitored keys.
    pub fn offer<F>(&mut self, key: &K, passed: u64, estimate: F)
    where
        F: FnOnce() -> Estimate,
    {
        if let Some(&slot) = self.index.get(key) {
            self.increase(slot, passed);
            return;
        }
        let est = estimate();
        if !self.is_full() {
            self.admit(*key, est.value, est.max_possible_error);
        } else if est.value > self.min_count() {
            self.evict_min();
            self.admit(*key, est.value, est.max_possible_error);
        }
        // else: rejected — truth ≤ est.value ≤ min_count ≤ miss_bound()
    }

    /// The certified top-`k` answer (entries by count descending; ties
    /// in deterministic claim order).
    pub fn certified_top_k(&self, k: usize) -> CertifiedTopK<K> {
        let mut entries = Vec::with_capacity(k.min(self.len()));
        let mut next_count = 0u64;
        let mut b = self.highest;
        'outer: while b != NIL {
            let count = self.buckets[b].count;
            let mut e = self.buckets[b].head;
            while e != NIL {
                if entries.len() == k {
                    next_count = count;
                    break 'outer;
                }
                entries.push(TopKEntry {
                    key: self.entries[e].key,
                    count,
                    error: self.entries[e].error,
                });
                e = self.entries[e].next;
            }
            b = self.buckets[b].prev;
        }
        CertifiedTopK {
            entries,
            miss_bound: self.miss_bound(),
            next_count,
        }
    }

    /// Every monitored entry, count descending (= the full-capacity
    /// answer's entry list).
    pub fn entries_desc(&self) -> Vec<TopKEntry<K>> {
        self.certified_top_k(self.len()).entries
    }

    /// Union-merge (Agarwal et al.'s mergeable-summaries rule): keys on
    /// either side keep the sum of both sides' certified fields, a key
    /// absent from one side is charged that side's miss bound on *both*
    /// `count` and `error` (its mass there is unknown but bounded), the
    /// result is truncated back to capacity, and the floor rises to
    /// cover both the summed miss bounds and anything truncated away —
    /// so the merged certificate stays sound.
    ///
    /// # Errors
    /// [`MergeError::Incompatible`] when the capacities differ.
    pub fn merge_from(&mut self, other: &TopKSummary<K>) -> Result<(), MergeError> {
        if self.capacity != other.capacity {
            return Err(MergeError::Incompatible(format!(
                "top-K capacity mismatch ({} vs {})",
                self.capacity, other.capacity
            )));
        }
        let mb_self = self.miss_bound();
        let mb_other = other.miss_bound();
        let mut from_other: HashMap<K, (u64, u64)> = other
            .entries_desc()
            .iter()
            .map(|e| (e.key, (e.count, e.error)))
            .collect();
        let mut merged: Vec<(K, u64, u64)> = Vec::with_capacity(self.len() + other.len());
        for e in self.entries_desc() {
            match from_other.remove(&e.key) {
                Some((c, err)) => {
                    merged.push((
                        e.key,
                        e.count.saturating_add(c),
                        e.error.saturating_add(err),
                    ));
                }
                None => merged.push((
                    e.key,
                    e.count.saturating_add(mb_other),
                    e.error.saturating_add(mb_other),
                )),
            }
        }
        for e in other.entries_desc() {
            if let Some((c, err)) = from_other.remove(&e.key) {
                merged.push((
                    e.key,
                    c.saturating_add(mb_self),
                    err.saturating_add(mb_self),
                ));
            }
        }
        merged.sort_by_key(|&(_, c, _)| core::cmp::Reverse(c));
        let mut floor = self
            .floor
            .max(other.floor)
            .max(mb_self.saturating_add(mb_other));
        if merged.len() > self.capacity {
            // truncated entries' counts upper-bound their truths
            floor = floor.max(merged[self.capacity].1);
            merged.truncate(self.capacity);
        }
        let threshold = self.threshold.max(other.threshold);
        self.reset_slabs();
        self.threshold = threshold;
        self.floor = floor;
        // ascending pushes keep the rebuild O(n): each key lands at the
        // top of the bucket list
        for &(key, count, error) in merged.iter().rev() {
            self.push_highest(key, count, error);
        }
        Ok(())
    }

    /// Forget everything (capacity and threshold survive).
    pub fn clear(&mut self) {
        self.reset_slabs();
        self.floor = 0;
    }

    /// Model memory footprint: every slot costs [`TOPK_ENTRY_BYTES`].
    pub fn memory_bytes(&self) -> usize {
        self.capacity * TOPK_ENTRY_BYTES
    }

    // ---- internal slab plumbing ----

    fn reset_slabs(&mut self) {
        self.entries.clear();
        self.free_entries.clear();
        self.buckets.clear();
        self.free_buckets.clear();
        self.lowest = NIL;
        self.highest = NIL;
        self.index.clear();
    }

    fn alloc_entry(&mut self, node: EntryNode<K>) -> usize {
        match self.free_entries.pop() {
            Some(slot) => {
                self.entries[slot] = node;
                slot
            }
            None => {
                self.entries.push(node);
                self.entries.len() - 1
            }
        }
    }

    fn alloc_bucket(&mut self, node: BucketNode) -> usize {
        match self.free_buckets.pop() {
            Some(slot) => {
                self.buckets[slot] = node;
                slot
            }
            None => {
                self.buckets.push(node);
                self.buckets.len() - 1
            }
        }
    }

    /// Link a fresh bucket holding `count` directly after bucket `prev`
    /// (NIL = becomes the new lowest).
    fn insert_bucket_after(&mut self, prev: usize, count: u64) -> usize {
        let next = if prev == NIL {
            self.lowest
        } else {
            self.buckets[prev].next
        };
        let b = self.alloc_bucket(BucketNode {
            count,
            head: NIL,
            prev,
            next,
        });
        if prev == NIL {
            self.lowest = b;
        } else {
            self.buckets[prev].next = b;
        }
        if next == NIL {
            self.highest = b;
        } else {
            self.buckets[next].prev = b;
        }
        b
    }

    /// Unlink and free bucket `b` if no entry lives in it.
    fn remove_bucket_if_empty(&mut self, b: usize) {
        if self.buckets[b].head != NIL {
            return;
        }
        let (prev, next) = (self.buckets[b].prev, self.buckets[b].next);
        if prev == NIL {
            self.lowest = next;
        } else {
            self.buckets[prev].next = next;
        }
        if next == NIL {
            self.highest = prev;
        } else {
            self.buckets[next].prev = prev;
        }
        self.free_buckets.push(b);
    }

    /// Unlink entry `slot` from its bucket's entry list (the bucket node
    /// itself is left in place — callers decide its fate).
    fn detach_entry(&mut self, slot: usize) {
        let (b, prev, next) = {
            let e = &self.entries[slot];
            (e.bucket, e.prev, e.next)
        };
        if prev == NIL {
            self.buckets[b].head = next;
        } else {
            self.entries[prev].next = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        }
    }

    /// Push entry `slot` at the front of bucket `b`'s entry list.
    fn attach_entry(&mut self, slot: usize, b: usize) {
        let head = self.buckets[b].head;
        self.entries[slot].bucket = b;
        self.entries[slot].prev = NIL;
        self.entries[slot].next = head;
        if head != NIL {
            self.entries[head].prev = slot;
        }
        self.buckets[b].head = slot;
    }

    /// Find (or create) the bucket for `count`, walking upward from the
    /// bucket after `from` (`from` = NIL starts at the lowest bucket).
    fn bucket_for(&mut self, from: usize, count: u64) -> usize {
        let mut prev = from;
        let mut cur = if from == NIL {
            self.lowest
        } else {
            self.buckets[from].next
        };
        while cur != NIL && self.buckets[cur].count < count {
            prev = cur;
            cur = self.buckets[cur].next;
        }
        if cur != NIL && self.buckets[cur].count == count {
            cur
        } else {
            self.insert_bucket_after(prev, count)
        }
    }

    /// Move monitored entry `slot` up by `v` (the Space-Saving bucket
    /// hop; O(1) for unit increments).
    fn increase(&mut self, slot: usize, v: u64) {
        if v == 0 {
            return;
        }
        let old_bucket = self.entries[slot].bucket;
        let new_count = self.buckets[old_bucket].count.saturating_add(v);
        self.detach_entry(slot);
        let target = self.bucket_for(old_bucket, new_count);
        self.attach_entry(slot, target);
        self.remove_bucket_if_empty(old_bucket);
    }

    /// Claim a slot for `key` with a seeded certified pair.
    fn admit(&mut self, key: K, count: u64, error: u64) {
        debug_assert!(self.len() < self.capacity);
        let slot = self.alloc_entry(EntryNode {
            key,
            error,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        let b = self.bucket_for(NIL, count);
        self.attach_entry(slot, b);
        self.index.insert(key, slot);
    }

    /// Drop one entry from the lowest bucket (deterministically its
    /// most recently attached entry).
    fn evict_min(&mut self) {
        let b = self.lowest;
        debug_assert!(b != NIL);
        let slot = self.buckets[b].head;
        self.detach_entry(slot);
        self.index.remove(&self.entries[slot].key);
        self.free_entries.push(slot);
        self.remove_bucket_if_empty(b);
    }

    /// Append a key at the top of the bucket list (rebuild path only —
    /// requires `count` ≥ every monitored count).
    fn push_highest(&mut self, key: K, count: u64, error: u64) {
        debug_assert!(self.highest == NIL || count >= self.buckets[self.highest].count);
        let b = if self.highest != NIL && self.buckets[self.highest].count == count {
            self.highest
        } else {
            self.insert_bucket_after(self.highest, count)
        };
        let slot = self.alloc_entry(EntryNode {
            key,
            error,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        self.attach_entry(slot, b);
        self.index.insert(key, slot);
    }

    /// Structural integrity check used by the property tests: bucket
    /// counts strictly ascend, links are mutually consistent, the index
    /// maps exactly the linked entries.
    #[cfg(test)]
    fn validate(&self) {
        let mut seen = 0usize;
        let mut b = self.lowest;
        let mut prev_b = NIL;
        let mut prev_count = None::<u64>;
        while b != NIL {
            let bucket = &self.buckets[b];
            assert_eq!(bucket.prev, prev_b, "bucket back-link broken");
            if let Some(pc) = prev_count {
                assert!(pc < bucket.count, "bucket counts must strictly ascend");
            }
            assert!(bucket.head != NIL, "empty bucket left in the list");
            let mut e = bucket.head;
            let mut prev_e = NIL;
            while e != NIL {
                let entry = &self.entries[e];
                assert_eq!(entry.bucket, b, "entry bucket back-ref broken");
                assert_eq!(entry.prev, prev_e, "entry back-link broken");
                assert_eq!(self.index.get(&entry.key), Some(&e), "index out of sync");
                seen += 1;
                prev_e = e;
                e = entry.next;
            }
            prev_count = Some(bucket.count);
            prev_b = b;
            b = bucket.next;
        }
        assert_eq!(self.highest, prev_b, "highest pointer stale");
        assert_eq!(seen, self.index.len(), "index size != linked entries");
        assert!(seen <= self.capacity, "over capacity");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drive a summary with *exact* estimates (a perfect sketch): counts
    /// must then equal the truth for monitored keys.
    fn exact_drive(ops: &[(u64, u64)], capacity: usize) -> (TopKSummary<u64>, HashMap<u64, u64>) {
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut tk = TopKSummary::<u64>::new(capacity, 0);
        for &(k, v) in ops {
            let t = truth.entry(k).or_insert(0);
            *t += v;
            let now = *t;
            tk.offer(&k, v, || Estimate::exact(now));
        }
        (tk, truth)
    }

    #[test]
    fn monitored_counts_track_exactly() {
        let ops: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 7, 1 + i % 3)).collect();
        let (tk, truth) = exact_drive(&ops, 16);
        assert_eq!(tk.len(), 7);
        for e in tk.entries_desc() {
            assert_eq!(e.count, truth[&e.key], "key {}", e.key);
            assert_eq!(e.error, 0);
        }
    }

    #[test]
    fn entries_sorted_descending_with_next_count() {
        let ops: Vec<(u64, u64)> = (0..40u64).flat_map(|k| vec![(k, k + 1); 1]).collect();
        let (tk, _) = exact_drive(&ops, 32);
        let ans = tk.certified_top_k(5);
        assert_eq!(ans.entries.len(), 5);
        for w in ans.entries.windows(2) {
            assert!(w[0].count >= w[1].count);
        }
        // keys 8..40 monitored (32 slots), top-5 are 35..40 with counts 36..41
        assert_eq!(ans.entries[0].count, 40);
        assert_eq!(ans.next_count, 35);
    }

    #[test]
    fn eviction_prefers_min_and_miss_bound_is_monotone() {
        let mut tk = TopKSummary::<u64>::new(4, 2);
        let mut last_mb = tk.miss_bound();
        assert_eq!(last_mb, 2, "threshold floors the miss bound");
        for k in 0..32u64 {
            let est = Estimate {
                value: 3 + k,
                max_possible_error: 2,
            };
            tk.offer(&k, 1, || est);
            let mb = tk.miss_bound();
            assert!(mb >= last_mb, "miss bound regressed: {last_mb} -> {mb}");
            last_mb = mb;
            tk.validate();
        }
        assert_eq!(tk.len(), 4);
        // the four largest seeds survive
        let keys: Vec<u64> = tk.entries_desc().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![31, 30, 29, 28]);
    }

    #[test]
    fn rejected_keys_stay_under_miss_bound() {
        let mut tk = TopKSummary::<u64>::new(2, 0);
        tk.offer(&1, 100, || Estimate::exact(100));
        tk.offer(&2, 90, || Estimate::exact(90));
        // summary full at min 90: a key worth 50 is rejected…
        tk.offer(&3, 50, || Estimate::exact(50));
        assert!(!tk.contains(&3));
        assert!(tk.miss_bound() >= 50);
        // …and a key worth 95 evicts the 90
        tk.offer(&4, 95, || Estimate::exact(95));
        assert!(tk.contains(&4) && !tk.contains(&2));
        assert_eq!(tk.miss_bound(), 95);
    }

    #[test]
    fn merge_unions_and_charges_absent_side() {
        let mut a = TopKSummary::<u64>::new(4, 0);
        let mut b = TopKSummary::<u64>::new(4, 0);
        a.offer(&1, 100, || Estimate::exact(100));
        a.offer(&2, 50, || Estimate::exact(50));
        b.offer(&1, 40, || Estimate::exact(40));
        b.offer(&3, 70, || Estimate::exact(70));
        let (mb_a, mb_b) = (a.miss_bound(), b.miss_bound());
        assert_eq!((mb_a, mb_b), (0, 0), "neither side is full");
        a.merge_from(&b).unwrap();
        let by_key: HashMap<u64, TopKEntry<u64>> =
            a.entries_desc().into_iter().map(|e| (e.key, e)).collect();
        assert_eq!(by_key[&1].count, 140);
        assert_eq!(by_key[&2].count, 50);
        assert_eq!(by_key[&3].count, 70);
        // with empty-side miss bounds of zero the union is exact
        assert_eq!(by_key[&1].error, 0);
        assert_eq!(a.miss_bound(), 0);
    }

    #[test]
    fn merge_truncation_raises_the_floor() {
        let mut a = TopKSummary::<u64>::new(2, 0);
        let mut b = TopKSummary::<u64>::new(2, 0);
        a.offer(&1, 100, || Estimate::exact(100));
        a.offer(&2, 60, || Estimate::exact(60));
        b.offer(&3, 80, || Estimate::exact(80));
        b.offer(&4, 10, || Estimate::exact(10));
        let charged = a.miss_bound() + b.miss_bound(); // 60 + 10
        a.merge_from(&b).unwrap();
        // union {1:100+10, 3:80+60, 2:60+10, 4:10+60} keeps {110, 140}… sorted:
        // 3 at 140, 1 at 110; dropped max count is 2 at 70
        let keys: Vec<u64> = a.entries_desc().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 1]);
        assert!(a.miss_bound() >= charged.max(70));
    }

    #[test]
    fn merge_capacity_mismatch_refused() {
        let mut a = TopKSummary::<u64>::new(2, 0);
        let b = TopKSummary::<u64>::new(4, 0);
        assert!(matches!(a.merge_from(&b), Err(MergeError::Incompatible(_))));
    }

    #[test]
    fn clear_resets_but_keeps_shape() {
        let ops: Vec<(u64, u64)> = (0..100u64).map(|i| (i % 11, 1)).collect();
        let (mut tk, _) = exact_drive(&ops, 8);
        tk.clear();
        assert!(tk.is_empty());
        assert_eq!(tk.capacity(), 8);
        assert_eq!(tk.miss_bound(), 0);
        tk.validate();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Structural integrity and certificate soundness under
        /// arbitrary exact-estimate op streams: every monitored count
        /// equals the truth, every unmonitored truth is ≤ miss_bound,
        /// and the linked structure stays consistent.
        #[test]
        fn prop_exact_offers_certify(
            ops in proptest::collection::vec((0u64..60, 1u64..9), 1..400),
            capacity in 1usize..24,
        ) {
            let (tk, truth) = exact_drive(&ops, capacity);
            tk.validate();
            let mb = tk.miss_bound();
            let monitored: HashMap<u64, u64> = tk
                .entries_desc()
                .into_iter()
                .map(|e| (e.key, e.count))
                .collect();
            for (&k, &t) in &truth {
                match monitored.get(&k) {
                    Some(&c) => prop_assert!(c >= t, "count {} under truth {} for {}", c, t, k),
                    None => prop_assert!(t <= mb, "missed key {} truth {} > miss bound {}", k, t, mb),
                }
            }
            // the recall certificate never lies: keys above the floor
            // are all reported
            let ans = tk.certified_top_k(capacity.min(5));
            let floor = ans.guaranteed_floor();
            let reported: Vec<u64> = ans.entries.iter().map(|e| e.key).collect();
            for (&k, &t) in &truth {
                if t > floor {
                    prop_assert!(reported.contains(&k),
                        "truth {} clears floor {} but key {} unreported", t, floor, k);
                }
            }
        }

        /// Merged certificates stay sound: counts upper-bound combined
        /// truths within their error bars, absent keys stay under the
        /// merged miss bound.
        #[test]
        fn prop_merge_certifies(
            ops_a in proptest::collection::vec((0u64..30, 1u64..9), 1..200),
            ops_b in proptest::collection::vec((0u64..30, 1u64..9), 1..200),
            capacity in 1usize..12,
        ) {
            let (mut a, truth_a) = exact_drive(&ops_a, capacity);
            let (b, truth_b) = exact_drive(&ops_b, capacity);
            a.merge_from(&b).unwrap();
            a.validate();
            let mut truth = truth_a;
            for (k, v) in truth_b {
                *truth.entry(k).or_insert(0) += v;
            }
            let mb = a.miss_bound();
            let monitored: HashMap<u64, TopKEntry<u64>> =
                a.entries_desc().into_iter().map(|e| (e.key, e)).collect();
            for (&k, &t) in &truth {
                match monitored.get(&k) {
                    Some(e) => prop_assert!(e.contains(t) || e.count >= t,
                        "merged entry {:?} lost truth {}", e, t),
                    None => prop_assert!(t <= mb,
                        "merged miss bound {} lost key {} truth {}", mb, k, t),
                }
            }
        }
    }
}
