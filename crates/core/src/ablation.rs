//! Schedule ablations — empirical backing for the paper's §3.2 claim
//! that *"modifying either parameter to follow an arithmetic sequence
//! would thoroughly undermine the complexity"* of ReliableSketch.
//!
//! Three alternative schedules are provided, each runnable through the
//! unchanged sketch machinery via
//! [`ReliableSketch::with_geometry`](crate::ReliableSketch::with_geometry):
//!
//! * [`uniform_schedule`] — `d` equal-width layers with equal thresholds
//!   `λ_i = Λ/d` (both sequences arithmetic — the fully degenerate case);
//! * [`arithmetic_width_schedule`] — widths decay linearly, thresholds
//!   keep the paper's geometric decay (isolates the width sequence);
//! * [`single_layer_schedule`] — one giant layer holding the whole error
//!   budget: an array of Error-Sensible buckets with no control at all
//!   (what Key Technique I gives you *without* Key Technique II).
//!
//! The module tests compare insertion failures at equal memory: the
//! geometric schedule strictly dominates, which is the observable form of
//! the double-exponential survival bound.

use crate::config::Depth;
use crate::geometry::LayerGeometry;

/// Equal widths, equal thresholds (`λ_i = ⌊Λ/d⌋`, remainder to layer 1).
pub fn uniform_schedule(total_buckets: usize, lambda: u64, depth: usize) -> LayerGeometry {
    assert!(depth > 0 && total_buckets >= depth);
    let base_w = total_buckets / depth;
    let mut widths = vec![base_w; depth];
    widths[0] += total_buckets - base_w * depth;
    let base_l = lambda / depth as u64;
    let mut lambdas = vec![base_l; depth];
    lambdas[0] += lambda - base_l * depth as u64;
    LayerGeometry::custom(widths, lambdas).expect("uniform schedule is well-formed")
}

/// Linearly decaying widths (`w_i ∝ d + 1 − i`), geometric thresholds.
pub fn arithmetic_width_schedule(
    total_buckets: usize,
    lambda: u64,
    r_lambda: f64,
    depth: usize,
) -> LayerGeometry {
    assert!(depth > 0 && total_buckets >= depth * (depth + 1) / 2);
    let weight_sum = depth * (depth + 1) / 2;
    let widths: Vec<usize> = (0..depth)
        .map(|i| (total_buckets * (depth - i) / weight_sum).max(1))
        .collect();
    // thresholds: keep the paper's geometric sequence
    let reference = LayerGeometry::derive(
        total_buckets,
        lambda,
        2.0,
        r_lambda,
        Depth::Fixed(depth),
        false,
    );
    LayerGeometry::custom(widths, reference.lambdas().to_vec())
        .expect("arithmetic width schedule is well-formed")
}

/// A single undivided layer with the entire error budget.
pub fn single_layer_schedule(total_buckets: usize, lambda: u64) -> LayerGeometry {
    LayerGeometry::custom(vec![total_buckets.max(1)], vec![lambda])
        .expect("single layer is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EmergencyPolicy, ReliableConfig};
    use crate::sketch::ReliableSketch;
    use rsk_api::StreamSummary;
    use rsk_hash::splitmix64;
    use rsk_stream::zipf::ZipfSampler;

    /// Overloaded regime where schedules differ sharply: 150 K items of a
    /// Zipf(8 000, 1.0) stream into 3 000 buckets, Λ = 25, d = 8.
    const BUCKETS: usize = 3_000;
    const ITEMS: usize = 150_000;

    fn failures(geometry: LayerGeometry, seed: u64) -> u64 {
        // identical configs except the schedule; mice filter off so the
        // comparison isolates the layer geometry
        let config = ReliableConfig {
            memory_bytes: geometry.total_buckets() * crate::config::BUCKET_BYTES,
            lambda: 25,
            mice_filter: None,
            emergency: EmergencyPolicy::Disabled,
            seed,
            ..Default::default()
        };
        let mut sk: ReliableSketch<u64> = ReliableSketch::with_geometry(config, geometry);
        let mut zipf = ZipfSampler::new(8_000, 1.0, seed ^ 9);
        for _ in 0..ITEMS {
            sk.insert(&splitmix64(zipf.sample()), 1);
        }
        sk.insertion_failures()
    }

    fn total_failures(geometry: &LayerGeometry) -> u64 {
        (0..3u64).map(|s| failures(geometry.clone(), s)).sum()
    }

    #[test]
    fn geometric_beats_uniform_on_failures() {
        let geo = LayerGeometry::derive(BUCKETS, 25, 2.0, 2.5, Depth::Fixed(8), false);
        let uni = uniform_schedule(BUCKETS, 25, 8);
        let (g, u) = (total_failures(&geo), total_failures(&uni));
        assert!(g * 2 < u, "geometric {g} failures vs uniform {u}");
    }

    #[test]
    fn geometric_beats_arithmetic_widths() {
        let geo = LayerGeometry::derive(BUCKETS, 25, 2.0, 2.5, Depth::Fixed(8), false);
        let ari = arithmetic_width_schedule(BUCKETS, 25, 2.5, 8);
        let (g, a) = (total_failures(&geo), total_failures(&ari));
        assert!(g * 2 < a, "geometric {g} failures vs arithmetic-width {a}");
    }

    #[test]
    fn single_layer_fails_hard() {
        let geo = LayerGeometry::derive(BUCKETS, 25, 2.0, 2.5, Depth::Fixed(8), false);
        let single = single_layer_schedule(BUCKETS, 25);
        let (g, s) = (total_failures(&geo), total_failures(&single));
        assert!(g < s, "layered {g} failures vs single-layer {s}");
    }

    #[test]
    fn schedules_are_well_formed() {
        let u = uniform_schedule(1_000, 25, 8);
        assert_eq!(u.total_buckets(), 1_000);
        assert_eq!(u.total_lambda(), 25);
        let a = arithmetic_width_schedule(1_000, 25, 2.5, 8);
        assert!(a.total_buckets() <= 1_000);
        assert!(a.total_lambda() <= 25);
        let s = single_layer_schedule(64, 25);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn custom_rejects_malformed() {
        assert!(LayerGeometry::custom(vec![], vec![]).is_err());
        assert!(LayerGeometry::custom(vec![1, 2], vec![1]).is_err());
        assert!(LayerGeometry::custom(vec![0], vec![1]).is_err());
    }
}
