//! The vectorized single-core ingest machinery behind the `simd` feature.
//!
//! Everything the batched insert paths ([`crate::ReliableSketch::insert_batch`],
//! [`crate::atomic::ConcurrentReliable::insert_batch`] and the flavours
//! built on them) share lives here: multi-lane hashing of the batch
//! prefix, the packed-bucket-word prescan, the software-prefetch hints
//! and the branchless form of the atomic layer step.
//!
//! ## Dispatch rule
//!
//! The feature flag never forks the *callers* — they always go through
//! this module, and each helper internally selects the ×4 lane kernel or
//! the scalar loop on [`ENABLED`] (a `cfg!` constant, so the dead branch
//! folds away). The scalar branch **is** the fallback CI pins: with the
//! feature off, `insert_batch` still routes through `layer0_indexes` /
//! `layer0_prefix`, which then run the very loop the pre-SIMD code ran.
//!
//! ## The bit-identity contract
//!
//! Every helper is exactly equivalent to its scalar counterpart:
//!
//! * lane hashing — same MurmurHash3 arithmetic per lane
//!   ([`rsk_hash::lanes`] pins this against the scalar functions);
//! * the prescan (`fp_match_x4`) is only a *hint*: a hit lane retries
//!   its conclusion under CAS ([`crate::atomic::AtomicBucketArray`]'s
//!   absorb fast path re-checks the fingerprint on the freshly loaded
//!   word and falls back to the full Algorithm-1 walk on mismatch);
//! * `step_word_branchless` computes the same three-branch transition
//!   as `step_word` with masks instead of jumps (property-tested
//!   equal below);
//! * prefetch hints read memory but never change it.
//!
//! Items are always *applied* in stream order, so saturation events,
//! replacement elections and emergency records happen in the same order
//! as the item loop. `tests/simd_parity.rs` (workspace root) pins the
//! whole stack differentially against the scalar oracle in both feature
//! configurations.
//!
//! ## Lane layout and prefetch distance
//!
//! Batches are processed in 64-item chunks (one stack-resident index /
//! fingerprint array each, no allocation). Within a chunk, hashing runs
//! 4 lanes wide (`LANES` = one 128-bit vector of `u32` digests), and
//! bucket words are touched [`PREFETCH_DISTANCE`] items ahead of the
//! apply loop — far enough to cover a DRAM round trip at ingest speed,
//! near enough that 8 · 8-byte words sit comfortably in L1 alongside
//! the chunk arrays. A "prefetch" is a relaxed atomic load discarded
//! through [`core::hint::black_box`]: the portable, `unsafe`-free way to
//! pull the line into cache (the crate forbids `unsafe`, which rules out
//! `core::arch` prefetch intrinsics).

use crate::atomic::{pack, step_word, unpack, COUNT_MAX};
use rsk_api::Key;
use rsk_hash::{HashFamily, U64x4};

/// Hash lanes evaluated per step of the batch-prefix loop.
pub const LANES: usize = rsk_hash::LANES;

/// Whether the vectorized path is compiled in (`--features simd`).
///
/// With the feature off every helper in this module takes its scalar
/// branch — the exact code path the pre-SIMD implementation ran, which
/// CI tests in both configurations.
pub const ENABLED: bool = cfg!(feature = "simd");

/// How many items ahead of the apply loop bucket lines are prefetched.
pub const PREFETCH_DISTANCE: usize = 8;

/// Human-readable name of the active ingest backend (diagnostics,
/// benches and the throughput figure label their lanes with this).
pub fn backend() -> &'static str {
    if ENABLED {
        "lanes-x4"
    } else {
        "scalar"
    }
}

/// Fill `idx` with the layer-0 bucket index of every key in `items`.
///
/// Feature on: four [`HashFamily::index_x4`] lanes at a time with a
/// scalar tail; feature off: the scalar loop. Both produce identical
/// indexes for identical inputs.
#[inline]
pub(crate) fn layer0_indexes<K: Key>(
    hashes: &HashFamily,
    items: &[(K, u64)],
    width: usize,
    idx: &mut [usize],
) {
    debug_assert_eq!(items.len(), idx.len());
    let mut s = 0;
    if ENABLED {
        while s + LANES <= items.len() {
            let keys = [items[s].0, items[s + 1].0, items[s + 2].0, items[s + 3].0];
            idx[s..s + LANES].copy_from_slice(&hashes.index_x4(0, &keys, width));
            s += LANES;
        }
    }
    for (slot, (k, _)) in idx[s..].iter_mut().zip(&items[s..]) {
        *slot = hashes.index(0, k, width);
    }
}

/// Fill `idx` and `fps` with the layer-0 index *and* the 24-bit bucket
/// fingerprint of every key in `items` (the atomic flavours' prefix).
///
/// The fingerprint digest (`hash32(fp_seed) & FP_MASK`) rides the same
/// ×4 kernels as the index digest, so the whole prefix of a chunk is two
/// lane-hash sweeps instead of 2 · n scalar calls.
#[inline]
pub(crate) fn layer0_prefix<K: Key>(
    hashes: &HashFamily,
    fp_seed: u32,
    fp_mask: u64,
    width: usize,
    items: &[(K, u64)],
    idx: &mut [usize],
    fps: &mut [u64],
) {
    debug_assert_eq!(items.len(), idx.len());
    debug_assert_eq!(items.len(), fps.len());
    let mut s = 0;
    if ENABLED {
        while s + LANES <= items.len() {
            let keys = [items[s].0, items[s + 1].0, items[s + 2].0, items[s + 3].0];
            idx[s..s + LANES].copy_from_slice(&hashes.index_x4(0, &keys, width));
            let digests = K::hash32_x4(&keys, fp_seed);
            for (slot, d) in fps[s..s + LANES].iter_mut().zip(digests) {
                *slot = d as u64 & fp_mask;
            }
            s += LANES;
        }
    }
    for (i, (k, _)) in items.iter().enumerate().skip(s) {
        idx[i] = hashes.index(0, k, width);
        fps[i] = k.hash32(fp_seed) as u64 & fp_mask;
    }
}

/// Compare the fingerprint field of four packed bucket words against
/// four candidate fingerprints at once (`u64x4`-style: shift all lanes,
/// then one lane-wise equality). `shift` is the bit offset of the
/// fingerprint field within the packed word.
///
/// The result is a *hint* for the absorb fast path; staleness is safe
/// because the CAS that commits an absorb re-checks the fingerprint.
#[inline]
pub(crate) fn fp_match_x4(words: [u64; LANES], fps: [u64; LANES], shift: u32) -> [bool; LANES] {
    U64x4(words).lsr(shift).eq_mask(U64x4(fps))
}

/// [`step_word`] with the three Algorithm-1 branches folded into
/// lane-select masks — no data-dependent jumps, which keeps the CAS
/// retry loop's speculation window clean on mispredict-heavy adversarial
/// streams. Used by the atomic flavours when [`ENABLED`]; proven
/// bit-equal to `step_word` by the property test below.
#[inline]
pub(crate) fn step_word_branchless(
    word: u64,
    fp: u64,
    value: u64,
    lambda: u64,
) -> (u64, u64, bool) {
    #[inline]
    fn mask(cond: bool) -> u64 {
        (cond as u64).wrapping_neg()
    }

    let (bfp, yes, no) = unpack(word);
    let votes = no.saturating_add(value);
    let raised = yes.saturating_add(value);
    let room = lambda.saturating_sub(no);

    // branch priority mirrors step_word: match > lock > replace > vote
    let m_match = mask(bfp == fp);
    let m_lock = mask(votes > lambda && yes > lambda) & !m_match;
    let m_repl = mask(votes >= yes) & !m_match & !m_lock;
    let m_vote = !(m_match | m_lock | m_repl);

    let nfp = (m_repl & fp) | (!m_repl & bfp); // match lanes: bfp == fp anyway
    let nyes = (m_match & raised.min(COUNT_MAX))
        | (m_lock & yes)
        | (m_repl & votes.min(COUNT_MAX))
        | (m_vote & yes);
    let nno = (m_match & no) | (m_lock & (no + room)) | (m_repl & yes) | (m_vote & votes);
    // in a lock lane `value > room` (votes exceeded λ), so the wrap never
    // fires where the mask keeps it
    let leftover = m_lock & value.wrapping_sub(room);
    let saturated = (m_match & mask(raised > COUNT_MAX)) | (m_repl & mask(votes > COUNT_MAX)) != 0;
    (pack(nfp, nyes, nno), leftover, saturated)
}

/// The layer-step transition the CAS loop applies: branchless when the
/// feature is on, the branchy original otherwise. Both compute the same
/// function; the scalar form stays the CI-pinned reference.
#[inline]
pub(crate) fn dispatch_step(word: u64, fp: u64, value: u64, lambda: u64) -> (u64, u64, bool) {
    if ENABLED {
        step_word_branchless(word, fp, value, lambda)
    } else {
        step_word(word, fp, value, lambda)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{ERR_MAX, FP_MASK};
    use proptest::prelude::*;
    use rsk_api::HashKey;

    #[test]
    fn backend_reflects_feature() {
        assert_eq!(ENABLED, cfg!(feature = "simd"));
        assert_eq!(backend(), if ENABLED { "lanes-x4" } else { "scalar" });
    }

    #[test]
    fn fp_match_x4_is_lanewise_equality() {
        let shift = 40;
        let words = [1u64 << shift, 2 << shift, (3 << shift) | 77, 4 << shift];
        assert_eq!(
            fp_match_x4(words, [1, 9, 3, 9], shift),
            [true, false, true, false]
        );
    }

    #[test]
    fn layer0_helpers_match_scalar_loops() {
        let hashes = HashFamily::new(4, 99);
        let fp_seed = 0x1357_9bdf;
        let items: Vec<(u64, u64)> = (0..131u64).map(|i| (i.wrapping_mul(0x9e37), i)).collect();
        for width in [1usize, 7, 1024] {
            let mut idx = vec![0usize; items.len()];
            layer0_indexes(&hashes, &items, width, &mut idx);
            let mut idx2 = vec![0usize; items.len()];
            let mut fps = vec![0u64; items.len()];
            layer0_prefix(
                &hashes, fp_seed, FP_MASK, width, &items, &mut idx2, &mut fps,
            );
            for (i, (k, _)) in items.iter().enumerate() {
                assert_eq!(idx[i], hashes.index(0, k, width));
                assert_eq!(idx2[i], idx[i]);
                assert_eq!(fps[i], k.hash32(fp_seed) as u64 & FP_MASK);
            }
        }
    }

    proptest! {
        /// The branchless step is the same function as the branchy step,
        /// over the full domain the packed word can reach (including the
        /// post-merge `NO > λ` states and values far beyond the counters).
        #[test]
        fn prop_branchless_step_equals_step_word(
            bfp in 0..FP_MASK + 1,
            yes in 0..COUNT_MAX + 1,
            no in 0..ERR_MAX + 1,
            fp in 0..FP_MASK + 1,
            value in any::<u64>(),
            lambda in 0..ERR_MAX + 1,
        ) {
            let word = pack(bfp, yes, no);
            prop_assert_eq!(
                step_word_branchless(word, fp, value, lambda),
                step_word(word, fp, value, lambda)
            );
        }

        /// Same equality on the near-diagonal states (fp collisions and
        /// counter ties) where branch-priority mistakes would hide.
        #[test]
        fn prop_branchless_step_on_tied_counters(
            c in 0..ERR_MAX + 1,
            delta in 0u64..3,
            value in 0u64..200,
            lambda in 1..ERR_MAX + 1,
            collide in proptest::bool::ANY,
        ) {
            let fp = 0xabcd;
            let bfp = if collide { fp } else { fp ^ 1 };
            let word = pack(bfp, c.saturating_add(delta).min(COUNT_MAX), c);
            prop_assert_eq!(
                step_word_branchless(word, fp, value, lambda),
                step_word(word, fp, value, lambda)
            );
        }
    }
}
