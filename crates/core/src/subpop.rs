//! Certified subpopulation-weight queries (ROADMAP item 2).
//!
//! A *subpopulation-weight* query asks for the total value carried by a
//! predicate-selected key subset — Cohen & Kaplan's workhorse aggregate
//! (*Sketch-Based Estimation of Subpopulation-Weight*), answered here
//! from ReliableSketch's **certified per-key bounds** instead of tail
//! probabilities: every answer is a [`CertifiedWeight`] whose interval
//! provably contains the exact subset sum, extending the paper's "100%
//! confidence" story from point queries to aggregates.
//!
//! Two evaluation paths, chosen per query by the predicate's size:
//!
//! * **Dense** — sets that enumerate within
//!   [`DENSE_ENUMERATION_LIMIT`]: sum the per-key certified intervals
//!   member by member. `estimate = hi = Σ f̂(k)`, `lo = Σ (f̂(k) − MPE)`,
//!   and on concurrent flavours `slack = |set| ×` the documented
//!   per-key contention undershoot bound — sound because each per-key
//!   interval is.
//! * **Decode** — larger or unbounded sets (big ranges, short masks,
//!   the full universe): sum the certified intervals of the sketch's
//!   *tracked* keys that fall in the set (bucket candidates, top-K
//!   entries, emergency remainders), then charge every possibly-present
//!   untracked key its certified per-key ceiling — the top-K layer's
//!   [`TopKSummary::miss_bound`](crate::topk::TopKSummary::miss_bound)
//!   when enabled, the sketch's `mpe_ceiling` otherwise. An unbounded
//!   predicate saturates `hi` to a vacuous-but-sound [`u64::MAX`].
//!
//! ## Soundness
//!
//! The dense path inherits the point-query guarantee verbatim. The
//! decode path's untracked-key charge rests on a structural fact of the
//! query walk (`ReliableSketch::query_traced`): for a key that is a
//! candidate nowhere, every term added to the estimate — the mice-filter
//! count, each visited bucket's `NO` counter, the emergency remainder —
//! is also added to the MPE, so `f̂ = MPE ≤ mpe_ceiling` and therefore
//! `truth ≤ f̂ ≤ mpe_ceiling`. Three documented caveats:
//!
//! * **Merged sketches** (`is_merged()`): the `MPE ≤ Λ` ceiling becomes
//!   data-dependent, so the untracked charge degrades to [`u64::MAX`]
//!   (the answer is vacuous unless the set is fully tracked); a merged
//!   top-K layer's `miss_bound` stays finite and sound, so flavours with
//!   the layer enabled keep a meaningful bound.
//! * **Concurrent flavours without a top-K layer** carry the same 2⁻²⁴
//!   fingerprint-aliasing caveat as merged concurrent point queries: an
//!   untracked key aliased onto a candidate fingerprint can read that
//!   candidate's `YES` count. The `miss_bound` charge is alias-free (it
//!   is maintained from the stream side, not the bucket side).
//! * **Dropped mass**: under [`crate::EmergencyPolicy::Disabled`] a
//!   failed insert's value leaves the sketch entirely, so the total
//!   dropped value is charged once onto `hi` (zero in any configuration
//!   that keeps the paper's guarantee intact). A SpaceSaving emergency
//!   store's *evicted* remainders inherit the point-query caveat: the
//!   per-key answer already misses them, and so does the sum.
//!
//! The oracle-differential suite (`tests/subpop_oracle.rs`) races every
//! flavour × predicate shape × stream family against exact ground-truth
//! subset sums; `tests/concurrent_parity.rs` pins the 1-worker
//! concurrent dense path bit-equal to the sequential twin, with
//! interval widths differing only by the documented slack term.

use crate::atomic::ConcurrentReliable;
use crate::concurrent::ShardedReliable;
use crate::emergency::EmergencyStore;
use crate::epoch::EpochedConcurrent;
use crate::sketch::ReliableSketch;
use rsk_api::{CertifiedWeight, ErrorSensing, Estimate, Key, KeySet, SubpopulationWeight};
use std::collections::HashSet;

/// Largest predicate cardinality evaluated member-by-member (the dense
/// path); larger sets fall back to the tracked-key decode. 4096 keys is
/// a /52 mask over the full space — comfortably past the subset sizes a
/// telemetry dashboard sweeps — while keeping worst-case query cost at a
/// few thousand layer walks.
pub const DENSE_ENUMERATION_LIMIT: usize = 4096;

/// Sum the per-key certified intervals of an enumerated member list.
fn dense(
    keys: &[u64],
    per_key_slack: u64,
    dropped: u64,
    query: impl Fn(&u64) -> Estimate,
) -> CertifiedWeight {
    let mut estimate = 0u64;
    let mut lo = 0u64;
    for k in keys {
        let est = query(k);
        estimate = estimate.saturating_add(est.value);
        lo = lo.saturating_add(est.lower_bound());
    }
    CertifiedWeight {
        estimate,
        lo,
        hi: estimate.saturating_add(dropped),
        slack: (keys.len() as u64).saturating_mul(per_key_slack),
    }
}

/// Tracked-key decode: certified sums over `tracked ∩ set`, plus the
/// per-key ceiling charged to every possibly-present untracked member.
fn decode(
    set: &KeySet,
    tracked: Vec<u64>,
    per_untracked_ceiling: u64,
    per_key_slack: u64,
    dropped: u64,
    query: impl Fn(&u64) -> Estimate,
) -> CertifiedWeight {
    let members: HashSet<u64> = tracked.into_iter().filter(|k| set.contains(*k)).collect();
    let mut estimate = 0u64;
    let mut lo = 0u64;
    for k in &members {
        let est = query(k);
        estimate = estimate.saturating_add(est.value);
        lo = lo.saturating_add(est.lower_bound());
    }
    match set.cardinality() {
        Some(n) => {
            let untracked = n - members.len() as u64;
            CertifiedWeight {
                estimate,
                lo,
                hi: estimate
                    .saturating_add(untracked.saturating_mul(per_untracked_ceiling))
                    .saturating_add(dropped),
                slack: n.saturating_mul(per_key_slack),
            }
        }
        // the full 2⁶⁴ universe: hi is vacuous, and already ∞ — extra
        // slack would add nothing to the (saturated) upper bound
        None => CertifiedWeight {
            estimate,
            lo,
            hi: u64::MAX,
            slack: 0,
        },
    }
}

/// Keys the emergency store can enumerate (exact remainders and
/// SpaceSaving slots; nothing under `Disabled`).
fn emergency_keys<K: Key>(e: &EmergencyStore<K>) -> Vec<K> {
    match e {
        EmergencyStore::Disabled { .. } => Vec::new(),
        EmergencyStore::Exact { table, .. } => table.keys().copied().collect(),
        EmergencyStore::SpaceSaving { slots, .. } => slots.iter().map(|s| s.0).collect(),
    }
}

/// Ceiling on the emergency remainder of a key *not* in the store: a
/// full SpaceSaving table may have folded an evicted key's remainder
/// into its minimum slot (Metwally's rule bounds it by that slot's
/// count); exact tables and never-full tables track every recorded key.
fn emergency_untracked_ceiling<K: Key>(e: &EmergencyStore<K>) -> u64 {
    match e {
        EmergencyStore::SpaceSaving {
            slots, capacity, ..
        } if slots.len() >= *capacity => slots.iter().map(|s| s.1).min().unwrap_or(0),
        _ => 0,
    }
}

/// Decode inputs of one concurrent generation: its enumerable tracked
/// keys (top-K entries + emergency remainders — bucket candidates exist
/// only as fingerprints) and its per-untracked-key ceiling.
fn concurrent_decode_inputs(
    g: &ConcurrentReliable<u64>,
    emergency: &EmergencyStore<u64>,
) -> (Vec<u64>, u64) {
    let mut tracked = emergency_keys(emergency);
    let mut ceiling = if g.is_merged() {
        u64::MAX
    } else {
        g.mpe_ceiling()
            .saturating_add(emergency_untracked_ceiling(emergency))
    };
    if let Some(tk) = g.top_k_summary() {
        ceiling = ceiling.min(tk.miss_bound());
        tracked.extend(tk.entries_desc().into_iter().map(|e| e.key));
    }
    (tracked, ceiling)
}

impl SubpopulationWeight for ReliableSketch<u64> {
    /// Sequential evaluation: zero contention slack; the decode path
    /// enumerates real bucket candidates, so the tracked inventory is
    /// complete and the untracked charge alias-free.
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
        let dropped = self.dropped_value();
        if let Some(keys) = set.enumerate(DENSE_ENUMERATION_LIMIT) {
            return dense(&keys, 0, dropped, |k| self.query_with_error(k));
        }
        let (_, _, emergency, _, _) = self.peer_parts();
        let mut tracked: Vec<u64> = self.candidates().into_iter().map(|(k, _)| k).collect();
        tracked.extend(emergency_keys(emergency));
        let mut ceiling = if self.is_merged() {
            u64::MAX
        } else {
            self.mpe_ceiling()
                .saturating_add(emergency_untracked_ceiling(emergency))
        };
        if let Some(tk) = self.top_k_summary() {
            ceiling = ceiling.min(tk.miss_bound());
            tracked.extend(tk.entries_desc().into_iter().map(|e| e.key));
        }
        decode(set, tracked, ceiling, 0, dropped, |k| {
            self.query_with_error(k)
        })
    }
}

impl SubpopulationWeight for ConcurrentReliable<u64> {
    /// Lock-free evaluation through a shared reference: `slack` charges
    /// the documented per-key contention undershoot
    /// ([`ConcurrentReliable::contention_undershoot_bound`]) once per
    /// set member; single-owner histories answer bit-for-bit like the
    /// sequential twin with the slack term merely reported.
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
        let slack = self.contention_undershoot_bound();
        let dropped = self.dropped_value();
        if let Some(keys) = set.enumerate(DENSE_ENUMERATION_LIMIT) {
            return dense(&keys, slack, dropped, |k| self.query_with_error(k));
        }
        let emergency = self.peer_emergency();
        let (tracked, ceiling) = concurrent_decode_inputs(self, &emergency);
        decode(set, tracked, ceiling, slack, dropped, |k| {
            self.query_with_error(k)
        })
    }
}

impl SubpopulationWeight for ShardedReliable<u64> {
    /// Key-partitioned evaluation: each member consults exactly its
    /// shard (dense) and each untracked key belongs to exactly one
    /// shard, so the per-key ceiling and slack are the shard maxima.
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
        let slack = (0..self.shards())
            .map(|i| self.shard(i).contention_undershoot_bound())
            .max()
            .unwrap_or(0);
        let dropped = (0..self.shards())
            .map(|i| self.shard(i).dropped_value())
            .fold(0u64, u64::saturating_add);
        if let Some(keys) = set.enumerate(DENSE_ENUMERATION_LIMIT) {
            return dense(&keys, slack, dropped, |k| self.query_shared(k));
        }
        let mut tracked = Vec::new();
        let mut ceiling = 0u64;
        for i in 0..self.shards() {
            let shard = self.shard(i);
            let emergency = shard.peer_emergency();
            let (t, c) = concurrent_decode_inputs(shard, &emergency);
            tracked.extend(t);
            ceiling = ceiling.max(c);
        }
        decode(set, tracked, ceiling, slack, dropped, |k| {
            self.query_shared(k)
        })
    }
}

impl SubpopulationWeight for EpochedConcurrent<u64> {
    /// Window evaluation over both visible generations: per-key queries
    /// sum the generations' certified answers, the untracked charge sums
    /// the generations' ceilings (a key absent from both summaries has
    /// window truth ≤ their sum), and `slack` charges one contention
    /// undershoot per visible generation per member — the same
    /// convention the serving layer reports.
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
        let generations = 1 + u64::from(self.frozen().is_some());
        let slack = self
            .contention_undershoot_bound()
            .saturating_mul(generations);
        let mut dropped = self.active().dropped_value();
        if let Some(frozen) = self.frozen() {
            dropped = dropped.saturating_add(frozen.dropped_value());
        }
        if let Some(keys) = set.enumerate(DENSE_ENUMERATION_LIMIT) {
            return dense(&keys, slack, dropped, |k| self.query_with_error(k));
        }
        let a_emergency = self.active().peer_emergency();
        let (mut tracked, mut ceiling) = concurrent_decode_inputs(self.active(), &a_emergency);
        if let Some(frozen) = self.frozen() {
            let f_emergency = frozen.peer_emergency();
            let mut f_ceiling = if frozen.is_merged() {
                u64::MAX
            } else {
                frozen
                    .mpe_ceiling()
                    .saturating_add(emergency_untracked_ceiling(&f_emergency))
            };
            // the sealed generation's summary is the rotation-time
            // snapshot — wait-free, no lock
            if let Some(tk) = self.frozen_top_k() {
                f_ceiling = f_ceiling.min(tk.miss_bound());
                tracked.extend(tk.entries_desc().into_iter().map(|e| e.key));
            }
            tracked.extend(emergency_keys(&f_emergency));
            ceiling = ceiling.saturating_add(f_ceiling);
        }
        decode(set, tracked, ceiling, slack, dropped, |k| {
            self.query_with_error(k)
        })
    }
}

/// A slim digest answers dense queries standalone — its per-key
/// intervals stay certified (`truth ∈ [value − MPE, value]`, modulo the
/// fingerprint-aliasing caveat its module documents). Non-enumerable
/// sets are *enumeration-limited*: the digest holds fingerprints, not
/// keys, so no tracked inventory exists and the answer is vacuous
/// (`hi = u64::MAX` — sound, excludes nothing).
#[cfg(feature = "serde")]
impl SubpopulationWeight for crate::replicate::SlimSummary {
    fn subpopulation_weight(&self, set: &KeySet) -> CertifiedWeight {
        if let Some(keys) = set.enumerate(DENSE_ENUMERATION_LIMIT) {
            // the digest carries the source's total dropped mass, so the
            // Disabled-policy undercount is charged exactly as at the source
            return dense(&keys, 0, self.dropped, |k| self.query_with_error(k));
        }
        CertifiedWeight {
            estimate: 0,
            lo: 0,
            hi: u64::MAX,
            slack: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{EmergencyPolicy, ReliableConfig};
    use crate::epoch::EpochedConcurrent;
    use std::collections::HashMap;

    const MEMORY: usize = 128 * 1024;
    const LAMBDA: u64 = 25;

    fn config(seed: u64) -> ReliableConfig {
        ReliableConfig::builder()
            .memory_bytes(MEMORY)
            .error_tolerance(LAMBDA)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(seed)
            .build_config()
    }

    /// Deterministic zipf-ish stream: key i ∈ [0, n_keys) gets mass
    /// ∝ 1/(i+1), shuffled by a multiplicative hop.
    fn stream(n: usize, n_keys: u64, seed: u64) -> (Vec<(u64, u64)>, HashMap<u64, u64>) {
        let mut items = Vec::with_capacity(n);
        let mut truth = HashMap::new();
        let mut x = seed | 1;
        for _ in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // bias toward small ranks
            let r = (x >> 33) % (n_keys * (n_keys + 1) / 2).max(1);
            let mut k = 0u64;
            let mut acc = n_keys;
            while acc <= r && k + 1 < n_keys {
                k += 1;
                acc += n_keys - k;
            }
            let v = 1 + (x % 3);
            items.push((k, v));
            *truth.entry(k).or_insert(0) += v;
        }
        (items, truth)
    }

    fn truth_sum(truth: &HashMap<u64, u64>, set: &KeySet) -> u64 {
        truth
            .iter()
            .filter(|(k, _)| set.contains(**k))
            .map(|(_, v)| v)
            .sum()
    }

    fn shapes(n_keys: u64) -> Vec<KeySet> {
        vec![
            KeySet::explicit(vec![]),
            KeySet::explicit(vec![0, 1, 2, 7, n_keys / 2, n_keys + 100]),
            KeySet::range(0, n_keys / 4),
            KeySet::range(n_keys, n_keys + 50), // all absent
            KeySet::mask(0b101, 0b111),
            KeySet::mask(0, 0),        // full universe (decode, vacuous hi)
            KeySet::range(0, 1 << 20), // decode with known cardinality
        ]
    }

    fn assert_contains(w: CertifiedWeight, truth: u64, what: &str) {
        assert!(
            w.contains(truth),
            "{what}: truth {truth} outside [{}, {}] (est {}, slack {})",
            w.lower_bound(),
            w.upper_bound(),
            w.estimate,
            w.slack
        );
        assert!(
            w.lo <= w.estimate && w.estimate <= w.hi,
            "{what}: estimate outside [lo, hi]"
        );
    }

    #[test]
    fn sequential_intervals_contain_truth_across_shapes() {
        let (items, truth) = stream(60_000, 1_000, 7);
        let mut sk = ReliableSketch::<u64>::new(config(1));
        for (k, v) in &items {
            rsk_api::StreamSummary::insert(&mut sk, k, *v);
        }
        assert_eq!(sk.insertion_failures(), 0);
        for set in shapes(1_000) {
            let w = sk.subpopulation_weight(&set);
            assert_contains(w, truth_sum(&truth, &set), &format!("{set:?}"));
        }
        // empty set answers exactly zero
        assert_eq!(
            sk.subpopulation_weight(&KeySet::explicit(vec![])),
            CertifiedWeight::zero()
        );
    }

    #[test]
    fn sequential_dense_estimate_matches_point_query_sum() {
        let (items, _) = stream(30_000, 500, 11);
        let mut sk = ReliableSketch::<u64>::new(config(2));
        for (k, v) in &items {
            rsk_api::StreamSummary::insert(&mut sk, k, *v);
        }
        let set = KeySet::range(10, 200);
        let w = sk.subpopulation_weight(&set);
        let expect: u64 = (10..=200u64).map(|k| sk.query_with_error(&k).value).sum();
        assert_eq!(w.estimate, expect);
        assert_eq!(w.hi, expect);
        assert_eq!(w.slack, 0, "sequential reads have no contention slack");
    }

    #[test]
    fn full_universe_decode_is_vacuous_but_contains_total() {
        let (items, truth) = stream(20_000, 400, 3);
        let mut sk = ReliableSketch::<u64>::new(config(3));
        for (k, v) in &items {
            rsk_api::StreamSummary::insert(&mut sk, k, *v);
        }
        let total: u64 = truth.values().sum();
        let w = sk.subpopulation_weight(&KeySet::mask(0, 0));
        assert!(w.is_vacuous());
        assert_contains(w, total, "full universe");
        // the tracked lower bound is still informative, not zero
        assert!(w.lo > 0);
    }

    #[test]
    fn concurrent_intervals_contain_truth_across_shapes() {
        let (items, truth) = stream(60_000, 1_000, 13);
        let sk = ConcurrentReliable::<u64>::new(config(4));
        for (k, v) in &items {
            sk.insert_concurrent(k, *v);
        }
        for set in shapes(1_000) {
            let w = sk.subpopulation_weight(&set);
            assert_contains(w, truth_sum(&truth, &set), &format!("{set:?}"));
        }
    }

    #[test]
    fn topk_layer_tightens_the_untracked_charge() {
        let (items, truth) = stream(60_000, 1_000, 17);
        let plain = ConcurrentReliable::<u64>::new(config(5));
        let tk = ConcurrentReliable::<u64>::new(config(5)).with_top_k(64);
        for (k, v) in &items {
            plain.insert_concurrent(k, *v);
            tk.insert_concurrent(k, *v);
        }
        let set = KeySet::range(0, 1 << 20); // decode path, 2²⁰ members
        let loose = plain.subpopulation_weight(&set);
        let tight = tk.subpopulation_weight(&set);
        assert_contains(loose, truth_sum(&truth, &set), "plain decode");
        assert_contains(tight, truth_sum(&truth, &set), "topk decode");
        assert!(
            tight.width() < loose.width(),
            "miss_bound charge {} must beat mpe_ceiling charge {}",
            tight.width(),
            loose.width()
        );
    }

    #[test]
    fn sharded_intervals_contain_truth_across_shapes() {
        let (items, truth) = stream(60_000, 1_000, 19);
        let sk = ShardedReliable::<u64>::new(config(6), 4);
        for (k, v) in &items {
            sk.insert_shared(k, *v);
        }
        for set in shapes(1_000) {
            let w = sk.subpopulation_weight(&set);
            assert_contains(w, truth_sum(&truth, &set), &format!("{set:?}"));
        }
    }

    #[test]
    fn epoched_window_covers_both_generations() {
        let (items, truth) = stream(40_000, 800, 23);
        let mut window = EpochedConcurrent::<u64>::new(config(7)).with_top_k(64);
        let (first, second) = items.split_at(items.len() / 2);
        for (k, v) in first {
            window.insert_shared(k, *v);
        }
        window.rotate();
        for (k, v) in second {
            window.insert_shared(k, *v);
        }
        for set in shapes(800) {
            let w = window.subpopulation_weight(&set);
            assert_contains(w, truth_sum(&truth, &set), &format!("{set:?}"));
        }
        // the dense slack convention is one undershoot bound per
        // visible generation per member
        let m = KeySet::explicit(vec![1, 2, 3]);
        let per_key = window.contention_undershoot_bound();
        assert_eq!(window.subpopulation_weight(&m).slack, 3 * 2 * per_key);
    }

    #[test]
    fn merged_sketch_decode_is_vacuous_unless_fully_tracked() {
        use rsk_api::Merge;
        let (items, truth) = stream(30_000, 600, 29);
        let mut a = ReliableSketch::<u64>::new(config(8));
        let mut b = ReliableSketch::<u64>::new(config(8));
        for (i, (k, v)) in items.iter().enumerate() {
            if i % 2 == 0 {
                rsk_api::StreamSummary::insert(&mut a, k, *v);
            } else {
                rsk_api::StreamSummary::insert(&mut b, k, *v);
            }
        }
        a.merge(&b).unwrap();
        assert!(a.is_merged());
        let big = KeySet::range(0, 1 << 20);
        let w = a.subpopulation_weight(&big);
        assert!(w.is_vacuous(), "merged untracked charge must be vacuous");
        assert_contains(w, truth_sum(&truth, &big), "merged decode");
        // dense evaluation keeps certified (merged) per-key intervals
        let small = KeySet::range(0, 100);
        assert_contains(
            a.subpopulation_weight(&small),
            truth_sum(&truth, &small),
            "merged dense",
        );
    }

    #[cfg(feature = "serde")]
    #[test]
    fn slim_digest_answers_dense_queries() {
        use crate::replicate::SlimSummary;
        let (items, truth) = stream(30_000, 600, 31);
        let mut sk = ReliableSketch::<u64>::new(config(9));
        for (k, v) in &items {
            rsk_api::StreamSummary::insert(&mut sk, k, *v);
        }
        let slim = SlimSummary::from_sequential(&sk);
        for set in [
            KeySet::explicit(vec![0, 5, 9, 700]),
            KeySet::range(0, 150),
            KeySet::mask(0b10, 0b11),
        ] {
            let w = slim.subpopulation_weight(&set);
            assert_contains(w, truth_sum(&truth, &set), &format!("slim {set:?}"));
        }
        // non-enumerable: enumeration-limited, vacuous but sound
        let w = slim.subpopulation_weight(&KeySet::range(0, 1 << 20));
        assert!(w.is_vacuous());
    }
}
