//! The emergency store (paper §3.3, "Emergency Solution").
//!
//! When an item's value survives all `d` layers, the insertion has
//! *failed*: without remediation the sketch may under-count that key and
//! the zero-outlier guarantee is void. The paper's remedy is a small side
//! table — "a small hash table or a SpaceSaving structure" — that records
//! the uninserted remainders. Theorem 4 sizes a SpaceSaving of
//! `Δ₂ ln(1/Δ)` slots as the virtual `(d+1)`-th layer.
//!
//! Three policies are provided, mirroring
//! [`crate::config::EmergencyPolicy`]:
//!
//! * **Disabled** — count failures, drop the value (the paper's accuracy
//!   evaluation runs this way to show the raw structure);
//! * **ExactTable** — unbounded hash map, exact remainders (CPU servers);
//! * **SpaceSaving** — bounded table with the classic Metwally et al.
//!   overwrite-the-minimum rule; its per-key overestimate is bounded by
//!   the minimum counter, which we surface in the MPE.

use rsk_api::{Key, MergeError};
use std::collections::HashMap;

/// Side store for insertion-failure remainders.
#[derive(Debug, Clone)]
pub enum EmergencyStore<K: Key> {
    /// Drop remainders; only statistics are kept.
    Disabled {
        /// Number of failed insert operations.
        failures: u64,
        /// Total value dropped.
        dropped_value: u64,
    },
    /// Exact hash table of remainders.
    Exact {
        /// Remainder per key.
        table: HashMap<K, u64>,
        /// Number of failed insert operations.
        failures: u64,
    },
    /// Bounded SpaceSaving-style table.
    SpaceSaving {
        /// `(key, count, overestimate)` slots.
        slots: Vec<(K, u64, u64)>,
        /// Capacity in slots.
        capacity: usize,
        /// Number of failed insert operations.
        failures: u64,
    },
}

impl<K: Key> EmergencyStore<K> {
    /// Build from the configured policy.
    pub fn new(policy: crate::config::EmergencyPolicy) -> Self {
        use crate::config::EmergencyPolicy::*;
        match policy {
            Disabled => Self::Disabled {
                failures: 0,
                dropped_value: 0,
            },
            ExactTable => Self::Exact {
                table: HashMap::new(),
                failures: 0,
            },
            SpaceSaving(cap) => Self::SpaceSaving {
                slots: Vec::with_capacity(cap.max(1)),
                capacity: cap.max(1),
                failures: 0,
            },
        }
    }

    /// Record a failed remainder.
    pub fn record(&mut self, key: &K, value: u64) {
        match self {
            Self::Disabled {
                failures,
                dropped_value,
            } => {
                *failures += 1;
                *dropped_value += value;
            }
            Self::Exact { table, failures } => {
                *failures += 1;
                *table.entry(*key).or_insert(0) += value;
            }
            Self::SpaceSaving {
                slots,
                capacity,
                failures,
            } => {
                *failures += 1;
                if let Some(slot) = slots.iter_mut().find(|s| s.0 == *key) {
                    slot.1 += value;
                    return;
                }
                if slots.len() < *capacity {
                    slots.push((*key, value, 0));
                    return;
                }
                // overwrite the minimum (Metwally et al. 2005): the evicted
                // count becomes the newcomer's overestimate
                let (idx, _) = slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.1)
                    .expect("capacity ≥ 1");
                let min = slots[idx].1;
                slots[idx] = (*key, min + value, min);
            }
        }
    }

    /// The stored remainder estimate and its overestimate bound for `key`.
    pub fn query(&self, key: &K) -> (u64, u64) {
        match self {
            Self::Disabled { .. } => (0, 0),
            Self::Exact { table, .. } => (table.get(key).copied().unwrap_or(0), 0),
            Self::SpaceSaving { slots, .. } => slots
                .iter()
                .find(|s| s.0 == *key)
                .map(|s| (s.1, s.2))
                .unwrap_or((0, 0)),
        }
    }

    /// Number of failed insert operations observed.
    pub fn failures(&self) -> u64 {
        match self {
            Self::Disabled { failures, .. }
            | Self::Exact { failures, .. }
            | Self::SpaceSaving { failures, .. } => *failures,
        }
    }

    /// Total value dropped (only nonzero under `Disabled`).
    pub fn dropped_value(&self) -> u64 {
        match self {
            Self::Disabled { dropped_value, .. } => *dropped_value,
            _ => 0,
        }
    }

    /// Modeled memory footprint in bytes (key + 64-bit counter per entry;
    /// SpaceSaving also carries the overestimate field).
    pub fn memory_bytes(&self) -> usize {
        let key = core::mem::size_of::<K>();
        match self {
            Self::Disabled { .. } => 0,
            Self::Exact { table, .. } => table.len() * (key + 8),
            Self::SpaceSaving { capacity, .. } => capacity * (key + 16),
        }
    }

    /// Fold another store into this one. Both must run the same policy.
    ///
    /// * `Disabled` — failure and dropped-value counters add;
    /// * `Exact` — remainder tables add key-wise;
    /// * `SpaceSaving` — `self` keeps its capacity; each foreign slot is
    ///   added to a matching slot (counts and overestimates add), appended
    ///   if there is room, or folded over the minimum slot with the
    ///   classic Metwally rule, preserving the `truth ⩾ count −
    ///   overestimate` lower-bound contract.
    ///
    /// # Errors
    /// [`MergeError::Incompatible`] for mixed policies.
    pub fn merge_from(&mut self, other: &Self) -> Result<(), MergeError> {
        match (self, other) {
            (
                Self::Disabled {
                    failures,
                    dropped_value,
                },
                Self::Disabled {
                    failures: f2,
                    dropped_value: d2,
                },
            ) => {
                *failures += f2;
                *dropped_value += d2;
                Ok(())
            }
            (
                Self::Exact { table, failures },
                Self::Exact {
                    table: t2,
                    failures: f2,
                },
            ) => {
                *failures += f2;
                for (k, v) in t2 {
                    *table.entry(*k).or_insert(0) += v;
                }
                Ok(())
            }
            (
                Self::SpaceSaving {
                    slots,
                    capacity,
                    failures,
                },
                Self::SpaceSaving {
                    slots: s2,
                    failures: f2,
                    ..
                },
            ) => {
                *failures += f2;
                for (key, count, over) in s2 {
                    if let Some(slot) = slots.iter_mut().find(|s| s.0 == *key) {
                        slot.1 += count;
                        slot.2 += over;
                    } else if slots.len() < *capacity {
                        slots.push((*key, *count, *over));
                    } else {
                        let (idx, _) = slots
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| s.1)
                            .expect("capacity ≥ 1");
                        let min = slots[idx].1;
                        slots[idx] = (*key, min + count, min + over);
                    }
                }
                Ok(())
            }
            _ => Err(MergeError::Incompatible("emergency policy mismatch".into())),
        }
    }

    /// Reset, keeping the policy.
    pub fn clear(&mut self) {
        match self {
            Self::Disabled {
                failures,
                dropped_value,
            } => {
                *failures = 0;
                *dropped_value = 0;
            }
            Self::Exact { table, failures } => {
                table.clear();
                *failures = 0;
            }
            Self::SpaceSaving {
                slots, failures, ..
            } => {
                slots.clear();
                *failures = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmergencyPolicy;

    #[test]
    fn disabled_counts_and_drops() {
        let mut e = EmergencyStore::<u64>::new(EmergencyPolicy::Disabled);
        e.record(&1, 5);
        e.record(&2, 3);
        assert_eq!(e.failures(), 2);
        assert_eq!(e.dropped_value(), 8);
        assert_eq!(e.query(&1), (0, 0));
        assert_eq!(e.memory_bytes(), 0);
    }

    #[test]
    fn exact_table_is_exact() {
        let mut e = EmergencyStore::<u64>::new(EmergencyPolicy::ExactTable);
        e.record(&1, 5);
        e.record(&1, 2);
        e.record(&2, 3);
        assert_eq!(e.query(&1), (7, 0));
        assert_eq!(e.query(&2), (3, 0));
        assert_eq!(e.query(&3), (0, 0));
        assert_eq!(e.failures(), 3);
        assert!(e.memory_bytes() > 0);
    }

    #[test]
    fn spacesaving_overwrites_minimum() {
        let mut e = EmergencyStore::<u64>::new(EmergencyPolicy::SpaceSaving(2));
        e.record(&1, 10);
        e.record(&2, 5);
        e.record(&3, 1); // evicts key 2 (min count 5): count 6, over 5
        assert_eq!(e.query(&1), (10, 0));
        assert_eq!(e.query(&2), (0, 0));
        assert_eq!(e.query(&3), (6, 5));
        // overestimate bound holds: true 1 ∈ [6−5, 6]
        let (est, over) = e.query(&3);
        assert!(est - over <= 1 && 1 <= est);
    }

    #[test]
    fn spacesaving_estimates_never_undershoot() {
        let mut e = EmergencyStore::<u64>::new(EmergencyPolicy::SpaceSaving(4));
        let mut truth = std::collections::HashMap::new();
        // adversarial rotation forcing evictions
        for i in 0..100u64 {
            let k = i % 9;
            e.record(&k, 1 + i % 3);
            *truth.entry(k).or_insert(0u64) += 1 + i % 3;
        }
        for (&k, &f) in &truth {
            let (est, over) = e.query(&k);
            if est > 0 {
                assert!(est >= f.min(est), "estimate must include count");
                assert!(est.saturating_sub(over) <= f, "lower bound exceeds truth");
            }
        }
    }

    #[test]
    fn clear_resets_all_variants() {
        for policy in [
            EmergencyPolicy::Disabled,
            EmergencyPolicy::ExactTable,
            EmergencyPolicy::SpaceSaving(4),
        ] {
            let mut e = EmergencyStore::<u64>::new(policy);
            e.record(&1, 5);
            e.clear();
            assert_eq!(e.failures(), 0);
            assert_eq!(e.query(&1), (0, 0));
        }
    }
}
