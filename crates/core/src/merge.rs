//! Merging ReliableSketches — the distributed-aggregation extension.
//!
//! Network-wide measurement (the deployment the paper's Tofino/FPGA
//! sections target) naturally shards a stream across devices or cores:
//! each shard summarizes its slice, a collector folds the shards into one
//! summary. Linear sketches (CM, Count) merge by adding counters;
//! election-based structures like ReliableSketch need more care, because a
//! bucket's `ID/YES/NO` triple is the outcome of a *local* election and
//! two shards may have elected different candidates.
//!
//! This module implements [`rsk_api::Merge`] for
//! [`ReliableSketch`] under the precondition that
//! both instances share an identical configuration (hence identical layer
//! geometry and hash seeds — bucket `(i, j)` observed the same key
//! population in every shard).
//!
//! ## What is preserved, and what is not
//!
//! * **Preserved — certified intervals.** For every key `e`, the merged
//!   sketch answers `f̂(e)` with `f(e) ∈ [f̂(e) − MPE, f̂(e)]`, where `f`
//!   is the sum over *both* input streams. This is the property that
//!   makes ReliableSketch "reliable", and it survives merging.
//! * **Relaxed — the a-priori `MPE ≤ Λ` ceiling.** Two shards can elect
//!   different heavy candidates into the same bucket; the merged bucket
//!   must honestly report that ambiguity as error, which can exceed the
//!   per-shard lock threshold. The error stays *sensed* (the MPE says how
//!   bad it is) but is no longer capped by `Λ` in the worst case. A
//!   merged sketch reports [`is_merged() ==
//!   true`](crate::ReliableSketch::is_merged).
//!
//! ## How soundness is kept
//!
//! Two mechanisms, mirroring the two places a per-shard argument uses
//! local history:
//!
//! 1. **Bucket union rule** ([`EsBucket::merge_union`](crate::EsBucket::merge_union)):
//!    per-bucket fields are combined so that all three §3.1 contract
//!    clauses hold against the *combined* per-bucket masses. See the
//!    method docs for the case analysis.
//! 2. **Divert hints.** A per-shard query may stop early ("this bucket is
//!    unlocked / replaceable / mine, so the key never went deeper") —
//!    inferences that are only valid against that shard's history. Any
//!    bucket that was locked in *either* shard may have diverted keys
//!    deeper in that shard, so the merged sketch flags it, and flagged
//!    buckets never satisfy a stop condition: merged queries keep walking
//!    down and pick the diverted mass back up from the (also merged)
//!    deeper buckets. Flagging is conservative — the indicator
//!    `YES > NO ∧ NO ⩾ λᵢ` is implied by every lock — costing only
//!    tightness, never soundness.
//!
//! Top-K layers ([`crate::topk::TopKSummary`]) union key-wise: keys
//! monitored on both sides sum counts and errors, keys monitored on one
//! side are charged the other side's miss bound on both fields, and
//! truncation back to capacity raises the miss bound — every surviving
//! entry stays certified against the *combined* stream. Presence and
//! capacity of the layer are checked before any operand is touched
//! (the layer is a builder sidecar, so config equality cannot vouch for
//! it).
//!
//! The mice filters add counter-wise without re-capping (each shard's
//! counter upper-bounds that shard's absorbed mass), and emergency stores
//! merge policy-wise; see
//! [`MiceFilter::merge_from`](crate::filter::MiceFilter::merge_from) and
//! [`EmergencyStore::merge_from`](crate::emergency::EmergencyStore::merge_from).
//!
//! ## Concurrent operands
//!
//! The same machinery serves the lock-free types. A
//! [`ConcurrentReliable`] *reads out* its packed `AtomicU64` words into
//! fingerprint-space [`EsBucket<u64>`] layers
//! ([`AtomicBucketArray::read_out`](crate::atomic::AtomicBucketArray::read_out)),
//! seals them into a merged overlay (merged `NO` fields can exceed the
//! packed 12-bit error field, so the union cannot live in the atomic
//! words), and unions operands with exactly the `union_layers` helper
//! the sequential impl uses. Post-merge insertions keep flowing lock-free
//! into the (zeroed) atomic words; queries walk overlay + live words like
//! two epoch generations. Three aggregation shapes are supported:
//!
//! * `conc.merge(&conc)` — [`rsk_api::Merge`] for [`ConcurrentReliable`];
//! * `sharded.merge(&sharded)` — shard-wise, for
//!   [`crate::concurrent::ShardedReliable`] pairs built
//!   from the same configuration;
//! * [`ConcurrentReliable::merge_from_sequential`] — folds a sequential
//!   [`ReliableSketch`] twin (same config, same geometry) into a
//!   concurrent collector, mapping candidate keys to their fingerprints.
//!
//! Candidate identity in concurrent operands is the 24-bit fingerprint,
//! so merging inherits the atomic path's `2⁻²⁴` per-colliding-pair
//! aliasing caveat; aliasing only ever inflates estimates.
//!
//! ## Example
//!
//! ```
//! use rsk_core::{merge_all, ReliableSketch};
//! use rsk_api::{ErrorSensing, Merge, StreamSummary};
//!
//! let build = || {
//!     ReliableSketch::<u64>::builder()
//!         .memory_bytes(64 * 1024)
//!         .error_tolerance(25)
//!         .seed(7)
//!         .build::<u64>()
//! };
//! let mut shard_a = build();
//! let mut shard_b = build();
//! for i in 0..5_000u64 {
//!     shard_a.insert(&(i % 100), 1); // keys 0..100, 50 each
//!     shard_b.insert(&(i % 50), 1); // keys 0..50, 100 each
//! }
//! shard_a.merge(&shard_b).unwrap();
//! let est = shard_a.query_with_error(&7);
//! assert!(est.contains(150)); // 50 + 100, certified
//! assert!(shard_a.is_merged());
//! ```

use crate::atomic::ConcurrentReliable;
use crate::bucket::EsBucket;
use crate::concurrent::ShardedReliable;
use crate::config::ReliableConfig;
use crate::topk::TopKSummary;
use crate::ReliableSketch;
use rsk_api::{Key, Merge, MergeError};

/// Check top-K layer compatibility *before* any operand is mutated:
/// the layer is a builder sidecar (not part of [`ReliableConfig`]), so
/// config equality does not cover it. Presence must match (an operand
/// without a summary has unknown elephants — the union could not charge
/// its misses), and capacities must agree (the eviction floor argument
/// is per-capacity). Returns the summaries' shared capacity check as a
/// typed error; `Ok(())` when neither operand tracks top-K.
fn check_topk_compat<K: Key>(
    mine: Option<&TopKSummary<K>>,
    theirs: Option<&TopKSummary<K>>,
) -> Result<(), MergeError> {
    match (mine, theirs) {
        (Some(a), Some(b)) if a.capacity() != b.capacity() => {
            Err(MergeError::Incompatible("top-K capacity mismatch".into()))
        }
        (Some(_), Some(_)) | (None, None) => Ok(()),
        _ => Err(MergeError::Incompatible("top-K presence mismatch".into())),
    }
}

/// Classify a configuration mismatch: identical up to the seed means the
/// structures are congruent but hashed differently ([`SeedMismatch`]);
/// anything else changed the geometry or feature set ([`ShapeMismatch`]).
///
/// [`SeedMismatch`]: MergeError::SeedMismatch
/// [`ShapeMismatch`]: MergeError::ShapeMismatch
fn config_merge_error(mine: &ReliableConfig, theirs: &ReliableConfig) -> MergeError {
    let mut reseeded = mine.clone();
    reseeded.seed = theirs.seed;
    if reseeded == *theirs {
        MergeError::SeedMismatch
    } else {
        MergeError::ShapeMismatch
    }
}

/// Conservative "this bucket may have diverted keys deeper" indicator.
///
/// Every lock leaves the bucket with `NO == λᵢ < YES` and freezes it, so
/// `YES > NO ∧ NO ⩾ λᵢ` covers all diverting buckets. The indicator can
/// also fire on buckets that merely filled `NO` to exactly `λᵢ` without
/// ever diverting — a sound over-approximation.
#[inline]
fn may_have_diverted<K: Key>(bucket: &EsBucket<K>, lambda: u64) -> bool {
    bucket.yes() > bucket.no() && bucket.no() >= lambda
}

/// Union `other_layers` into `layers` bucket-wise, maintaining the divert
/// hints: a merged bucket is flagged when either operand flagged it or
/// either operand's bucket [`may_have_diverted`] keys deeper. `hints` is
/// initialized (all false) on first use; an empty `other_hints` means the
/// peer never merged. This is the shared layer half of every `Merge`
/// impl in the workspace — sequential sketches pass their key-space
/// buckets, concurrent sketches their fingerprint-space read-outs.
pub(crate) fn union_layers<K: Key>(
    layers: &mut [Vec<EsBucket<K>>],
    hints: &mut Vec<Vec<bool>>,
    other_layers: &[Vec<EsBucket<K>>],
    other_hints: &[Vec<bool>],
    lambdas: &[u64],
) {
    if hints.is_empty() {
        *hints = layers.iter().map(|l| vec![false; l.len()]).collect();
    }
    for (i, (layer, other_layer)) in layers.iter_mut().zip(other_layers).enumerate() {
        let lambda = lambdas[i];
        for (j, (bucket, other_bucket)) in layer.iter_mut().zip(other_layer).enumerate() {
            let flagged = hints[i][j]
                || other_hints.get(i).is_some_and(|l| l[j])
                || may_have_diverted(bucket, lambda)
                || may_have_diverted(other_bucket, lambda);
            bucket.merge_union(other_bucket);
            hints[i][j] = flagged;
        }
    }
}

impl<K: Key> Merge for ReliableSketch<K> {
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config() != other.config() {
            return Err(config_merge_error(self.config(), other.config()));
        }
        if self.geometry() != other.geometry() {
            return Err(MergeError::ShapeMismatch);
        }
        check_topk_compat(self.top_k_summary(), other.top_k_summary())?;
        let lambdas: Vec<u64> = self.geometry().lambdas().to_vec();

        let (other_filter, other_layers, other_emergency, other_stats, other_hints) =
            other.peer_parts();
        let (filter, layers, emergency, stats, hints) = self.merge_parts();

        match (filter.as_mut(), other_filter.as_ref()) {
            (Some(mine), Some(theirs)) => mine.merge_from(theirs)?,
            (None, None) => {}
            _ => {
                return Err(MergeError::Incompatible(
                    "mice filter presence mismatch".into(),
                ))
            }
        }

        union_layers(layers, hints, other_layers, other_hints, &lambdas);

        emergency.merge_from(other_emergency)?;
        stats.absorb(other_stats);

        if let Some(theirs) = other.top_k_summary() {
            if let Some(mine) = self.top_k_summary_mut().as_mut() {
                mine.merge_from(theirs)?;
            }
        }
        Ok(())
    }
}

/// The peer's mice filter, in whichever form the operand carries it.
enum PeerFilter<'a> {
    None,
    Atomic(&'a crate::filter::AtomicMiceFilter),
    Sequential(&'a crate::filter::MiceFilter),
}

/// Shared epilogue of both concurrent merge flavors. The caller has
/// already checked config + geometry equality and materialized the
/// peer's effective layers. Ordering matters for failure atomicity: all
/// fallible steps (filter presence + shape, which internally check
/// before mutating) run *before* [`ConcurrentReliable::seal_into_overlay`]
/// zeroes the live words, so an error return leaves the sketch
/// unsealed and `is_merged()` false. (The emergency merge after sealing
/// can only fail on a policy mismatch, which config equality rules out.)
fn merge_prepared<K: Key>(
    me: &mut ConcurrentReliable<K>,
    other_layers: &[Vec<EsBucket<u64>>],
    other_hints: &[Vec<bool>],
    peer_filter: PeerFilter<'_>,
    other_emergency: &crate::emergency::EmergencyStore<K>,
    other_failures: u64,
) -> Result<(), MergeError> {
    let lambdas: Vec<u64> = me.geometry().lambdas().to_vec();
    {
        let (filter, _, _, _) = me.merge_parts();
        match (filter.as_mut(), peer_filter) {
            (Some(mine), PeerFilter::Atomic(theirs)) => mine.merge_from(theirs)?,
            (Some(mine), PeerFilter::Sequential(theirs)) => mine.merge_from_sequential(theirs)?,
            (None, PeerFilter::None) => {}
            _ => {
                return Err(MergeError::Incompatible(
                    "mice filter presence mismatch".into(),
                ))
            }
        }
    }
    me.seal_into_overlay();
    let (_, overlay, emergency, failures) = me.merge_parts();
    let overlay = overlay.as_mut().expect("sealed above");
    union_layers(
        &mut overlay.layers,
        &mut overlay.hints,
        other_layers,
        other_hints,
        &lambdas,
    );
    emergency.lock().merge_from(other_emergency)?;
    failures.fetch_add(other_failures, std::sync::atomic::Ordering::Relaxed);
    Ok(())
}

impl<K: Key> Merge for ConcurrentReliable<K> {
    /// Fold another lock-free sketch (identical configuration, hence
    /// identical geometry, fingerprint seed and filter shape) into this
    /// one. Both operands' packed words are read out into fingerprint-
    /// space [`EsBucket`] unions held in a sealed overlay; this sketch's
    /// atomic words are zeroed and keep absorbing post-merge insertions
    /// lock-free. Mice filters add counter-wise (lanes widen so the
    /// uncapped sums fit), emergency stores merge policy-wise.
    ///
    /// Merging is an exclusive (`&mut`) operation: quiesce producers
    /// first, exactly as for [`crate::epoch::EpochedConcurrent::rotate`].
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.config() != other.config() {
            return Err(config_merge_error(self.config(), other.config()));
        }
        if self.geometry() != other.geometry() {
            return Err(MergeError::ShapeMismatch);
        }
        let theirs_topk = other.top_k_summary();
        check_topk_compat(self.top_k_summary().as_ref(), theirs_topk.as_ref())?;
        let (other_layers, other_hints) = other.effective_layers();
        let peer_filter = match other.peer_filter() {
            Some(f) => PeerFilter::Atomic(f),
            None => PeerFilter::None,
        };
        merge_prepared(
            self,
            &other_layers,
            &other_hints,
            peer_filter,
            &other.peer_emergency(),
            other.insertion_failures(),
        )?;
        self.array().stats().absorb(other.array().stats());
        if let (Some(cell), Some(theirs)) = (self.topk_cell(), theirs_topk.as_ref()) {
            cell.lock().merge_from(theirs)?;
        }
        Ok(())
    }
}

impl<K: Key> ConcurrentReliable<K> {
    /// Fold a *sequential* [`ReliableSketch`] twin (same configuration,
    /// same explicit geometry — build both via `with_geometry`) into this
    /// concurrent collector: candidate keys map to their 24-bit
    /// fingerprints, then the ordinary union machinery applies. This is
    /// the mixed-deployment aggregation path — e.g. edge devices running
    /// the sequential sketch, a multi-core collector running the atomic
    /// one.
    ///
    /// # Errors
    /// Rejects mismatched configurations, geometries, or filter shapes
    /// with the [`MergeError`] naming the violated precondition.
    pub fn merge_from_sequential(&mut self, other: &ReliableSketch<K>) -> Result<(), MergeError> {
        if self.config() != other.config() {
            return Err(config_merge_error(self.config(), other.config()));
        }
        if self.geometry() != other.geometry() {
            return Err(MergeError::ShapeMismatch);
        }
        check_topk_compat(self.top_k_summary().as_ref(), other.top_k_summary())?;
        let (other_filter, other_layers, other_emergency, other_stats, other_hints) =
            other.peer_parts();
        let mapped: Vec<Vec<EsBucket<u64>>> = other_layers
            .iter()
            .map(|layer| {
                layer
                    .iter()
                    .map(|b| {
                        EsBucket::from_parts(b.id().map(|k| self.fingerprint(k)), b.yes(), b.no())
                    })
                    .collect()
            })
            .collect();
        let peer_filter = match other_filter.as_ref() {
            Some(f) => PeerFilter::Sequential(f),
            None => PeerFilter::None,
        };
        let other_hints = other_hints.clone();
        let other_inserts = other_stats.inserts();
        merge_prepared(
            self,
            &mapped,
            &other_hints,
            peer_filter,
            other_emergency,
            other.insertion_failures(),
        )?;
        self.array().stats().add_items(other_inserts);
        if let (Some(cell), Some(theirs)) = (self.topk_cell(), other.top_k_summary()) {
            cell.lock().merge_from(theirs)?;
        }
        Ok(())
    }
}

impl<K: Key> Merge for ShardedReliable<K> {
    /// Shard-wise merge: both sketches must have been built from the same
    /// configuration and shard count (which pins the router seed and every
    /// per-shard seed, so shard `i` observed the same key population in
    /// both operands).
    fn merge(&mut self, other: &Self) -> Result<(), MergeError> {
        if self.shards() != other.shards() {
            return Err(MergeError::ShapeMismatch);
        }
        if self.router_seed() != other.router_seed() {
            return Err(MergeError::SeedMismatch);
        }
        for i in 0..self.shards() {
            let theirs = other.shard(i);
            self.shard_mut(i).merge(theirs)?;
        }
        Ok(())
    }
}

/// Fold an iterator of identically configured shards into one sketch.
///
/// Convenience wrapper over repeated [`Merge::merge`]; the first shard
/// becomes the accumulator.
///
/// # Errors
/// Propagates any pairwise [`MergeError`], and rejects an empty iterator
/// as [`MergeError::Incompatible`].
pub fn merge_all<K: Key>(
    shards: impl IntoIterator<Item = ReliableSketch<K>>,
) -> Result<ReliableSketch<K>, MergeError> {
    let mut iter = shards.into_iter();
    let mut acc = iter
        .next()
        .ok_or_else(|| MergeError::Incompatible("no shards to merge".into()))?;
    for shard in iter {
        acc.merge(&shard)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Depth, EmergencyPolicy, ReliableConfig, BUCKET_BYTES};
    use crate::geometry::LayerGeometry;
    use proptest::prelude::*;
    use rsk_api::{Clear, ErrorSensing, StreamSummary};
    use std::collections::HashMap;

    fn shard(seed: u64) -> ReliableSketch<u64> {
        ReliableSketch::<u64>::builder()
            .memory_bytes(32 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(seed)
            .build()
    }

    #[test]
    fn merge_rejects_config_mismatch() {
        let mut a = shard(1);
        assert!(a.merge(&shard(2)).is_err(), "different seeds must fail");

        let b: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(64 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(1)
            .build();
        assert!(a.merge(&b).is_err(), "different memory must fail");

        let c: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(32 * 1024)
            .error_tolerance(50)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(1)
            .build();
        assert!(a.merge(&c).is_err(), "different Λ must fail");
    }

    #[test]
    fn merge_rejects_filter_presence_mismatch() {
        // same config except the mice filter — config inequality catches it
        let mut a = shard(1);
        let raw: ReliableSketch<u64> = ReliableSketch::<u64>::builder()
            .memory_bytes(32 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .raw()
            .seed(1)
            .build();
        assert!(a.merge(&raw).is_err());
    }

    #[test]
    fn merging_empty_shard_changes_nothing() {
        let mut a = shard(3);
        for i in 0..2000u64 {
            a.insert(&(i % 80), 1);
        }
        let before: Vec<_> = (0..80u64).map(|k| a.query_with_error(&k)).collect();
        a.merge(&shard(3)).unwrap();
        assert!(a.is_merged());
        for (k, prev) in (0..80u64).zip(before) {
            let now = a.query_with_error(&k);
            assert_eq!(now.value, prev.value, "key {k} answer changed");
            assert!(now.max_possible_error >= prev.max_possible_error);
        }
    }

    #[test]
    fn split_stream_merge_is_sound_for_all_keys() {
        let mut a = shard(4);
        let mut b = shard(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let k = i % 500;
            let v = 1 + k % 3;
            if i % 2 == 0 {
                a.insert(&k, v);
            } else {
                b.insert(&k, v);
            }
            *truth.entry(k).or_insert(0) += v;
        }
        a.merge(&b).unwrap();
        for (&k, &f) in &truth {
            let est = a.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
        // the combined operation history is reported
        assert_eq!(a.stats().inserts(), 30_000);
    }

    /// The adversarial corner the divert hints exist for: both shards lock
    /// the same bucket around *different* heavy candidates, and mice keys
    /// divert deeper in one shard. Forced via a single-bucket custom
    /// geometry so all keys collide.
    #[test]
    fn both_locked_different_candidates_stays_sound() {
        let config = ReliableConfig {
            memory_bytes: 3 * BUCKET_BYTES,
            lambda: 10,
            r_w: 2.0,
            r_lambda: 2.0,
            depth: Depth::Fixed(3),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            lambda_floor_one: true,
            seed: 9,
        };
        let geometry = LayerGeometry::custom(vec![1, 1, 1], vec![5, 3, 2]).unwrap();
        let build = || ReliableSketch::with_geometry(config.clone(), geometry.clone());

        let (heavy_a, heavy_b) = (111u64, 222u64);
        let mut a = build();
        let mut b = build();
        let mut truth: HashMap<u64, u64> = HashMap::new();

        // shard A: elect heavy_a, then lock layer 1 with mice traffic
        a.insert(&heavy_a, 100);
        *truth.entry(heavy_a).or_insert(0) += 100;
        // shard B: elect heavy_b
        b.insert(&heavy_b, 80);
        *truth.entry(heavy_b).or_insert(0) += 80;
        for m in 0..30u64 {
            let mouse = 1000 + m;
            a.insert(&mouse, 1);
            b.insert(&mouse, 1);
            *truth.entry(mouse).or_insert(0) += 2;
        }

        a.merge(&b).unwrap();
        for (&k, &f) in &truth {
            let est = a.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
    }

    #[test]
    fn post_merge_insertion_remains_sound() {
        let mut a = shard(5);
        let mut b = shard(5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let k = i % 300;
            if i % 2 == 0 {
                a.insert(&k, 1);
            } else {
                b.insert(&k, 1);
            }
            *truth.entry(k).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        // keep streaming into the merged sketch
        for i in 0..10_000u64 {
            let k = i % 300;
            a.insert(&k, 2);
            *truth.entry(k).or_insert(0) += 2;
        }
        for (&k, &f) in &truth {
            let est = a.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
    }

    #[test]
    fn merge_all_folds_many_shards() {
        let shards: Vec<ReliableSketch<u64>> = (0..4)
            .map(|s| {
                let mut sk = shard(6);
                for i in 0..5_000u64 {
                    sk.insert(&((i + s * 13) % 200), 1);
                }
                sk
            })
            .collect();
        let merged = merge_all(shards).unwrap();
        assert!(merged.is_merged());
        assert_eq!(merged.stats().inserts(), 20_000);
        // every key got 25 per shard per residue class; spot-check bounds
        for k in 0..200u64 {
            let est = merged.query_with_error(&k);
            assert!(est.value >= 25, "key {k} undershoots: {est:?}");
        }
    }

    #[test]
    fn merge_all_rejects_empty() {
        assert!(merge_all(Vec::<ReliableSketch<u64>>::new()).is_err());
    }

    #[test]
    fn clear_resets_merged_flag() {
        let mut a = shard(7);
        a.merge(&shard(7)).unwrap();
        assert!(a.is_merged());
        Clear::clear(&mut a);
        assert!(!a.is_merged());
    }

    // ---- concurrent operands ----

    fn conc_config(seed: u64) -> ReliableConfig {
        ReliableConfig {
            memory_bytes: 32 * 1024,
            lambda: 25,
            emergency: EmergencyPolicy::ExactTable,
            seed,
            ..Default::default()
        }
    }

    fn conc_shard(seed: u64) -> crate::atomic::ConcurrentReliable<u64> {
        crate::atomic::ConcurrentReliable::new(conc_config(seed))
    }

    #[test]
    fn concurrent_merge_rejects_mismatches() {
        let mut a = conc_shard(1);
        assert!(
            a.merge(&conc_shard(2)).is_err(),
            "different seeds must fail"
        );
        let bigger = crate::atomic::ConcurrentReliable::<u64>::new(ReliableConfig {
            memory_bytes: 64 * 1024,
            ..conc_config(1)
        });
        assert!(a.merge(&bigger).is_err(), "different memory must fail");
        let raw = crate::atomic::ConcurrentReliable::<u64>::new(ReliableConfig {
            mice_filter: None,
            ..conc_config(1)
        });
        assert!(a.merge(&raw).is_err(), "filter presence must fail");
    }

    #[test]
    fn concurrent_split_stream_merge_is_sound() {
        // filtered lock-free shards over a split stream: the merged
        // intervals must contain the combined truth for every key
        let mut a = conc_shard(4);
        let b = conc_shard(4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..30_000u64 {
            let k = i % 500;
            let v = 1 + k % 3;
            if i % 2 == 0 {
                a.insert_concurrent(&k, v);
            } else {
                b.insert_concurrent(&k, v);
            }
            *truth.entry(k).or_insert(0) += v;
        }
        a.merge(&b).unwrap();
        assert!(a.is_merged());
        for (&k, &f) in &truth {
            let est = a.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }
        // the combined operation history is reported
        assert_eq!(a.array().stats().items(), 30_000);
    }

    #[test]
    fn concurrent_post_merge_insertion_remains_sound() {
        let mut a = conc_shard(5);
        let b = conc_shard(5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..10_000u64 {
            let k = i % 300;
            if i % 2 == 0 {
                a.insert_concurrent(&k, 1);
            } else {
                b.insert_concurrent(&k, 1);
            }
            *truth.entry(k).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        // keep streaming into the merged sketch — lock-free, from threads
        std::thread::scope(|s| {
            for _ in 0..2 {
                let a = &a;
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        a.insert_concurrent(&(i % 300), 2);
                    }
                });
            }
        });
        for i in 0..5_000u64 {
            *truth.entry(i % 300).or_insert(0) += 4;
        }
        let slack = a.contention_undershoot_bound();
        for (&k, &f) in &truth {
            let est = a.query_with_error(&k);
            assert!(est.value + slack >= f, "key {k}: {est:?} ≪ {f}");
            assert!(est.value <= f + est.max_possible_error, "key {k} overshoot");
        }
    }

    #[test]
    fn sequential_folds_into_concurrent_collector() {
        // the mixed-deployment path: a sequential edge sketch and a
        // concurrent collector twin (same config, same geometry), merged,
        // must certify the combined stream — and agree with a single
        // sketch that replayed everything, up to the union's extra
        // (honestly reported) ambiguity
        let config = conc_config(6);
        let geometry = LayerGeometry::derive(
            config.layer_bytes() / crate::atomic::ATOMIC_BUCKET_BYTES,
            config.layer_lambda(),
            config.r_w,
            config.r_lambda,
            config.depth,
            config.lambda_floor_one,
        );
        let mut seq = ReliableSketch::<u64>::with_geometry(config.clone(), geometry.clone());
        let mut conc = crate::atomic::ConcurrentReliable::<u64>::with_geometry(
            config.clone(),
            geometry.clone(),
        );
        let replay = crate::atomic::ConcurrentReliable::<u64>::with_geometry(config, geometry);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..20_000u64 {
            let k = i % 400;
            let v = 1 + k % 4;
            if i % 2 == 0 {
                seq.insert(&k, v);
            } else {
                conc.insert_concurrent(&k, v);
            }
            replay.insert_concurrent(&k, v);
            *truth.entry(k).or_insert(0) += v;
        }
        conc.merge_from_sequential(&seq).unwrap();
        assert!(conc.is_merged());
        for (&k, &f) in &truth {
            let est = conc.query_with_error(&k);
            let rep = replay.query_with_error(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
            assert!(rep.contains(f), "key {k}: replay lost {f}");
            assert!(
                est.value >= rep.lower_bound(),
                "key {k}: merged answer below the replay's certified floor"
            );
        }
        assert_eq!(conc.insertion_failures(), 0);
    }

    #[test]
    fn mixed_merge_orders_agree_and_stay_sound() {
        // merge "associativity" on the soundness level: folding three
        // operands (two concurrent, one sequential) in different orders
        // yields certified intervals for the combined truth either way.
        // (Bit-identical answers across orders are not promised: divert
        // hints are computed on intermediate unions, so different fold
        // orders may report different, equally honest MPEs.)
        let config = conc_config(7);
        let geometry = LayerGeometry::derive(
            config.layer_bytes() / crate::atomic::ATOMIC_BUCKET_BYTES,
            config.layer_lambda(),
            config.r_w,
            config.r_lambda,
            config.depth,
            config.lambda_floor_one,
        );
        let build_conc = || {
            crate::atomic::ConcurrentReliable::<u64>::with_geometry(
                config.clone(),
                geometry.clone(),
            )
        };
        let build_seq = || ReliableSketch::<u64>::with_geometry(config.clone(), geometry.clone());

        let mut truth: HashMap<u64, u64> = HashMap::new();
        let (mut a1, mut a2) = (build_conc(), build_conc());
        let (b1, b2) = (build_conc(), build_conc());
        let (mut s1, mut s2) = (build_seq(), build_seq());
        for i in 0..15_000u64 {
            let k = i % 350;
            let v = 1 + k % 2;
            match i % 3 {
                0 => {
                    a1.insert_concurrent(&k, v);
                    a2.insert_concurrent(&k, v);
                }
                1 => {
                    b1.insert_concurrent(&k, v);
                    b2.insert_concurrent(&k, v);
                }
                _ => {
                    s1.insert(&k, v);
                    s2.insert(&k, v);
                }
            }
            *truth.entry(k).or_insert(0) += v;
        }
        // order 1: (a ∪ b) ∪ seq ; order 2: (a ∪ seq) ∪ b
        a1.merge(&b1).unwrap();
        a1.merge_from_sequential(&s1).unwrap();
        a2.merge_from_sequential(&s2).unwrap();
        a2.merge(&b2).unwrap();
        for (&k, &f) in &truth {
            let e1 = a1.query_with_error(&k);
            let e2 = a2.query_with_error(&k);
            assert!(e1.contains(f), "order 1, key {k}: {f} ∉ {e1:?}");
            assert!(e2.contains(f), "order 2, key {k}: {f} ∉ {e2:?}");
        }
    }

    #[test]
    fn sharded_merge_is_shard_wise_and_checked() {
        use crate::concurrent::ShardedReliable;
        let config = conc_config(8);
        let mut a = ShardedReliable::<u64>::new(config.clone(), 4);
        let b = ShardedReliable::<u64>::new(config.clone(), 4);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..40_000u64 {
            let k = i % 900;
            if i % 2 == 0 {
                a.insert_shared(&k, 1);
            } else {
                b.insert_shared(&k, 1);
            }
            *truth.entry(k).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        for (&k, &f) in &truth {
            let est = a.query_shared(&k);
            assert!(est.contains(f), "key {k}: {f} ∉ {est:?}");
        }

        let wrong_count = ShardedReliable::<u64>::new(config, 8);
        assert!(a.merge(&wrong_count).is_err());
        let wrong_seed = ShardedReliable::<u64>::new(conc_config(9), 4);
        assert!(a.merge(&wrong_seed).is_err());
    }

    #[test]
    fn merged_top_k_certifies_combined_elephants() {
        use rsk_api::TopK;
        let mut a = shard(11).with_top_k(8);
        let mut b = shard(11).with_top_k(8);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        // shared mice noise plus disjoint elephants per shard
        for i in 0..4_000u64 {
            let k = i % 400;
            a.insert(&k, 1);
            b.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 2;
        }
        for _ in 0..3_000 {
            a.insert(&9001, 1);
            *truth.entry(9001).or_insert(0) += 1;
        }
        for _ in 0..2_000 {
            b.insert(&9002, 1);
            *truth.entry(9002).or_insert(0) += 1;
        }
        a.merge(&b).unwrap();
        let top = a.certified_top_k(2);
        let keys: Vec<u64> = top.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![9001, 9002]);
        for e in &top.entries {
            assert!(
                e.contains(truth[&e.key]),
                "key {}: {} ∉ [{}, {}]",
                e.key,
                truth[&e.key],
                e.lower_bound(),
                e.count
            );
        }
    }

    #[test]
    fn merge_rejects_top_k_mismatch_before_mutating() {
        use rsk_api::TopK;
        let mut a = shard(12).with_top_k(8);
        a.insert(&1, 500);
        let before = a.certified_top_k(1);

        // presence mismatch: peer has no layer
        let plain = shard(12);
        assert!(matches!(a.merge(&plain), Err(MergeError::Incompatible(_))));
        // capacity mismatch
        let narrow = shard(12).with_top_k(4);
        assert!(matches!(a.merge(&narrow), Err(MergeError::Incompatible(_))));
        // a failed merge left the sketch untouched
        assert!(!a.is_merged());
        assert_eq!(a.certified_top_k(1), before);

        // concurrent twin rejects the same way, before sealing
        let mut ca = conc_shard(12);
        ca.enable_top_k(8);
        assert!(ca.merge(&conc_shard(12)).is_err());
        assert!(!ca.is_merged());
        let seq_plain = ReliableSketch::<u64>::new(conc_config(12));
        assert!(ca.merge_from_sequential(&seq_plain).is_err());
        assert!(!ca.is_merged());
    }

    #[test]
    fn concurrent_and_mixed_merges_union_top_k() {
        use rsk_api::TopK;
        let config = conc_config(13);
        let geometry = LayerGeometry::derive(
            config.layer_bytes() / crate::atomic::ATOMIC_BUCKET_BYTES,
            config.layer_lambda(),
            config.r_w,
            config.r_lambda,
            config.depth,
            config.lambda_floor_one,
        );
        let mut collector = crate::atomic::ConcurrentReliable::<u64>::with_geometry(
            config.clone(),
            geometry.clone(),
        )
        .with_top_k(8);
        let peer = crate::atomic::ConcurrentReliable::<u64>::with_geometry(
            config.clone(),
            geometry.clone(),
        )
        .with_top_k(8);
        let mut edge = ReliableSketch::<u64>::with_geometry(config, geometry).with_top_k(8);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for i in 0..3_000u64 {
            let k = i % 300;
            collector.insert_concurrent(&k, 1);
            peer.insert_concurrent(&k, 1);
            edge.insert(&k, 1);
            *truth.entry(k).or_insert(0) += 3;
        }
        for _ in 0..2_000 {
            peer.insert_concurrent(&7001, 1);
            *truth.entry(7001).or_insert(0) += 1;
        }
        for _ in 0..1_500 {
            edge.insert(&7002, 1);
            *truth.entry(7002).or_insert(0) += 1;
        }
        collector.merge(&peer).unwrap();
        collector.merge_from_sequential(&edge).unwrap();
        let top = collector.certified_top_k(2);
        let keys: Vec<u64> = top.entries.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![7001, 7002]);
        for e in &top.entries {
            assert!(
                e.contains(truth[&e.key]),
                "key {}: {} ∉ [{}, {}]",
                e.key,
                truth[&e.key],
                e.lower_bound(),
                e.count
            );
        }
    }

    #[test]
    fn concurrent_clear_resets_merged_state() {
        let mut a = conc_shard(10);
        for i in 0..2_000u64 {
            a.insert_concurrent(&(i % 50), 1);
        }
        a.merge(&conc_shard(10)).unwrap();
        assert!(a.is_merged());
        Clear::clear(&mut a);
        assert!(!a.is_merged());
        for k in 0..50u64 {
            assert_eq!(a.query_with_error(&k).value, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Certified intervals survive merging: any stream, any 3-way shard
        /// assignment, every key's combined truth is inside the merged
        /// interval (exact emergency tables make the contract
        /// unconditional).
        #[test]
        fn prop_merged_intervals_contain_combined_truth(
            ops in proptest::collection::vec((0u64..200, 1u64..6, 0usize..3), 1..1500),
            seed in 0u64..16,
        ) {
            let build = || {
                let config = ReliableConfig {
                    memory_bytes: 6 * 1024,
                    lambda: 25,
                    emergency: EmergencyPolicy::ExactTable,
                    seed,
                    ..Default::default()
                };
                ReliableSketch::<u64>::new(config)
            };
            let mut shards = [build(), build(), build()];
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v, s) in ops {
                shards[s].insert(&k, v);
                *truth.entry(k).or_insert(0) += v;
            }
            let [a, b, c] = shards;
            let merged = merge_all([a, b, c]).unwrap();
            for (&k, &f) in &truth {
                let est = merged.query_with_error(&k);
                prop_assert!(est.contains(f),
                    "key {}: {} ∉ [{}, {}]", k, f, est.lower_bound(), est.value);
            }
        }

        /// Merging never lowers an answer below either shard's own answer
        /// floor: the merged upper bound still dominates the combined
        /// truth even when buckets were locked on both sides (raw variant,
        /// tiny memory, heavy collisions).
        #[test]
        fn prop_merge_under_pressure(
            ops in proptest::collection::vec((0u64..20, 1u64..40, proptest::bool::ANY), 1..600),
            seed in 0u64..8,
        ) {
            let config = ReliableConfig {
                memory_bytes: 8 * BUCKET_BYTES,
                lambda: 6,
                r_w: 2.0,
                r_lambda: 2.0,
                depth: Depth::Fixed(3),
                mice_filter: None,
                emergency: EmergencyPolicy::ExactTable,
                lambda_floor_one: true,
                seed,
            };
            let mut a = ReliableSketch::<u64>::new(config.clone());
            let mut b = ReliableSketch::<u64>::new(config);
            let mut truth: HashMap<u64, u64> = HashMap::new();
            for (k, v, to_a) in ops {
                if to_a { a.insert(&k, v); } else { b.insert(&k, v); }
                *truth.entry(k).or_insert(0) += v;
            }
            a.merge(&b).unwrap();
            for (&k, &f) in &truth {
                let est = a.query_with_error(&k);
                prop_assert!(est.contains(f),
                    "key {}: {} ∉ [{}, {}]", k, f, est.lower_bound(), est.value);
            }
        }
    }
}
