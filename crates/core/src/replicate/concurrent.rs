//! Replication payloads for the lock-free types:
//! [`ConcurrentReliable`], [`EpochedConcurrent`] and [`ShardedReliable`].
//!
//! Snapshots mirror a sketch's complete logical state; deltas carry only
//! the buckets whose dirty bit is set (plus changed mice-filter
//! counters, the emergency remainder and the failure gauge). Delta
//! entries hold *current* packed fields — applying one is idempotent
//! replacement, never addition — so a re-shipped delta cannot corrupt a
//! replica. Capture transparently widens to a full snapshot whenever a
//! delta could not describe the gap: no prior cut, a merge mutated the
//! sealed overlay (`merge_epoch` mismatch), or more than one window
//! rotation since the cut.

use super::codec::{self, PayloadKind};
use super::sequential::EmergencyState;
use super::ReplicaCut;
use crate::atomic::{ConcurrentReliable, MergedOverlay, COUNT_MAX, ERR_MAX, FP_MASK};
use crate::bucket::EsBucket;
use crate::concurrent::ShardedReliable;
use crate::config::ReliableConfig;
use crate::epoch::EpochedConcurrent;
use crate::geometry::LayerGeometry;
use rsk_api::{Key, Replicate, ReplicateError};
use serde::{Deserialize, Serialize};

/// Occupied packed words, layer by layer: `(index, fingerprint, yes, no)`.
type WordEntries = Vec<Vec<(u32, u64, u64, u64)>>;

/// The sealed merge overlay of a merged sketch, sparsely encoded.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlayState {
    /// Occupied overlay buckets, layer by layer:
    /// `(index, fingerprint, yes, no)` — the fingerprint is `None` for a
    /// bucket holding pure collision volume.
    pub layers: super::SparseBucketRows,
    /// Indices of merge-flagged (divert-hinted) buckets, layer by layer.
    pub hints: Vec<Vec<u32>>,
}

impl OverlayState {
    pub(crate) fn capture(overlay: &MergedOverlay) -> Self {
        OverlayState {
            layers: overlay
                .layers
                .iter()
                .map(|layer| {
                    layer
                        .iter()
                        .enumerate()
                        .filter(|(_, b)| !b.is_empty())
                        .map(|(j, b)| (j as u32, b.id().copied(), b.yes(), b.no()))
                        .collect()
                })
                .collect(),
            hints: overlay
                .hints
                .iter()
                .map(|layer| {
                    layer
                        .iter()
                        .enumerate()
                        .filter(|(_, &h)| h)
                        .map(|(j, _)| j as u32)
                        .collect()
                })
                .collect(),
        }
    }

    pub(crate) fn into_overlay(
        self,
        geometry: &LayerGeometry,
    ) -> Result<MergedOverlay, ReplicateError> {
        if self.layers.len() != geometry.depth() || self.hints.len() != geometry.depth() {
            return Err(ReplicateError::Corrupt(
                "overlay layer count does not match the schedule".into(),
            ));
        }
        let mut layers: Vec<Vec<EsBucket<u64>>> = geometry
            .widths()
            .iter()
            .map(|&w| (0..w).map(|_| EsBucket::new()).collect())
            .collect();
        let mut hints: Vec<Vec<bool>> = geometry.widths().iter().map(|&w| vec![false; w]).collect();
        for (i, layer) in self.layers.into_iter().enumerate() {
            let w = geometry.width(i);
            for (j, id, yes, no) in layer {
                if j as usize >= w {
                    return Err(ReplicateError::Corrupt(format!(
                        "overlay bucket index {j} out of range for layer {i} (width {w})"
                    )));
                }
                layers[i][j as usize] = EsBucket::from_parts(id, yes, no);
            }
        }
        for (i, layer) in self.hints.into_iter().enumerate() {
            let w = geometry.width(i);
            for j in layer {
                if j as usize >= w {
                    return Err(ReplicateError::Corrupt(format!(
                        "overlay hint index {j} out of range for layer {i} (width {w})"
                    )));
                }
                hints[i][j as usize] = true;
            }
        }
        Ok(MergedOverlay { layers, hints })
    }
}

/// A complete mirror of a [`ConcurrentReliable`]'s logical state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrentSnapshot<K> {
    /// The configuration the sketch was built from.
    pub config: ReliableConfig,
    /// Materialized layer widths.
    pub widths: Vec<usize>,
    /// Materialized lock thresholds.
    pub lambdas: Vec<u64>,
    /// Occupied live packed words: `(index, fingerprint, yes, no)` per
    /// layer, ascending by index.
    pub words: Vec<Vec<(u32, u64, u64, u64)>>,
    /// The sealed merge overlay, if the sketch was merged.
    pub overlay: Option<OverlayState>,
    /// Mice-filter counter rows, if the filter exists.
    pub filter_rows: Option<Vec<Vec<u64>>>,
    /// Emergency-store contents.
    pub emergency: EmergencyState<K>,
    /// Failed insert operations.
    pub failures: u64,
}

/// Buckets touched since the last replication cut, plus the
/// off-bucket state that cannot be diffed cheaply (emergency store,
/// failure gauge) shipped whole.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrentDelta<K> {
    /// The configuration of the sketch that cut the delta (the replica
    /// must match it exactly).
    pub config: ReliableConfig,
    /// Dirty packed words with their *current* fields:
    /// `(index, fingerprint, yes, no)` per layer — replace semantics.
    pub words: Vec<Vec<(u32, u64, u64, u64)>>,
    /// Mice-filter counters that changed since the cut:
    /// `(row, index, current value)`. `None` when the sketch has no
    /// filter.
    pub filter_diff: Option<Vec<(u32, u32, u64)>>,
    /// Emergency-store contents (shipped whole; replace).
    pub emergency: EmergencyState<K>,
    /// Failed insert operations (cumulative; replace).
    pub failures: u64,
}

/// What one generation ships at a cut: a delta when the dirty map tells
/// the whole story since the previous cut, otherwise a full snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum GenPayload<K> {
    /// The generation's complete state.
    Full(ConcurrentSnapshot<K>),
    /// Only what changed since the previous cut.
    Delta(ConcurrentDelta<K>),
}

/// A complete mirror of an [`EpochedConcurrent`] window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochedSnapshot<K> {
    /// The window's epoch index at capture.
    pub epoch: u64,
    /// The active generation.
    pub active: ConcurrentSnapshot<K>,
    /// The sealed previous epoch, if one exists.
    pub frozen: Option<ConcurrentSnapshot<K>>,
}

/// What changed in a window since the last cut, spanning at most one
/// rotation (two or more rotations discard state a delta cannot
/// describe, so capture falls back to an [`EpochedSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochedDelta<K> {
    /// The epoch the replica must be at for this delta to apply.
    pub base_epoch: u64,
    /// The primary's epoch after this delta (`base_epoch` or
    /// `base_epoch + 1`).
    pub epoch: u64,
    /// With one rotation: the final changes to the generation that was
    /// active at the cut and is now frozen. `None` without a rotation
    /// (a frozen generation is sealed — it cannot change).
    pub frozen: Option<GenPayload<K>>,
    /// The active generation's changes — always [`GenPayload::Full`]
    /// after a rotation (the generation is new).
    pub active: GenPayload<K>,
}

/// A complete mirror of a [`ShardedReliable`] (per-shard snapshots plus
/// the routing seed the replica needs to agree on key placement).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedSnapshot<K> {
    /// The routing-hash seed.
    pub router_seed: u32,
    /// One snapshot per shard, in shard order.
    pub shards: Vec<ConcurrentSnapshot<K>>,
}

/// Per-shard cut payloads (each shard independently ships a delta or
/// falls back to a full snapshot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedDelta<K> {
    /// The routing-hash seed (must match the replica's).
    pub router_seed: u32,
    /// One payload per shard, in shard order.
    pub shards: Vec<GenPayload<K>>,
}

/// Reject word entries that do not fit the schedule or the packed
/// bucket word, before anything is mutated.
fn validate_entries(words: &WordEntries, geometry: &LayerGeometry) -> Result<(), ReplicateError> {
    if words.len() != geometry.depth() {
        return Err(ReplicateError::Corrupt(format!(
            "payload has {} layers, schedule {}",
            words.len(),
            geometry.depth()
        )));
    }
    for (i, layer) in words.iter().enumerate() {
        let w = geometry.width(i);
        for &(j, fp, yes, no) in layer {
            if j as usize >= w {
                return Err(ReplicateError::Corrupt(format!(
                    "bucket index {j} out of range for layer {i} (width {w})"
                )));
            }
            if fp > FP_MASK || yes > COUNT_MAX || no > ERR_MAX {
                return Err(ReplicateError::Corrupt(format!(
                    "bucket ({i}, {j}) fields overflow the packed word"
                )));
            }
        }
    }
    Ok(())
}

/// Counter rows that changed between two row grids of identical shape,
/// as `(row, index, current value)` triples.
fn diff_rows(base: &[Vec<u64>], now: &[Vec<u64>]) -> Vec<(u32, u32, u64)> {
    let mut out = Vec::new();
    for (r, (b_row, n_row)) in base.iter().zip(now).enumerate() {
        for (j, (&b, &n)) in b_row.iter().zip(n_row).enumerate() {
            if b != n {
                out.push((r as u32, j as u32, n));
            }
        }
    }
    out
}

impl<K: Key> ConcurrentReliable<K> {
    /// Capture a plain-data mirror of the sketch's full logical state
    /// (live packed words, sealed overlay, filter counters, emergency
    /// remainder, failure gauge). Like the sequential
    /// [`crate::ReliableSketch::snapshot`], operation statistics are not
    /// persisted.
    pub fn snapshot(&self) -> ConcurrentSnapshot<K> {
        let array = self.array();
        let words = (0..array.depth())
            .map(|i| {
                (0..array.width(i))
                    .filter_map(|j| {
                        let (fp, yes, no) = array.read(i, j);
                        (fp != 0 || yes != 0 || no != 0).then_some((j as u32, fp, yes, no))
                    })
                    .collect()
            })
            .collect();
        ConcurrentSnapshot {
            config: self.config().clone(),
            widths: self.geometry().widths().to_vec(),
            lambdas: self.geometry().lambdas().to_vec(),
            words,
            overlay: self.overlay().map(OverlayState::capture),
            filter_rows: self.filter().map(|f| f.rows_snapshot()),
            emergency: EmergencyState::capture(&self.peer_emergency()),
            failures: self.insertion_failures(),
        }
    }

    /// Rebuild a sketch from a [`ConcurrentSnapshot`].
    ///
    /// # Errors
    /// [`ReplicateError::Corrupt`] for invalid configurations, malformed
    /// schedules, out-of-range bucket entries or filter-shape mismatches;
    /// [`ReplicateError::Incompatible`] for an emergency policy mismatch.
    pub fn restore(snapshot: ConcurrentSnapshot<K>) -> Result<Self, ReplicateError> {
        snapshot
            .config
            .validate()
            .map_err(ReplicateError::Corrupt)?;
        if let Some(&l) = snapshot.lambdas.iter().find(|&&l| l > ERR_MAX) {
            return Err(ReplicateError::Corrupt(format!(
                "layer threshold {l} exceeds the packed error field ({ERR_MAX})"
            )));
        }
        let geometry = LayerGeometry::custom(snapshot.widths, snapshot.lambdas)
            .map_err(ReplicateError::Corrupt)?;
        validate_entries(&snapshot.words, &geometry)?;
        let overlay = snapshot
            .overlay
            .map(|o| o.into_overlay(&geometry))
            .transpose()?;

        let mut sk = ConcurrentReliable::with_geometry(snapshot.config, geometry);
        {
            let (filter, merged, _, _) = sk.merge_parts();
            match (filter.as_mut(), &snapshot.filter_rows) {
                (Some(f), Some(rows)) => f.restore_rows(rows).map_err(ReplicateError::Corrupt)?,
                (None, None) => {}
                _ => {
                    return Err(ReplicateError::Corrupt(
                        "snapshot filter presence mismatch".into(),
                    ))
                }
            }
            *merged = overlay;
        }
        {
            let array = sk.array_mut();
            for (i, layer) in snapshot.words.iter().enumerate() {
                for &(j, fp, yes, no) in layer {
                    array.store_bucket(i, j as usize, fp, yes, no);
                }
            }
        }
        {
            let (_, _, emergency, _) = sk.merge_parts();
            snapshot.emergency.install(&mut emergency.lock())?;
        }
        sk.set_failures(snapshot.failures);
        Ok(sk)
    }

    /// Full snapshot that *also* records a replication cut, so the next
    /// [`Self::delta`] can ship only what changes from here.
    fn full_cut(&mut self) -> ConcurrentSnapshot<K> {
        let snapshot = self.snapshot();
        let cut = ReplicaCut {
            filter_rows: snapshot.filter_rows.clone(),
            merge_epoch: self.merge_epoch(),
        };
        self.set_replica_cut(cut);
        snapshot
    }

    /// Cut a replication payload: the buckets dirtied since the last cut
    /// (plus filter/emergency/failure state), or a full snapshot when no
    /// cut exists yet or a merge has mutated the sealed overlay since.
    /// Exclusive (`&mut`): producers must be quiescent across the cut,
    /// as for [`rsk_api::Merge`].
    pub fn delta(&mut self) -> GenPayload<K> {
        let need_full = match self.replica_cut() {
            None => true,
            Some(cut) => cut.merge_epoch != self.merge_epoch(),
        };
        if need_full {
            return GenPayload::Full(self.full_cut());
        }

        let dirty = self.array().dirty_indices();
        let words = dirty
            .iter()
            .enumerate()
            .map(|(i, idxs)| {
                idxs.iter()
                    .map(|&j| {
                        let (fp, yes, no) = self.array().read(i, j as usize);
                        (j, fp, yes, no)
                    })
                    .collect()
            })
            .collect();
        let rows_now = self.filter().map(|f| f.rows_snapshot());
        let filter_diff = match (
            &rows_now,
            self.replica_cut().and_then(|c| c.filter_rows.as_ref()),
        ) {
            (Some(now), Some(base)) => Some(diff_rows(base, now)),
            (None, None) => None,
            // filter presence cannot change over a sketch's lifetime;
            // a disagreeing cut is stale — recover with a full payload
            _ => return GenPayload::Full(self.full_cut()),
        };
        let delta = ConcurrentDelta {
            config: self.config().clone(),
            words,
            filter_diff,
            emergency: EmergencyState::capture(&self.peer_emergency()),
            failures: self.insertion_failures(),
        };
        self.set_replica_cut(ReplicaCut {
            filter_rows: rows_now,
            merge_epoch: self.merge_epoch(),
        });
        GenPayload::Delta(delta)
    }

    /// Overwrite this replica's dirty state with a [`ConcurrentDelta`]
    /// cut from a primary it mirrors.
    ///
    /// All-or-nothing: every validation runs before the first write, so
    /// an error leaves the replica exactly as it was.
    ///
    /// # Errors
    /// [`ReplicateError::Incompatible`] when the delta's configuration
    /// (or filter/emergency shape) does not match this sketch;
    /// [`ReplicateError::Corrupt`] for entries that do not fit the
    /// schedule or the packed word.
    pub fn apply_delta(&mut self, delta: ConcurrentDelta<K>) -> Result<(), ReplicateError> {
        if delta.config != *self.config() {
            return Err(ReplicateError::Incompatible(
                "delta configuration does not match the replica".into(),
            ));
        }
        validate_entries(&delta.words, self.geometry())?;
        if self.filter().is_some() != delta.filter_diff.is_some() {
            return Err(ReplicateError::Incompatible(
                "delta filter presence mismatch".into(),
            ));
        }
        // Stage the emergency replacement on a clone so shape errors
        // surface before any write reaches the live sketch.
        let mut staged = self.peer_emergency();
        delta.emergency.install(&mut staged)?;

        if let Some(diffs) = &delta.filter_diff {
            let (filter, _, _, _) = self.merge_parts();
            filter
                .as_mut()
                .expect("presence checked above")
                .overwrite_counters(diffs)
                .map_err(ReplicateError::Corrupt)?;
        }
        {
            let array = self.array_mut();
            for (i, layer) in delta.words.iter().enumerate() {
                for &(j, fp, yes, no) in layer {
                    array.store_bucket(i, j as usize, fp, yes, no);
                }
            }
        }
        {
            let (_, _, emergency, _) = self.merge_parts();
            *emergency.lock() = staged;
        }
        self.set_failures(delta.failures);
        // Replicated counters arrive without their promotion history, so
        // any top-K summary on this replica is stale: drop it and answer
        // vacuously (mirrors full-snapshot restores, which never carry
        // a summary).
        self.invalidate_top_k();
        Ok(())
    }

    /// Apply either arm of a [`GenPayload`]: a delta in place, or a full
    /// snapshot as wholesale replacement (the configurations must match —
    /// a generation payload targets a specific slot).
    pub fn apply(&mut self, payload: GenPayload<K>) -> Result<(), ReplicateError> {
        match payload {
            GenPayload::Full(s) => {
                if s.config != *self.config() {
                    return Err(ReplicateError::Incompatible(
                        "snapshot configuration does not match the replica".into(),
                    ));
                }
                *self = ConcurrentReliable::restore(s)?;
                Ok(())
            }
            GenPayload::Delta(d) => self.apply_delta(d),
        }
    }
}

impl<K: Key + Serialize + Deserialize> Replicate for ConcurrentReliable<K> {
    fn snapshot_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(codec::to_bytes(
            PayloadKind::ConcurrentSnapshot,
            &self.snapshot(),
        ))
    }

    fn slim_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(super::SlimSummary::from_concurrent(self).to_bytes())
    }

    fn delta_bytes(&mut self) -> Result<Vec<u8>, ReplicateError> {
        Ok(match self.delta() {
            GenPayload::Full(s) => codec::to_bytes(PayloadKind::ConcurrentSnapshot, &s),
            GenPayload::Delta(d) => codec::to_bytes(PayloadKind::ConcurrentDelta, &d),
        })
    }

    fn apply_bytes(&mut self, payload: &[u8]) -> Result<(), ReplicateError> {
        match codec::payload_kind(payload)? {
            PayloadKind::ConcurrentSnapshot => {
                let s = codec::from_bytes(PayloadKind::ConcurrentSnapshot, payload)?;
                *self = Self::restore(s)?;
                Ok(())
            }
            PayloadKind::ConcurrentDelta => {
                self.apply_delta(codec::from_bytes(PayloadKind::ConcurrentDelta, payload)?)
            }
            other => Err(ReplicateError::Incompatible(format!(
                "cannot apply a {other} payload to a concurrent sketch"
            ))),
        }
    }
}

impl<K: Key> EpochedConcurrent<K> {
    /// Capture a plain-data mirror of the whole window (both visible
    /// generations and the epoch index).
    pub fn snapshot(&self) -> EpochedSnapshot<K> {
        EpochedSnapshot {
            epoch: self.epoch(),
            active: self.active().snapshot(),
            frozen: self.frozen().map(ConcurrentReliable::snapshot),
        }
    }

    /// Rebuild a window from an [`EpochedSnapshot`].
    ///
    /// # Errors
    /// Propagates the generation-level [`ReplicateError`]s, plus
    /// [`ReplicateError::Incompatible`] when the two generations were
    /// built from different configurations (a window shares one).
    pub fn restore(snapshot: EpochedSnapshot<K>) -> Result<Self, ReplicateError> {
        let active = ConcurrentReliable::restore(snapshot.active)?;
        let frozen = snapshot
            .frozen
            .map(ConcurrentReliable::restore)
            .transpose()?;
        let config = active.config().clone();
        if let Some(f) = &frozen {
            if f.config() != &config {
                return Err(ReplicateError::Incompatible(
                    "window generations disagree on configuration".into(),
                ));
            }
        }
        let mut window = EpochedConcurrent::new(config.clone());
        window.install(active, frozen, config, snapshot.epoch);
        Ok(window)
    }

    /// Full window snapshot that also records the replication cut on
    /// every visible generation and the window itself.
    fn full_window_cut(&mut self) -> EpochedSnapshot<K> {
        let epoch = self.epoch();
        let active = self.active_mut().full_cut();
        let frozen = self.frozen_mut().map(ConcurrentReliable::full_cut);
        self.set_cut_epoch();
        EpochedSnapshot {
            epoch,
            active,
            frozen,
        }
    }

    /// Cut a window delta spanning at most one rotation; `None` means a
    /// delta cannot describe the gap and the caller should ship
    /// [`Self::full_window_cut`] instead.
    fn window_delta(&mut self) -> Option<EpochedDelta<K>> {
        let base = self.cut_epoch()?;
        let epoch = self.epoch();
        match epoch.checked_sub(base)? {
            0 => {
                let active = self.active_mut().delta();
                self.set_cut_epoch();
                Some(EpochedDelta {
                    base_epoch: base,
                    epoch,
                    frozen: None,
                    active,
                })
            }
            1 => {
                // The generation that was active at the cut moved to the
                // frozen slot, its cut state traveling with it.
                let frozen = self.frozen_mut().map(ConcurrentReliable::delta);
                let active = self.active_mut().delta();
                self.set_cut_epoch();
                Some(EpochedDelta {
                    base_epoch: base,
                    epoch,
                    frozen,
                    active,
                })
            }
            _ => None,
        }
    }

    /// Advance this replica window by one [`EpochedDelta`].
    ///
    /// All-or-nothing: for a rotation delta the incoming active
    /// generation is restored *before* any live state mutates, so an
    /// error leaves the window exactly as it was.
    fn apply_window_delta(&mut self, delta: EpochedDelta<K>) -> Result<(), ReplicateError> {
        if delta.base_epoch != self.epoch() {
            return Err(ReplicateError::Incompatible(format!(
                "delta expects the replica at epoch {}, found {}",
                delta.base_epoch,
                self.epoch()
            )));
        }
        match delta.epoch.checked_sub(delta.base_epoch) {
            Some(0) => {
                if delta.frozen.is_some() {
                    return Err(ReplicateError::Corrupt(
                        "rotation-free window delta carries a frozen part".into(),
                    ));
                }
                self.active_mut().apply(delta.active)?;
                // Replica windows track counters, not promotion history:
                // no generation's top-K summary survives an apply.
                self.invalidate_top_k();
                Ok(())
            }
            Some(1) => {
                let new_active = match delta.active {
                    GenPayload::Full(s) => {
                        if s.config != *self.config() {
                            return Err(ReplicateError::Incompatible(
                                "rotated generation configuration does not match the window".into(),
                            ));
                        }
                        ConcurrentReliable::restore(s)?
                    }
                    GenPayload::Delta(_) => {
                        return Err(ReplicateError::Corrupt(
                            "rotation delta must carry a full active generation".into(),
                        ))
                    }
                };
                if let Some(frozen_part) = delta.frozen {
                    // final changes to the generation that is rotating out
                    // of the active slot
                    self.active_mut().apply(frozen_part)?;
                }
                self.rotate();
                *self.active_mut() = new_active;
                self.invalidate_top_k();
                Ok(())
            }
            _ => Err(ReplicateError::Corrupt(
                "window delta spans more than one rotation".into(),
            )),
        }
    }
}

impl<K: Key + Serialize + Deserialize> Replicate for EpochedConcurrent<K> {
    fn snapshot_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(codec::to_bytes(
            PayloadKind::EpochedSnapshot,
            &self.snapshot(),
        ))
    }

    fn slim_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(super::SlimSummary::from_epoched(self).to_bytes())
    }

    fn delta_bytes(&mut self) -> Result<Vec<u8>, ReplicateError> {
        Ok(match self.window_delta() {
            Some(d) => codec::to_bytes(PayloadKind::EpochedDelta, &d),
            None => codec::to_bytes(PayloadKind::EpochedSnapshot, &self.full_window_cut()),
        })
    }

    fn apply_bytes(&mut self, payload: &[u8]) -> Result<(), ReplicateError> {
        match codec::payload_kind(payload)? {
            PayloadKind::EpochedSnapshot => {
                let s = codec::from_bytes(PayloadKind::EpochedSnapshot, payload)?;
                *self = Self::restore(s)?;
                Ok(())
            }
            PayloadKind::EpochedDelta => {
                self.apply_window_delta(codec::from_bytes(PayloadKind::EpochedDelta, payload)?)
            }
            other => Err(ReplicateError::Incompatible(format!(
                "cannot apply a {other} payload to an epoched window"
            ))),
        }
    }
}

impl<K: Key> ShardedReliable<K> {
    /// Capture a plain-data mirror of every shard plus the routing seed.
    pub fn snapshot(&self) -> ShardedSnapshot<K> {
        ShardedSnapshot {
            router_seed: self.router_seed(),
            shards: (0..self.shards())
                .map(|i| self.shard(i).snapshot())
                .collect(),
        }
    }

    /// Rebuild a sharded sketch from a [`ShardedSnapshot`]. The replica
    /// starts unplaced (topology hints do not travel).
    ///
    /// # Errors
    /// Propagates shard-level [`ReplicateError`]s; an empty shard list is
    /// [`ReplicateError::Corrupt`].
    pub fn restore(snapshot: ShardedSnapshot<K>) -> Result<Self, ReplicateError> {
        if snapshot.shards.is_empty() {
            return Err(ReplicateError::Corrupt(
                "sharded snapshot carries no shards".into(),
            ));
        }
        let shards = snapshot
            .shards
            .into_iter()
            .map(ConcurrentReliable::restore)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedReliable::from_restored_shards(
            shards,
            snapshot.router_seed,
        ))
    }

    /// Cut one payload per shard (each independently a delta or a full
    /// snapshot — see [`ConcurrentReliable::delta`]).
    pub fn delta(&mut self) -> ShardedDelta<K> {
        let router_seed = self.router_seed();
        let shards = (0..self.shards())
            .map(|i| self.shard_mut(i).delta())
            .collect();
        ShardedDelta {
            router_seed,
            shards,
        }
    }

    /// Apply a [`ShardedDelta`] shard by shard.
    ///
    /// Atomic *per shard* but not across shards: if shard `i` fails, the
    /// shards before it have already advanced. A replica in that state
    /// answers stale (still certified) values for the failed shards'
    /// keys and should be healed with a full snapshot.
    ///
    /// # Errors
    /// [`ReplicateError::Incompatible`] on routing-seed or shard-count
    /// mismatch, plus shard-level errors.
    pub fn apply_delta(&mut self, delta: ShardedDelta<K>) -> Result<(), ReplicateError> {
        if delta.router_seed != self.router_seed() {
            return Err(ReplicateError::Incompatible(
                "sharded delta routing seed does not match the replica".into(),
            ));
        }
        if delta.shards.len() != self.shards() {
            return Err(ReplicateError::Incompatible(format!(
                "sharded delta carries {} shards, replica has {}",
                delta.shards.len(),
                self.shards()
            )));
        }
        for (i, payload) in delta.shards.into_iter().enumerate() {
            self.shard_mut(i).apply(payload)?;
        }
        Ok(())
    }
}

impl<K: Key + Serialize + Deserialize> Replicate for ShardedReliable<K> {
    fn snapshot_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(codec::to_bytes(
            PayloadKind::ShardedSnapshot,
            &self.snapshot(),
        ))
    }

    fn slim_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(super::SlimShards::from_sharded(self).to_bytes())
    }

    fn delta_bytes(&mut self) -> Result<Vec<u8>, ReplicateError> {
        Ok(codec::to_bytes(PayloadKind::ShardedDelta, &self.delta()))
    }

    fn apply_bytes(&mut self, payload: &[u8]) -> Result<(), ReplicateError> {
        match codec::payload_kind(payload)? {
            PayloadKind::ShardedSnapshot => {
                let s = codec::from_bytes(PayloadKind::ShardedSnapshot, payload)?;
                *self = Self::restore(s)?;
                Ok(())
            }
            PayloadKind::ShardedDelta => {
                self.apply_delta(codec::from_bytes(PayloadKind::ShardedDelta, payload)?)
            }
            other => Err(ReplicateError::Incompatible(format!(
                "cannot apply a {other} payload to a sharded sketch"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmergencyPolicy;
    use proptest::prelude::*;
    use rsk_api::{ErrorSensing, Merge};

    fn config(seed: u64) -> ReliableConfig {
        ReliableConfig {
            memory_bytes: 32 * 1024,
            emergency: EmergencyPolicy::ExactTable,
            seed,
            ..Default::default()
        }
    }

    fn loaded(seed: u64) -> ConcurrentReliable<u64> {
        let sk = ConcurrentReliable::<u64>::new(config(seed));
        for i in 0..20_000u64 {
            sk.insert_concurrent(&(i % 400), 1 + i % 5);
        }
        sk
    }

    fn answers_match(a: &ConcurrentReliable<u64>, b: &ConcurrentReliable<u64>, keys: u64) {
        for k in 0..keys {
            assert_eq!(a.query_with_error(&k), b.query_with_error(&k), "key {k}");
        }
    }

    #[test]
    fn concurrent_snapshot_roundtrips() {
        let sk = loaded(1);
        let restored = ConcurrentReliable::restore(sk.snapshot()).unwrap();
        answers_match(&sk, &restored, 500);
        assert_eq!(restored.insertion_failures(), sk.insertion_failures());
    }

    #[test]
    fn merged_overlay_roundtrips() {
        let mut a = loaded(2);
        let b = loaded(2);
        a.merge(&b).unwrap();
        assert!(a.is_merged());
        let restored = ConcurrentReliable::restore(a.snapshot()).unwrap();
        assert!(restored.is_merged());
        answers_match(&a, &restored, 500);
    }

    #[test]
    fn delta_shipping_mirrors_primary() {
        let mut primary = loaded(3);
        let mut replica = ConcurrentReliable::<u64>::new(config(3));

        // first ship: no cut yet, must be a full snapshot
        let first = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&first).unwrap(),
            PayloadKind::ConcurrentSnapshot
        );
        replica.apply_bytes(&first).unwrap();
        answers_match(&primary, &replica, 500);

        // touch a handful of keys; the next ship is a (much smaller) delta
        for i in 0..200u64 {
            primary.insert_concurrent(&(i % 5), 3);
        }
        let second = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&second).unwrap(),
            PayloadKind::ConcurrentDelta
        );
        assert!(
            second.len() * 4 < first.len(),
            "delta {} bytes vs full {} bytes",
            second.len(),
            first.len()
        );
        replica.apply_bytes(&second).unwrap();
        answers_match(&primary, &replica, 500);

        // a delta with nothing new is near-empty and still sound
        let third = primary.delta_bytes().unwrap();
        replica.apply_bytes(&third).unwrap();
        answers_match(&primary, &replica, 500);
    }

    #[test]
    fn deltas_are_idempotent() {
        let mut primary = loaded(4);
        let mut replica = ConcurrentReliable::<u64>::new(config(4));
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        for i in 0..50u64 {
            primary.insert_concurrent(&i, 2);
        }
        let delta = primary.delta_bytes().unwrap();
        replica.apply_bytes(&delta).unwrap();
        replica.apply_bytes(&delta).unwrap(); // replay changes nothing
        answers_match(&primary, &replica, 500);
    }

    #[test]
    fn merge_forces_full_fallback() {
        let mut primary = loaded(5);
        let mut replica = ConcurrentReliable::<u64>::new(config(5));
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();

        let other = loaded(5);
        primary.merge(&other).unwrap();
        let ship = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&ship).unwrap(),
            PayloadKind::ConcurrentSnapshot,
            "a merge invalidates the dirty-bit story"
        );
        replica.apply_bytes(&ship).unwrap();
        assert!(replica.is_merged());
        answers_match(&primary, &replica, 500);

        // and once re-cut, deltas resume
        primary.insert_concurrent(&7, 9);
        let next = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&next).unwrap(),
            PayloadKind::ConcurrentDelta
        );
        replica.apply_bytes(&next).unwrap();
        answers_match(&primary, &replica, 500);
    }

    #[test]
    fn incompatible_and_corrupt_deltas_leave_replica_untouched() {
        let mut primary = loaded(6);
        let mut replica = ConcurrentReliable::<u64>::new(config(6));
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        let before: Vec<_> = (0..500u64).map(|k| replica.query_with_error(&k)).collect();

        // config mismatch
        let mut foreign = ConcurrentReliable::<u64>::new(config(999));
        foreign.insert_concurrent(&1, 1);
        foreign.delta_bytes().unwrap(); // cut
        foreign.insert_concurrent(&1, 1);
        let bad = foreign.delta_bytes().unwrap();
        assert!(matches!(
            replica.apply_bytes(&bad),
            Err(ReplicateError::Incompatible(_))
        ));

        // out-of-range bucket index
        let corrupt = ConcurrentDelta::<u64> {
            config: replica.config().clone(),
            words: vec![vec![(u32::MAX, 1, 1, 0)]; replica.geometry().depth()],
            filter_diff: replica.filter().map(|_| Vec::new()),
            emergency: EmergencyState::Exact {
                entries: vec![],
                failures: 0,
            },
            failures: 0,
        };
        assert!(matches!(
            replica.apply_delta(corrupt),
            Err(ReplicateError::Corrupt(_))
        ));

        // truncated frame
        let good = primary.snapshot_bytes().unwrap();
        assert!(replica.apply_bytes(&good[..good.len() / 2]).is_err());

        for (k, exp) in before.iter().enumerate() {
            assert_eq!(replica.query_with_error(&(k as u64)), *exp);
        }
    }

    #[test]
    fn epoched_window_replicates_across_rotations() {
        let mut primary = EpochedConcurrent::<u64>::new(config(7));
        let mut replica = EpochedConcurrent::<u64>::new(config(7));
        for i in 0..10_000u64 {
            primary.insert_shared(&(i % 300), 1);
        }

        // ship 1: full (no cut yet)
        let s1 = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&s1).unwrap(),
            PayloadKind::EpochedSnapshot
        );
        replica.apply_bytes(&s1).unwrap();

        // ship 2: same epoch, pure delta
        for i in 0..100u64 {
            primary.insert_shared(&(i % 7), 2);
        }
        let s2 = primary.delta_bytes().unwrap();
        assert_eq!(codec::payload_kind(&s2).unwrap(), PayloadKind::EpochedDelta);
        replica.apply_bytes(&s2).unwrap();

        // ship 3: one rotation in between
        primary.insert_shared(&11, 5);
        primary.rotate();
        for i in 0..500u64 {
            primary.insert_shared(&(i % 40), 1);
        }
        let s3 = primary.delta_bytes().unwrap();
        assert_eq!(codec::payload_kind(&s3).unwrap(), PayloadKind::EpochedDelta);
        replica.apply_bytes(&s3).unwrap();
        assert_eq!(replica.epoch(), primary.epoch());

        for k in 0..300u64 {
            assert_eq!(
                replica.query_with_error(&k),
                primary.query_with_error(&k),
                "key {k}"
            );
        }

        // ship 4: two rotations — delta cannot describe it, full fallback
        primary.rotate();
        primary.rotate();
        let s4 = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&s4).unwrap(),
            PayloadKind::EpochedSnapshot
        );
        replica.apply_bytes(&s4).unwrap();
        for k in 0..300u64 {
            assert_eq!(replica.query_with_error(&k), primary.query_with_error(&k));
        }
    }

    #[test]
    fn epoched_delta_on_wrong_base_is_rejected() {
        let mut primary = EpochedConcurrent::<u64>::new(config(8));
        let mut replica = EpochedConcurrent::<u64>::new(config(8));
        primary.insert_shared(&1, 1);
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        primary.insert_shared(&2, 1);
        let delta = primary.delta_bytes().unwrap();
        replica.rotate(); // replica drifts ahead
        assert!(matches!(
            replica.apply_bytes(&delta),
            Err(ReplicateError::Incompatible(_))
        ));
    }

    #[test]
    fn sharded_snapshot_and_delta_roundtrip() {
        let mut primary = ShardedReliable::<u64>::new(config(9), 4);
        for i in 0..20_000u64 {
            primary.insert_shared(&(i % 500), 1 + i % 3);
        }
        let restored = ShardedReliable::restore(primary.snapshot()).unwrap();
        for k in 0..500u64 {
            assert_eq!(restored.query_shared(&k), primary.query_shared(&k));
        }

        let mut replica = ShardedReliable::<u64>::new(config(9), 4);
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        for i in 0..100u64 {
            primary.insert_shared(&(i % 11), 2);
        }
        let ship = primary.delta_bytes().unwrap();
        assert_eq!(
            codec::payload_kind(&ship).unwrap(),
            PayloadKind::ShardedDelta
        );
        replica.apply_bytes(&ship).unwrap();
        for k in 0..500u64 {
            assert_eq!(replica.query_shared(&k), primary.query_shared(&k));
        }

        // shard-count mismatch is refused
        let mut narrow = ShardedReliable::<u64>::new(config(9), 2);
        primary.insert_shared(&1, 1);
        let next = primary.delta_bytes().unwrap();
        assert!(matches!(
            narrow.apply_bytes(&next),
            Err(ReplicateError::Incompatible(_))
        ));
    }

    #[test]
    fn emergency_state_travels_in_deltas() {
        // tiny raw sketch so failures hit the exact table
        let tight = ReliableConfig {
            memory_bytes: 4 * crate::config::BUCKET_BYTES,
            lambda: 2,
            depth: crate::config::Depth::Fixed(2),
            mice_filter: None,
            emergency: EmergencyPolicy::ExactTable,
            lambda_floor_one: true,
            seed: 10,
            ..Default::default()
        };
        let mut primary = ConcurrentReliable::<u64>::new(tight.clone());
        let mut replica = ConcurrentReliable::<u64>::new(tight);
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        for i in 0..2_000u64 {
            primary.insert_concurrent(&(i % 7), 1);
        }
        assert!(primary.insertion_failures() > 0, "must exercise the store");
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        assert_eq!(replica.insertion_failures(), primary.insertion_failures());
        answers_match(&primary, &replica, 10);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ship a delta after every round of random inserts; the replica
        /// answers exactly like the primary at every cut.
        #[test]
        fn prop_delta_replay_mirrors_primary(
            rounds in proptest::collection::vec(
                proptest::collection::vec((0u64..200, 1u64..6), 1..120),
                1..6,
            ),
            seed in 0u64..1000,
        ) {
            let mut primary = ConcurrentReliable::<u64>::new(config(seed));
            let mut replica = ConcurrentReliable::<u64>::new(config(seed));
            for round in rounds {
                for (k, v) in round {
                    primary.insert_concurrent(&k, v);
                }
                replica.apply_bytes(&primary.delta_bytes().unwrap()).unwrap();
                for k in 0..200u64 {
                    prop_assert_eq!(
                        replica.query_with_error(&k),
                        primary.query_with_error(&k)
                    );
                }
            }
        }
    }
}
