//! Checkpoint / restore for the sequential [`ReliableSketch`].
//!
//! A snapshot is a plain-data mirror of the sketch — configuration,
//! layer schedule, bucket fields, mice-filter counters, emergency
//! remainders and merge hints — independent of the in-memory
//! representation, so it is stable across versions of this crate that
//! keep the same logical structure. Snapshots still serialize to JSON
//! through `serde_json` for human-readable checkpoints, and to the
//! replication layer's framed binary via [`SketchSnapshot::to_bytes`].
//!
//! Operation statistics ([`crate::SketchStats`]) are *not* persisted;
//! a restored sketch starts with fresh counters, mirroring how a
//! restarted process would.
//!
//! ```
//! use rsk_core::ReliableSketch;
//! use rsk_api::{ErrorSensing, StreamSummary};
//!
//! let mut sk = ReliableSketch::<u64>::builder()
//!     .memory_bytes(16 * 1024)
//!     .error_tolerance(25)
//!     .build::<u64>();
//! for i in 0..10_000u64 {
//!     sk.insert(&(i % 100), 1);
//! }
//!
//! let bytes = sk.snapshot().to_bytes();
//! let restored = ReliableSketch::<u64>::restore(
//!     rsk_core::replicate::SketchSnapshot::from_bytes(&bytes).unwrap(),
//! ).unwrap();
//! assert_eq!(restored.query_with_error(&7u64), sk.query_with_error(&7u64));
//! ```

use super::codec::{self, PayloadKind};
use crate::bucket::EsBucket;
use crate::config::ReliableConfig;
use crate::emergency::EmergencyStore;
use crate::geometry::LayerGeometry;
use crate::sketch::ReliableSketch;
use rsk_api::{Key, Replicate, ReplicateError};
use serde::{Deserialize, Serialize};

/// Persisted bucket: `(ID, YES, NO)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketState<K> {
    /// Candidate key, if the bucket is occupied.
    pub id: Option<K>,
    /// Positive votes.
    pub yes: u64,
    /// Negative votes (certified collision volume).
    pub no: u64,
}

/// Persisted emergency-store contents (policy-shaped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EmergencyState<K> {
    /// Counters of the `Disabled` policy.
    Disabled {
        /// Failed insert operations.
        failures: u64,
        /// Total value dropped.
        dropped_value: u64,
    },
    /// Contents of the `ExactTable` policy.
    Exact {
        /// `(key, remainder)` pairs.
        entries: Vec<(K, u64)>,
        /// Failed insert operations.
        failures: u64,
    },
    /// Contents of the `SpaceSaving` policy.
    SpaceSaving {
        /// `(key, count, overestimate)` slots.
        slots: Vec<(K, u64, u64)>,
        /// Failed insert operations.
        failures: u64,
    },
}

impl<K: Key> EmergencyState<K> {
    /// Capture the contents of a live store.
    pub(crate) fn capture(store: &EmergencyStore<K>) -> Self {
        match store {
            EmergencyStore::Disabled {
                failures,
                dropped_value,
            } => EmergencyState::Disabled {
                failures: *failures,
                dropped_value: *dropped_value,
            },
            EmergencyStore::Exact { table, failures } => EmergencyState::Exact {
                entries: table.iter().map(|(k, v)| (*k, *v)).collect(),
                failures: *failures,
            },
            EmergencyStore::SpaceSaving {
                slots, failures, ..
            } => EmergencyState::SpaceSaving {
                slots: slots.clone(),
                failures: *failures,
            },
        }
    }

    /// Install captured contents into a freshly built store of the same
    /// policy, rejecting shape mismatches without touching `store`.
    pub(crate) fn install(self, store: &mut EmergencyStore<K>) -> Result<(), ReplicateError> {
        match (store, self) {
            (
                EmergencyStore::Disabled {
                    failures,
                    dropped_value,
                },
                EmergencyState::Disabled {
                    failures: f,
                    dropped_value: d,
                },
            ) => {
                *failures = f;
                *dropped_value = d;
            }
            (
                EmergencyStore::Exact { table, failures },
                EmergencyState::Exact {
                    entries,
                    failures: f,
                },
            ) => {
                *table = entries.into_iter().collect();
                *failures = f;
            }
            (
                EmergencyStore::SpaceSaving {
                    slots,
                    capacity,
                    failures,
                },
                EmergencyState::SpaceSaving {
                    slots: s,
                    failures: f,
                },
            ) => {
                if s.len() > *capacity {
                    return Err(ReplicateError::Corrupt(format!(
                        "snapshot carries {} SpaceSaving slots, capacity {}",
                        s.len(),
                        capacity
                    )));
                }
                *slots = s;
                *failures = f;
            }
            _ => {
                return Err(ReplicateError::Incompatible(
                    "snapshot emergency policy mismatch".into(),
                ))
            }
        }
        Ok(())
    }
}

/// A complete, self-describing checkpoint of a [`ReliableSketch`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SketchSnapshot<K> {
    /// The configuration the sketch was built from.
    pub config: ReliableConfig,
    /// Materialized layer widths (persisted explicitly so snapshots of
    /// custom-geometry sketches restore faithfully).
    pub widths: Vec<usize>,
    /// Materialized lock thresholds.
    pub lambdas: Vec<u64>,
    /// Bucket fields, layer by layer.
    pub layers: Vec<Vec<BucketState<K>>>,
    /// Mice-filter counter rows, if the filter exists.
    pub filter_rows: Option<Vec<Vec<u64>>>,
    /// Emergency-store contents.
    pub emergency: EmergencyState<K>,
    /// Per-bucket merge hints (empty unless the sketch was merged).
    pub divert_hints: Vec<Vec<bool>>,
}

impl<K: Key + Serialize + Deserialize> SketchSnapshot<K> {
    /// Encode with the replication layer's framed binary codec
    /// ([`PayloadKind::SequentialSnapshot`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        codec::to_bytes(PayloadKind::SequentialSnapshot, self)
    }

    /// Decode a framed binary payload produced by [`Self::to_bytes`].
    ///
    /// # Errors
    /// Total over arbitrary input — see [`ReplicateError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ReplicateError> {
        codec::from_bytes(PayloadKind::SequentialSnapshot, bytes)
    }
}

impl<K: Key> ReliableSketch<K> {
    /// Capture a plain-data checkpoint of the sketch's full logical state.
    pub fn snapshot(&self) -> SketchSnapshot<K> {
        let (filter, layers, emergency, _stats, hints) = self.peer_parts();
        SketchSnapshot {
            config: self.config().clone(),
            widths: self.geometry().widths().to_vec(),
            lambdas: self.geometry().lambdas().to_vec(),
            layers: layers
                .iter()
                .map(|layer| {
                    layer
                        .iter()
                        .map(|b| BucketState {
                            id: b.id().copied(),
                            yes: b.yes(),
                            no: b.no(),
                        })
                        .collect()
                })
                .collect(),
            filter_rows: filter.as_ref().map(|f| f.rows_raw().to_vec()),
            emergency: EmergencyState::capture(emergency),
            divert_hints: hints.clone(),
        }
    }

    /// Rebuild a sketch from a checkpoint.
    ///
    /// # Errors
    /// Returns [`ReplicateError::Corrupt`] for snapshots whose
    /// configuration fails validation, whose schedule is malformed, or
    /// whose contents do not match the schedule (wrong layer count or
    /// width, filter shape mismatch), and
    /// [`ReplicateError::Incompatible`] for an emergency policy mismatch.
    pub fn restore(snapshot: SketchSnapshot<K>) -> Result<Self, ReplicateError> {
        snapshot
            .config
            .validate()
            .map_err(ReplicateError::Corrupt)?;
        let geometry = LayerGeometry::custom(snapshot.widths, snapshot.lambdas)
            .map_err(ReplicateError::Corrupt)?;
        if snapshot.layers.len() != geometry.depth() {
            return Err(ReplicateError::Corrupt(format!(
                "snapshot has {} layers, schedule {}",
                snapshot.layers.len(),
                geometry.depth()
            )));
        }
        for (i, layer) in snapshot.layers.iter().enumerate() {
            if layer.len() != geometry.width(i) {
                return Err(ReplicateError::Corrupt(format!(
                    "layer {i} has {} buckets, schedule {}",
                    layer.len(),
                    geometry.width(i)
                )));
            }
        }
        if !snapshot.divert_hints.is_empty()
            && (snapshot.divert_hints.len() != geometry.depth()
                || snapshot
                    .divert_hints
                    .iter()
                    .zip(geometry.widths())
                    .any(|(h, &w)| h.len() != w))
        {
            return Err(ReplicateError::Corrupt("divert hint shape mismatch".into()));
        }

        let mut sketch = ReliableSketch::with_geometry(snapshot.config, geometry);
        let (filter, layers, emergency, _stats, hints) = sketch.merge_parts();

        match (filter.as_mut(), snapshot.filter_rows) {
            (Some(f), Some(rows)) => f.restore_rows(rows).map_err(ReplicateError::Corrupt)?,
            (None, None) => {}
            _ => {
                return Err(ReplicateError::Corrupt(
                    "snapshot filter presence mismatch".into(),
                ))
            }
        }

        *layers = snapshot
            .layers
            .into_iter()
            .map(|layer| {
                layer
                    .into_iter()
                    .map(|b| EsBucket::from_parts(b.id, b.yes, b.no))
                    .collect()
            })
            .collect();

        snapshot.emergency.install(emergency)?;
        *hints = snapshot.divert_hints;
        Ok(sketch)
    }
}

impl<K: Key + Serialize + Deserialize> Replicate for ReliableSketch<K> {
    fn snapshot_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(self.snapshot().to_bytes())
    }

    fn slim_bytes(&self) -> Result<Vec<u8>, ReplicateError> {
        Ok(super::SlimSummary::from_sequential(self).to_bytes())
    }

    /// Sequential sketches track no dirty state, so a "delta" is always
    /// a full snapshot — a contract-valid (if maximal) superset of the
    /// changes since the last cut.
    fn delta_bytes(&mut self) -> Result<Vec<u8>, ReplicateError> {
        self.snapshot_bytes()
    }

    fn apply_bytes(&mut self, payload: &[u8]) -> Result<(), ReplicateError> {
        let snapshot = SketchSnapshot::from_bytes(payload)?;
        *self = ReliableSketch::restore(snapshot)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmergencyPolicy;
    use rsk_api::{ErrorSensing, Merge, StreamSummary};

    fn loaded(seed: u64) -> ReliableSketch<u64> {
        let mut sk = ReliableSketch::<u64>::builder()
            .memory_bytes(16 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(seed)
            .build::<u64>();
        for i in 0..20_000u64 {
            sk.insert(&(i % 400), 1 + i % 5);
        }
        sk
    }

    fn answers_match(a: &ReliableSketch<u64>, b: &ReliableSketch<u64>, keys: u64) {
        for k in 0..keys {
            assert_eq!(a.query_with_error(&k), b.query_with_error(&k), "key {k}");
        }
    }

    #[test]
    fn json_roundtrip_preserves_every_answer() {
        let sk = loaded(1);
        let json = serde_json::to_string(&sk.snapshot()).unwrap();
        let restored = ReliableSketch::restore(serde_json::from_str(&json).unwrap()).unwrap();
        answers_match(&sk, &restored, 500);
        assert_eq!(restored.insertion_failures(), sk.insertion_failures());
    }

    #[test]
    fn binary_roundtrip_preserves_every_answer() {
        let sk = loaded(8);
        let bytes = sk.snapshot().to_bytes();
        let restored =
            ReliableSketch::restore(SketchSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        answers_match(&sk, &restored, 500);
        assert_eq!(restored.insertion_failures(), sk.insertion_failures());
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let sk = loaded(9);
        let bytes = sk.snapshot().to_bytes();
        let json = serde_json::to_string(&sk.snapshot()).unwrap();
        // mostly small LEB128 integers vs short decimal literals, so the
        // win is real but modest — pin direction and a 10% floor
        assert!(
            bytes.len() * 10 < json.len() * 9,
            "binary {} vs json {}",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn replicate_trait_ships_sequential_state() {
        let mut primary = loaded(10);
        let mut replica = ReliableSketch::<u64>::builder()
            .memory_bytes(16 * 1024)
            .error_tolerance(25)
            .emergency(EmergencyPolicy::ExactTable)
            .seed(10)
            .build::<u64>();
        replica
            .apply_bytes(&primary.delta_bytes().unwrap())
            .unwrap();
        answers_match(&primary, &replica, 500);
        // a slim payload is not a snapshot: apply must refuse, untouched
        let slim = primary.slim_bytes().unwrap();
        assert!(matches!(
            replica.apply_bytes(&slim),
            Err(ReplicateError::Incompatible(_))
        ));
        answers_match(&primary, &replica, 500);
    }

    #[test]
    fn restored_sketch_keeps_streaming_soundly() {
        let sk = loaded(2);
        let mut restored = ReliableSketch::restore(sk.snapshot()).unwrap();
        let mut resumed = sk.clone();
        for i in 0..5_000u64 {
            restored.insert(&(i % 400), 2);
            resumed.insert(&(i % 400), 2);
        }
        answers_match(&resumed, &restored, 500);
    }

    #[test]
    fn raw_variant_roundtrips() {
        let mut sk = ReliableSketch::<u64>::builder()
            .memory_bytes(16 * 1024)
            .error_tolerance(25)
            .raw()
            .seed(3)
            .build::<u64>();
        for i in 0..5_000u64 {
            sk.insert(&(i % 100), 1);
        }
        let restored = ReliableSketch::restore(sk.snapshot()).unwrap();
        answers_match(&sk, &restored, 150);
    }

    #[test]
    fn merged_sketch_roundtrips_with_hints() {
        let mut a = loaded(4);
        let b = loaded(4);
        a.merge(&b).unwrap();
        assert!(a.is_merged());
        let restored = ReliableSketch::restore(a.snapshot()).unwrap();
        assert!(restored.is_merged());
        answers_match(&a, &restored, 500);
    }

    #[test]
    fn spacesaving_emergency_roundtrips() {
        use crate::config::{Depth, ReliableConfig, BUCKET_BYTES};
        let config = ReliableConfig {
            memory_bytes: 4 * BUCKET_BYTES,
            lambda: 2,
            depth: Depth::Fixed(2),
            mice_filter: None,
            emergency: EmergencyPolicy::SpaceSaving(8),
            lambda_floor_one: true,
            seed: 5,
            ..Default::default()
        };
        let mut sk = ReliableSketch::<u64>::new(config);
        for i in 0..2_000u64 {
            sk.insert(&(i % 7), 1);
        }
        assert!(sk.insertion_failures() > 0, "must exercise the store");
        let restored = ReliableSketch::restore(sk.snapshot()).unwrap();
        answers_match(&sk, &restored, 10);
        assert_eq!(restored.insertion_failures(), sk.insertion_failures());
    }

    #[test]
    fn five_tuple_keys_roundtrip() {
        let mut sk = ReliableSketch::<[u8; 13]>::builder()
            .memory_bytes(8 * 1024)
            .error_tolerance(25)
            .seed(6)
            .build::<[u8; 13]>();
        let mut tuple = [0u8; 13];
        for i in 0..2_000u64 {
            tuple[0] = (i % 50) as u8;
            sk.insert(&tuple, 1);
        }
        let bytes = sk.snapshot().to_bytes();
        let restored =
            ReliableSketch::<[u8; 13]>::restore(SketchSnapshot::from_bytes(&bytes).unwrap())
                .unwrap();
        for b in 0..50u8 {
            tuple[0] = b;
            assert_eq!(
                restored.query_with_error(&tuple),
                sk.query_with_error(&tuple)
            );
        }
    }

    #[test]
    fn corrupted_snapshots_are_rejected() {
        let sk = loaded(7);

        let mut s = sk.snapshot();
        s.layers.pop();
        assert!(ReliableSketch::restore(s).is_err(), "missing layer");

        let mut s = sk.snapshot();
        s.layers[0].pop();
        assert!(ReliableSketch::restore(s).is_err(), "short layer");

        let mut s = sk.snapshot();
        s.filter_rows = None;
        assert!(ReliableSketch::restore(s).is_err(), "filter mismatch");

        let mut s = sk.snapshot();
        s.emergency = EmergencyState::Disabled {
            failures: 0,
            dropped_value: 0,
        };
        assert!(
            matches!(
                ReliableSketch::restore(s),
                Err(ReplicateError::Incompatible(_))
            ),
            "policy mismatch"
        );

        let mut s = sk.snapshot();
        s.config.lambda = 0;
        assert!(ReliableSketch::restore(s).is_err(), "invalid config");

        let mut s = sk.snapshot();
        s.divert_hints = vec![vec![true; 3]];
        assert!(ReliableSketch::restore(s).is_err(), "bad hint shape");
    }
}
