//! Replication (`serde` feature) — checkpoint, ship and mirror sketches.
//!
//! This module generalizes the original checkpoint/restore path into a
//! full replication layer, the software analogue of the paper's
//! collector deployments: a measurement process periodically *cuts* its
//! sketch state and ships it to a collector (crash recovery, interval
//! hand-off, or a live read replica). Four payload families cover the
//! spectrum from durable checkpoints to low-byte-count live mirroring:
//!
//! * **Snapshots** — complete plain-data mirrors of a sketch's logical
//!   state. [`SketchSnapshot`] covers the sequential
//!   [`crate::ReliableSketch`]; [`ConcurrentSnapshot`],
//!   [`EpochedSnapshot`] and [`ShardedSnapshot`] cover the lock-free
//!   types (packed live words and the sealed merge overlay are captured
//!   separately, so `is_merged()` round-trips faithfully).
//! * **Deltas** — only what changed since the previous cut.
//!   [`crate::atomic::AtomicBucketArray`] keeps a one-bit-per-bucket
//!   dirty map set on CAS commit, so a [`ConcurrentDelta`] serializes
//!   exactly the buckets touched since the last cut (entries carry the
//!   *current* packed fields — applying a delta is idempotent
//!   replacement, never addition). [`EpochedDelta`] and [`ShardedDelta`]
//!   lift this to windows and shard groups. When a delta cannot describe
//!   the gap (first ship, a merge mutated the sealed overlay, more than
//!   one window rotation), the capture side transparently falls back to
//!   a full snapshot — payloads are self-describing, so the apply side
//!   never needs to know in advance.
//! * **Slim summaries** — [`SlimSummary`] distills a sketch into a
//!   query-only digest (occupied buckets and certified error structure,
//!   no mice-filter counters), in the spirit of SF-sketch's
//!   "fat insert, slim query" split. It answers
//!   [`query_with_error`](SlimSummary::query_with_error) standalone from
//!   nothing but the payload, with certified intervals widened by at
//!   most a documented [`slack`](SlimSummary::slack).
//! * **Binary codec** — every payload serializes through a compact
//!   self-describing binary format (magic + version + payload kind, then
//!   a tagged value tree with LEB128 integers); see [`payload_kind`] for
//!   sniffing and the `to_bytes`/`from_bytes` pairs on each payload
//!   type. Decoding is *total*: truncated, corrupt or alien input
//!   returns a typed [`rsk_api::ReplicateError`], never a panic.
//!
//! The uniform entry point is the [`rsk_api::Replicate`] trait
//! (`snapshot_bytes` / `delta_bytes` / `slim_bytes` / `apply_bytes`),
//! implemented here for [`crate::ReliableSketch`],
//! [`crate::atomic::ConcurrentReliable`],
//! [`crate::epoch::EpochedConcurrent`] and
//! [`crate::concurrent::ShardedReliable`].
//!
//! ```
//! use rsk_core::atomic::ConcurrentReliable;
//! use rsk_core::ReliableConfig;
//! use rsk_api::Replicate;
//!
//! let config = ReliableConfig { memory_bytes: 32 * 1024, seed: 7, ..Default::default() };
//! let mut primary = ConcurrentReliable::<u64>::new(config.clone());
//! let mut replica = ConcurrentReliable::<u64>::new(config);
//! for i in 0..20_000u64 {
//!     primary.insert_concurrent(&(i % 300), 1);
//! }
//! // first ship: a full snapshot (and the cut baseline for future deltas)
//! replica.apply_bytes(&primary.delta_bytes().unwrap()).unwrap();
//! // touch a few keys, then ship only the dirty buckets
//! for i in 0..100u64 {
//!     primary.insert_concurrent(&(i % 5), 2);
//! }
//! replica.apply_bytes(&primary.delta_bytes().unwrap()).unwrap();
//! assert_eq!(replica.query_with_error(&3), primary.query_with_error(&3));
//! ```

mod codec;
mod concurrent;
mod sequential;
mod slim;

pub use codec::{payload_kind, PayloadKind};
pub use concurrent::{
    ConcurrentDelta, ConcurrentSnapshot, EpochedDelta, EpochedSnapshot, GenPayload, OverlayState,
    ShardedDelta, ShardedSnapshot,
};
pub use sequential::{BucketState, EmergencyState, SketchSnapshot};
pub use slim::{SlimShards, SlimSummary};

/// Sparse occupied-bucket rows, layer by layer:
/// `(index, fingerprint, yes, no)` — the fingerprint is `None` for a
/// bucket holding pure collision volume.
pub type SparseBucketRows = Vec<Vec<(u32, Option<u64>, u64, u64)>>;

/// Baselines remembered at a replication cut, stored inside a
/// [`crate::atomic::ConcurrentReliable`]: the next delta diffs the mice
/// filter against `filter_rows` and falls back to a full snapshot when
/// `merge_epoch` no longer matches (a merge mutated the sealed overlay,
/// which the dirty bitmap does not cover).
#[derive(Debug)]
pub(crate) struct ReplicaCut {
    pub(crate) filter_rows: Option<Vec<Vec<u64>>>,
    pub(crate) merge_epoch: u64,
}
